//! `ftree` — command-line Flowtree: summarize captures, inspect, query,
//! merge, and diff summary files.
//!
//! ```text
//! ftree summarize <capture.pcap> -o <out.ftree> [--schema five] [--budget 40000]
//! ftree info      <tree.ftree>
//! ftree show      <tree.ftree> [--depth 3]
//! ftree query     <tree.ftree> <pattern…>          e.g. src=10.0.0.0/8 dport=443
//! ftree topk      <tree.ftree> [--k 10] [--by packets|bytes|flows]
//! ftree hhh       <tree.ftree> [--phi 0.01]
//! ftree merge     -o <out.ftree> <a.ftree> <b.ftree> […]
//! ftree diff      -o <out.ftree> <a.ftree> <b.ftree>
//! ```
//!
//! Tree files are the compact validated wire format of
//! [`flowtree_core`] (`FTR1` frames) — the same bytes the distributed
//! system ships between sites, so anything a daemon exports is
//! inspectable with this tool.

use flowtree::{Config, FlowTree, Metric, Popularity, Schema};
use std::fs;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ftree: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "summarize" => summarize(rest),
        "info" => info(rest),
        "show" => show(rest),
        "query" => query(rest),
        "topk" => topk(rest),
        "hhh" => hhh(rest),
        "merge" => merge(rest),
        "diff" => diff(rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  \
     ftree summarize <capture.pcap> -o <out.ftree> [--schema five|four|two|src1] [--budget N]\n  \
     ftree info  <tree.ftree>\n  \
     ftree show  <tree.ftree> [--depth N]\n  \
     ftree query <tree.ftree> <pattern…>\n  \
     ftree topk  <tree.ftree> [--k N] [--by packets|bytes|flows]\n  \
     ftree hhh   <tree.ftree> [--phi F]\n  \
     ftree merge -o <out.ftree> <in.ftree>…\n  \
     ftree diff  -o <out.ftree> <a.ftree> <b.ftree>"
        .to_string()
}

/// `--name value` extraction; returns (value, remaining positional args).
fn take_opt(args: &[String], name: &str) -> (Option<String>, Vec<String>) {
    let mut value = None;
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == format!("--{name}") || (name == "o" && args[i] == "-o") {
            if let Some(v) = args.get(i + 1) {
                value = Some(v.clone());
                i += 2;
                continue;
            }
        }
        rest.push(args[i].clone());
        i += 1;
    }
    (value, rest)
}

fn parse_schema(name: &str) -> Result<Schema, String> {
    Ok(match name {
        "src1" => Schema::one_feature_src(),
        "two" => Schema::two_feature(),
        "four" => Schema::four_feature(),
        "five" => Schema::five_feature(),
        "extended" => Schema::extended(),
        other => {
            return Err(format!(
                "unknown schema `{other}` (src1|two|four|five|extended)"
            ))
        }
    })
}

fn load_tree(path: &str) -> Result<FlowTree, String> {
    let bytes = fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    FlowTree::decode(&bytes, Config::paper()).map_err(|e| format!("decode {path}: {e}"))
}

fn save_tree(tree: &FlowTree, path: &str) -> Result<(), String> {
    fs::write(path, tree.encode()).map_err(|e| format!("write {path}: {e}"))
}

fn summarize(args: &[String]) -> Result<(), String> {
    let (out, args) = take_opt(args, "o");
    let (schema, args) = take_opt(&args, "schema");
    let (budget, args) = take_opt(&args, "budget");
    let [input] = args.as_slice() else {
        return Err("summarize needs exactly one capture file".into());
    };
    let out = out.ok_or("summarize needs -o <out.ftree>")?;
    let schema = parse_schema(schema.as_deref().unwrap_or("five"))?;
    let budget: usize = budget
        .as_deref()
        .unwrap_or("40000")
        .parse()
        .map_err(|_| "bad --budget")?;

    let file = fs::File::open(input).map_err(|e| format!("open {input}: {e}"))?;
    let raw = file.metadata().map(|m| m.len()).unwrap_or(0);
    let reader = flownet::pcap::PcapReader::new(std::io::BufReader::new(file))
        .map_err(|e| format!("{input}: {e}"))?;
    let ethernet = reader.linktype() == flownet::pcap::LINKTYPE_ETHERNET;
    let mut tree = FlowTree::new(schema, Config::with_budget(budget));
    let (mut ok, mut skipped) = (0u64, 0u64);
    for pkt in reader.packets() {
        let pkt = pkt.map_err(|e| format!("{input}: {e}"))?;
        let meta = if ethernet {
            flownet::parse_ethernet(&pkt.data, pkt.ts_micros, pkt.orig_len)
        } else {
            flownet::parse_ip(&pkt.data, pkt.ts_micros, pkt.orig_len)
        };
        match meta {
            Ok(m) => {
                tree.insert(&m.flow_key(), Popularity::packet(m.wire_len));
                ok += 1;
            }
            Err(_) => skipped += 1,
        }
    }
    save_tree(&tree, &out)?;
    let summary = tree.encoded_size() as u64;
    println!("{ok} packets summarized ({skipped} skipped) → {out}");
    println!(
        "{} nodes, {} bytes ({:.2}% of the {} byte capture)",
        tree.len(),
        summary,
        summary as f64 / raw.max(1) as f64 * 100.0,
        raw
    );
    Ok(())
}

fn info(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("info needs one tree file".into());
    };
    let tree = load_tree(path)?;
    let total = tree.total();
    println!("file:    {path}");
    println!("schema:  {:?}", tree.schema().kind());
    println!("nodes:   {}", tree.len());
    println!("bytes:   {}", tree.encoded_size());
    println!(
        "totals:  {} packets, {} bytes, {} flows",
        total.packets, total.bytes, total.flows
    );
    Ok(())
}

fn show(args: &[String]) -> Result<(), String> {
    let (depth, args) = take_opt(args, "depth");
    let [path] = args.as_slice() else {
        return Err("show needs one tree file".into());
    };
    let max_indent: usize = depth
        .as_deref()
        .unwrap_or("4")
        .parse()
        .map_err(|_| "bad --depth")?;
    let tree = load_tree(path)?;
    for line in tree.to_ascii().lines() {
        let indent = line.chars().take_while(|c| *c == ' ').count() / 2;
        if indent <= max_indent {
            println!("{line}");
        }
    }
    Ok(())
}

fn query(args: &[String]) -> Result<(), String> {
    let (path, pattern_parts) = args
        .split_first()
        .ok_or("query needs <tree.ftree> <pattern…>")?;
    let pattern: flowtree::FlowKey = pattern_parts
        .join(" ")
        .parse()
        .map_err(|e| format!("bad pattern: {e}"))?;
    let tree = load_tree(path)?;
    let answer = tree.popularity(&pattern);
    println!(
        "{} → {:.0} packets, {:.0} bytes, {:.0} flows ({})",
        pattern,
        answer.est.packets,
        answer.est.bytes,
        answer.est.flows,
        if answer.tracked {
            "tracked"
        } else {
            "estimated"
        }
    );
    Ok(())
}

fn parse_metric(name: &str) -> Result<Metric, String> {
    Ok(match name {
        "packets" => Metric::Packets,
        "bytes" => Metric::Bytes,
        "flows" => Metric::Flows,
        other => return Err(format!("unknown metric `{other}`")),
    })
}

fn topk(args: &[String]) -> Result<(), String> {
    let (k, args) = take_opt(args, "k");
    let (by, args) = take_opt(&args, "by");
    let [path] = args.as_slice() else {
        return Err("topk needs one tree file".into());
    };
    let k: usize = k
        .as_deref()
        .unwrap_or("10")
        .parse()
        .map_err(|_| "bad --k")?;
    let metric = parse_metric(by.as_deref().unwrap_or("packets"))?;
    let tree = load_tree(path)?;
    for (key, pop) in tree.top_k(k, metric) {
        println!("{:>12}  {}", pop.get(metric), key);
    }
    Ok(())
}

fn hhh(args: &[String]) -> Result<(), String> {
    let (phi, args) = take_opt(args, "phi");
    let [path] = args.as_slice() else {
        return Err("hhh needs one tree file".into());
    };
    let phi: f64 = phi
        .as_deref()
        .unwrap_or("0.01")
        .parse()
        .map_err(|_| "bad --phi")?;
    let tree = load_tree(path)?;
    for item in tree.hhh(phi, Metric::Packets) {
        println!("{:>12}  {}", item.discounted.packets, item.key);
    }
    Ok(())
}

fn merge(args: &[String]) -> Result<(), String> {
    let (out, inputs) = take_opt(args, "o");
    let out = out.ok_or("merge needs -o <out.ftree>")?;
    if inputs.len() < 2 {
        return Err("merge needs at least two input trees".into());
    }
    let mut acc = load_tree(&inputs[0])?;
    for path in &inputs[1..] {
        let other = load_tree(path)?;
        acc.merge(&other).map_err(|e| format!("{path}: {e}"))?;
    }
    save_tree(&acc, &out)?;
    println!(
        "merged {} trees → {out} ({} nodes, {} packets)",
        inputs.len(),
        acc.len(),
        acc.total().packets
    );
    Ok(())
}

fn diff(args: &[String]) -> Result<(), String> {
    let (out, inputs) = take_opt(args, "o");
    let out = out.ok_or("diff needs -o <out.ftree>")?;
    let [a, b] = inputs.as_slice() else {
        return Err("diff needs exactly two input trees".into());
    };
    let mut tree = load_tree(a)?;
    let other = load_tree(b)?;
    tree.diff(&other).map_err(|e| format!("{b}: {e}"))?;
    save_tree(&tree, &out)?;
    println!(
        "{a} − {b} → {out} ({} nodes, net {} packets)",
        tree.len(),
        tree.total().packets
    );
    Ok(())
}
