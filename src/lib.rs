//! # flowtree — self-adjusting, mergeable summaries of generalized flows
//!
//! A from-scratch Rust reproduction of *Flowtree: Enabling Distributed
//! Flow Summarization at Scale* (Saidi, Foucard, Smaragdakis, Feldmann —
//! ACM SIGCOMM 2018), including every substrate the system needs:
//!
//! | crate | what it provides |
//! |---|---|
//! | [`flowkey`] | generalized flows, feature hierarchies, canonical chains |
//! | [`flowtree_core`] | the Flowtree data structure: update / query / merge / diff |
//! | [`flownet`] | packet parsing, pcap, NetFlow v5, IPFIX, flow caches |
//! | [`flowtrace`] | synthetic workloads (trace substitutions) + ground truth |
//! | [`flowbase`] | baselines: Space-Saving, Count-Min, HHH, RHHH |
//! | [`flowdist`] | site daemons, collector, delta transfer, alarms |
//! | [`flowquery`] | the drill-down query language and engine |
//! | [`flowrelay`] | hierarchical aggregation relays + tier-aware query routing |
//!
//! ## Quick start
//!
//! ```
//! use flowtree::{FlowTree, Popularity, Schema};
//!
//! // Build the paper's evaluation configuration: 4-feature flows,
//! // 40 K-node budget.
//! let mut tree = FlowTree::with_schema(Schema::four_feature());
//! let key = "src=10.1.2.3/32 dst=192.0.2.7/32 sport=49152 dport=443"
//!     .parse()
//!     .unwrap();
//! tree.insert(&key, Popularity::packet(1500));
//!
//! // Hierarchical question: traffic towards 192.0.2.0/24?
//! let pattern = "dst=192.0.2.0/24".parse().unwrap();
//! assert!(tree.estimate_pattern(&pattern).packets >= 1.0);
//! ```
//!
//! Run `cargo run --example quickstart` for a guided tour, and see
//! DESIGN.md / EXPERIMENTS.md for the paper-reproduction index.

#![forbid(unsafe_code)]

pub use flowbase;
pub use flowdist;
pub use flowkey;
pub use flownet;
pub use flowquery;
pub use flowrelay;
pub use flowtrace;
pub use flowtree_core;

pub use flowkey::{Dim, FlowKey, IpNet, PortRange, Proto, Schema, Site, TimeBucket};
pub use flowtree_core::{
    Config, Estimator, EvictionPolicy, FlowTree, Metric, PopEst, Popularity, QueryAnswer,
};
