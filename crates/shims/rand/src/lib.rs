//! Offline shim of the `rand` 0.8 API surface used by this workspace.
//!
//! The build environment has no network access and no vendored
//! registry, so this in-tree crate provides the handful of items the
//! workspace actually calls: [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::SmallRng`] (a xoshiro256++ generator, seeded via
//! splitmix64, matching the real crate's design if not its exact
//! stream). Everything is deterministic per seed, which is all the
//! workspace relies on — no test or trace encodes the upstream
//! `rand` bit stream.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of random words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in chunks.by_ref() {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&w[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from a generator (the shim's
/// stand-in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type.
                    return rng.next_u64() as $t;
                }
                let draw = (rng.next_u64() as u128) % span;
                start.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        f64::sample_standard(self) < p
    }

    /// Fills a byte slice (alias of [`RngCore::fill_bytes`]).
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS-ish entropy. The shim derives it from
    /// the current time; only used where reproducibility is not needed.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        Self::seed_from_u64(nanos)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator family the real
    /// `SmallRng` uses on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// The shim maps `StdRng` to the same generator.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(8);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5i64..=6);
            assert!((5..=6).contains(&w));
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = SmallRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }

    #[test]
    fn works_through_dyn_and_ref() {
        fn takes_dyn<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut r = SmallRng::seed_from_u64(3);
        let v = takes_dyn(&mut r);
        assert!((0.0..1.0).contains(&v));
    }
}
