//! Offline shim of the `crossbeam` API surface used by this workspace:
//! bounded MPSC channels. Implemented over `std::sync::mpsc`, which has
//! the same semantics for the single-consumer topology the simulator
//! uses (crossbeam's channels are MPMC; nothing in-tree needs that).

#![forbid(unsafe_code)]

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a bounded channel. Cloneable.
    #[derive(Debug, Clone)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`]: either the queue is
    /// full right now, or every receiver is gone. The value comes
    /// back in both cases.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; receivers still exist.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    /// Error returned when every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`]: either nothing
    /// arrived within the timeout, or the queue is empty *and* every
    /// sender is gone (buffered values are always delivered first).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No value arrived in time; senders still exist.
        Timeout,
        /// No value queued and every sender has been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`]: either the queue is
    /// momentarily empty, or it is empty *and* every sender is gone
    /// (buffered values are always delivered before `Disconnected`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No value queued right now; senders still exist.
        Empty,
        /// No value queued and every sender has been dropped.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then sends.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }

        /// Non-blocking send.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            })
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next value; errors when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Blocks for the next value at most `timeout`.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Iterates until every sender is dropped.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }

        /// Iterates over the values queued right now, without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.try_iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }

    /// A channel holding at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    /// An unbounded channel (provided for API parity).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        // mpsc's unbounded Sender is a different type; emulate with a
        // very large bound to keep one Sender type in the shim.
        bounded(1 << 20)
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_in_and_close() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..10 {
                    tx.send(i).unwrap();
                }
            });
            s.spawn(move || {
                for i in 10..20 {
                    tx2.send(i).unwrap();
                }
            });
            let mut got: Vec<u32> = rx.into_iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..20).collect::<Vec<_>>());
        });
    }

    #[test]
    fn send_fails_when_receiver_dropped() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn try_send_reports_full_then_disconnected() {
        let (tx, rx) = channel::bounded::<u8>(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(channel::TrySendError::Full(2)));
        drop(rx);
        assert_eq!(tx.try_send(3), Err(channel::TrySendError::Disconnected(3)));
    }

    #[test]
    fn recv_timeout_reports_timeout_then_value_then_disconnected() {
        use std::time::Duration;
        let (tx, rx) = channel::bounded::<u8>(2);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        drop(tx);
        // Buffered values drain before the disconnect surfaces.
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn try_recv_reports_empty_then_disconnected() {
        let (tx, rx) = channel::bounded::<u8>(2);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        tx.send(7).unwrap();
        tx.send(8).unwrap();
        drop(tx);
        // Buffered values drain before the disconnect surfaces.
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Ok(8));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }
}
