//! Offline shim of the `proptest` API surface used by this workspace.
//!
//! Provides deterministic randomized property testing with proptest's
//! macro and combinator shapes: [`Strategy`], `prop_map`, `prop_oneof!`,
//! `prop_compose!`, `proptest!`, `any::<T>()`, ranges, collections, and
//! `sample::{Index, select}`. Differences from the real crate, accepted
//! for offline builds:
//!
//! * **No shrinking** — a failing case panics with the generated inputs
//!   left to the assertion message; seeds are deterministic per test
//!   name, so failures reproduce exactly.
//! * **String strategies** understand only the `".{a,b}"` shape (any
//!   chars, length range) and literal strings; that covers the fuzz
//!   tests in-tree.
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning `Err(TestCaseError)`.

#![forbid(unsafe_code)]

pub use rand::rngs::SmallRng as TestRng;
pub use rand::{Rng, RngCore, SeedableRng};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real default is 256; 64 keeps the single-core offline CI
        // budget sane while still exercising the properties broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test seed (djb2 over the test name).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 5381;
    for b in name.bytes() {
        h = h.wrapping_mul(33) ^ b as u64;
    }
    h
}

/// A generator of values of one type (no shrinking in the shim).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { base: self, f }
    }

    /// Keeps only values passing `f` (rejection sampling, bounded).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> strategy::Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        strategy::Filter {
            base: self,
            f,
            whence,
        }
    }
}

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn pick(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.pick(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
        pub(crate) whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn pick(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.base.pick(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter: no value satisfied {} in 1000 draws",
                self.whence
            );
        }
    }

    /// A constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn pick(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Type-erases a strategy for heterogeneous arm lists.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn pick(&self, rng: &mut TestRng) -> T {
            (**self).pick(rng)
        }
    }

    /// Weighted union of strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> OneOf<T> {
        /// Builds from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> OneOf<T> {
            assert!(!arms.is_empty(), "prop_oneof: no arms");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof: zero total weight");
            OneOf { arms, total }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn pick(&self, rng: &mut TestRng) -> T {
            let mut draw = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if draw < *w as u64 {
                    return s.pick(rng);
                }
                draw -= *w as u64;
            }
            unreachable!("weights accounted above")
        }
    }

    /// A closure-backed strategy (`prop_compose!` desugars to this).
    pub struct FnStrategy<F>(F);

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;
        fn pick(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Wraps a closure as a strategy.
    pub fn fn_strategy<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
        FnStrategy(f)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn pick(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.pick(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

    /// `&str` patterns as strategies: `".{a,b}"` (length-ranged
    /// arbitrary text) or a literal string.
    impl Strategy for &'static str {
        type Value = String;
        fn pick(&self, rng: &mut TestRng) -> String {
            if let Some((min, max)) = parse_dot_repeat(self) {
                let len = rng.gen_range(min..=max);
                (0..len)
                    .map(|_| {
                        // Mostly printable ASCII, some exotic chars, to
                        // probe parsers without drowning in invalid
                        // UTF-8 handling (Strings are always valid).
                        match rng.gen_range(0u8..10) {
                            0 => {
                                char::from_u32(rng.gen_range(0x80u32..0x2FFF)).unwrap_or('\u{FFFD}')
                            }
                            1 => ['\t', '\n', '=', '/', '.', '{', '}'][rng.gen_range(0usize..7)],
                            _ => rng.gen_range(0x20u8..0x7F) as char,
                        }
                    })
                    .collect()
            } else {
                (*self).to_string()
            }
        }
    }

    /// Parses the `".{min,max}"` regex shape.
    fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
        let rest = pat.strip_prefix(".{")?;
        let rest = rest.strip_suffix('}')?;
        let (a, b) = rest.split_once(',')?;
        Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
    }
}

/// Types with a canonical "arbitrary value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Marker for [`any`], implementing [`Strategy`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    /// Vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.pick(rng)).collect()
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, Strategy, TestRng};
    use rand::{Rng, RngCore};

    /// A deferred index into a not-yet-known-length collection.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolves against a concrete length (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }

    /// Uniform choice from a fixed list.
    pub fn select<T: Clone + 'static>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select: empty list");
        Select { items }
    }

    /// See [`select`].
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn pick(&self, rng: &mut TestRng) -> T {
            self.items[rng.gen_range(0..self.items.len())].clone()
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Just;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        Arbitrary, ProptestConfig, Strategy,
    };
}

/// Asserts inside a property (panics with context in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted (or unweighted) union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Composes named sub-strategies into a derived strategy function.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident()(
            $($arg:pat in $strat:expr),+ $(,)?
        ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::Strategy<Value = $ret> {
            $crate::strategy::fn_strategy(move |rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::pick(&($strat), rng);)+
                $body
            })
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = <$crate::TestRng as $crate::SeedableRng>::seed_from_u64(
                    $crate::seed_for(stringify!($name)),
                );
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::pick(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Declares property tests over strategies (shim: no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(a in 1u8..10, (b, c) in (0u16..=3, 5i64..6)) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b <= 3);
            prop_assert_eq!(c, 5);
        }

        #[test]
        fn maps_and_vecs(v in prop::collection::vec((0u8..4).prop_map(|x| x * 2), 1..=5)) {
            prop_assert!(!v.is_empty() && v.len() <= 5);
            prop_assert!(v.iter().all(|x| x % 2 == 0 && *x < 8));
        }

        #[test]
        fn oneof_select_index(
            p in prop_oneof![Just(0u8), 1u8..3],
            s in prop::sample::select(vec!["a", "b"]),
            idx in any::<prop::sample::Index>(),
            raw in any::<[u8; 4]>(),
        ) {
            prop_assert!(p < 3);
            prop_assert!(s == "a" || s == "b");
            prop_assert!(idx.index(7) < 7);
            prop_assert_eq!(raw.len(), 4);
        }

        #[test]
        fn string_pattern(input in ".{0,16}") {
            prop_assert!(input.chars().count() <= 16);
        }
    }

    prop_compose! {
        fn arb_pair()(a in 0u8..4, b in 10u16..20) -> (u8, u16) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn composed(pair in arb_pair()) {
            prop_assert!(pair.0 < 4 && (10..20).contains(&pair.1));
        }
    }

    #[test]
    fn weighted_oneof_respects_weights() {
        use crate::{seed_for, SeedableRng, Strategy, TestRng};
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = TestRng::seed_from_u64(seed_for("weights"));
        let trues = (0..1_000).filter(|_| s.pick(&mut rng)).count();
        assert!(trues > 800, "trues={trues}");
    }
}
