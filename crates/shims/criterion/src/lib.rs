//! Offline shim of the `criterion` API surface used by the workspace
//! benches. No statistics, plots, or outlier analysis — just a
//! calibrated wall-clock loop that prints ns/iter (and derived
//! throughput), so `cargo bench` works in the offline environment and
//! the bench sources stay byte-compatible with real criterion.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement loop handle passed to bench closures.
pub struct Bencher {
    iters_hint: u64,
    /// (total elapsed, iters) of the measured run.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `f`, auto-scaling the iteration count to ~0.2 s.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration.
        let mut iters = 1u64;
        let budget = Duration::from_millis(200);
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= budget || iters >= self.iters_hint.max(1) * 1_000_000 {
                self.result = Some((elapsed, iters));
                return;
            }
            let scale = if elapsed.as_nanos() == 0 {
                16
            } else {
                ((budget.as_nanos() / elapsed.as_nanos()) + 1).min(16) as u64
            };
            iters = iters.saturating_mul(scale.max(2));
        }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/name`-style benchmark id.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("budget", 40_000)` → `budget/40000`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Top-level harness context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs and reports a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API parity; the shim runs
    /// one calibrated measurement).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        iters_hint: 1,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((elapsed, iters)) => {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            let extra = match throughput {
                Some(Throughput::Elements(n)) if ns > 0.0 => {
                    format!("  ({:.2} M elem/s)", n as f64 / ns * 1e3 / 1e6)
                }
                Some(Throughput::Bytes(n)) if ns > 0.0 => {
                    format!("  ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1 << 20) as f64)
                }
                _ => String::new(),
            };
            println!("bench {name:<40} {ns:>14.1} ns/iter{extra}");
        }
        None => println!("bench {name:<40} (no measurement: closure never called iter)"),
    }
}

/// Collects bench functions into a runnable group (API parity macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
