//! A precomputed-hash node index.
//!
//! The Flowtree hot path probes the key→node index once per chain step
//! while searching the longest matching parent. A general-purpose
//! `HashMap<FlowKey, u32>` re-hashes the 7-feature key on every probe;
//! this table instead takes the caller's already-computed 64-bit key
//! hash (maintained incrementally by [`flowkey::HashedChainUp`]) and
//! stores `(hash, node id)` pairs in an open-addressing array, so a
//! probe is one masked load plus a word compare. Key equality on hash
//! match is delegated to a caller closure reading the node arena — the
//! table never stores keys, keeping slots at 16 bytes.
//!
//! Linear probing with tombstones; power-of-two capacity; resizes at
//! 7/8 occupancy (live + tombstones). All operations are O(1) expected
//! with the mixed hashes [`flowkey::key_hash`] produces.

/// Slot id marking an empty slot.
const EMPTY: u32 = u32::MAX;
/// Slot id marking a deleted slot (probe chains continue through it).
const TOMB: u32 = u32::MAX - 1;

#[derive(Debug, Clone, Copy)]
struct Slot {
    hash: u64,
    id: u32,
}

const VACANT: Slot = Slot { hash: 0, id: EMPTY };

/// Open-addressing `u64 hash → u32 node id` index with external key
/// storage (see module docs).
#[derive(Debug, Clone)]
pub(crate) struct KeyIndex {
    slots: Vec<Slot>,
    mask: usize,
    live: usize,
    tombs: usize,
}

impl KeyIndex {
    /// An index pre-sized for roughly `n` live entries.
    pub(crate) fn with_capacity(n: usize) -> KeyIndex {
        let cap = (n.saturating_mul(8) / 7 + 1).next_power_of_two().max(16);
        KeyIndex {
            slots: vec![VACANT; cap],
            mask: cap - 1,
            live: 0,
            tombs: 0,
        }
    }

    /// Number of live entries.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Finds the id mapped under `hash` whose key satisfies `eq`
    /// (at most one can, because keys are unique in the arena).
    #[inline]
    pub(crate) fn get(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let mut i = hash as usize & self.mask;
        loop {
            let s = self.slots[i];
            if s.id == EMPTY {
                return None;
            }
            if s.id != TOMB && s.hash == hash && eq(s.id) {
                return Some(s.id);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts `hash → id`. The caller guarantees the key is absent
    /// (always true on the miss path, which probed first).
    pub(crate) fn insert(&mut self, hash: u64, id: u32) {
        debug_assert!(id < TOMB, "node id collides with slot sentinels");
        if (self.live + self.tombs + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mut i = hash as usize & self.mask;
        loop {
            let s = self.slots[i];
            if s.id == EMPTY || s.id == TOMB {
                if s.id == TOMB {
                    self.tombs -= 1;
                }
                self.slots[i] = Slot { hash, id };
                self.live += 1;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes and returns the id under `hash` whose key satisfies
    /// `eq`, if present.
    pub(crate) fn remove(&mut self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let mut i = hash as usize & self.mask;
        loop {
            let s = self.slots[i];
            if s.id == EMPTY {
                return None;
            }
            if s.id != TOMB && s.hash == hash && eq(s.id) {
                // Keep probe chains intact unless the next slot is
                // already empty, in which case the slot can empty too.
                if self.slots[(i + 1) & self.mask].id == EMPTY {
                    self.slots[i] = VACANT;
                } else {
                    self.slots[i] = Slot { hash: 0, id: TOMB };
                    self.tombs += 1;
                }
                self.live -= 1;
                return Some(s.id);
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        // Double only when live entries genuinely fill the table;
        // otherwise rebuild at the same size to flush tombstones.
        let new_cap = if self.live * 8 > self.slots.len() * 5 {
            self.slots.len() * 2
        } else {
            self.slots.len()
        };
        let old = std::mem::replace(&mut self.slots, vec![VACANT; new_cap]);
        self.mask = new_cap - 1;
        self.tombs = 0;
        for s in old {
            if s.id != EMPTY && s.id != TOMB {
                let mut i = s.hash as usize & self.mask;
                while self.slots[i].id != EMPTY {
                    i = (i + 1) & self.mask;
                }
                self.slots[i] = s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = KeyIndex::with_capacity(4);
        let keys: Vec<u64> = (0..1_000u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
            .collect();
        for (id, &h) in keys.iter().enumerate() {
            t.insert(h, id as u32);
        }
        assert_eq!(t.len(), 1_000);
        for (id, &h) in keys.iter().enumerate() {
            assert_eq!(t.get(h, |got| got == id as u32), Some(id as u32));
        }
        // Remove the odd ids, keep the even.
        for (id, &h) in keys.iter().enumerate().filter(|(id, _)| id % 2 == 1) {
            assert_eq!(t.remove(h, |got| got == id as u32), Some(id as u32));
        }
        assert_eq!(t.len(), 500);
        for (id, &h) in keys.iter().enumerate() {
            let want = if id % 2 == 0 { Some(id as u32) } else { None };
            assert_eq!(t.get(h, |got| got == id as u32), want);
        }
    }

    #[test]
    fn colliding_hashes_disambiguate_via_eq() {
        let mut t = KeyIndex::with_capacity(8);
        // Same hash, three different "keys" distinguished by id parity
        // games in the eq closure.
        t.insert(42, 0);
        t.insert(42, 1);
        t.insert(42, 2);
        assert_eq!(t.get(42, |id| id == 1), Some(1));
        assert_eq!(t.remove(42, |id| id == 1), Some(1));
        assert_eq!(t.get(42, |id| id == 1), None);
        assert_eq!(t.get(42, |id| id == 0), Some(0));
        assert_eq!(t.get(42, |id| id == 2), Some(2));
    }

    #[test]
    fn heavy_churn_keeps_probe_chains_sound() {
        let mut t = KeyIndex::with_capacity(16);
        let h = |i: u64| i.wrapping_mul(0xd6e8feb866659fd9).rotate_left(17);
        for round in 0..50u64 {
            for i in 0..200u64 {
                t.insert(h(round * 1000 + i), (round * 1000 + i) as u32);
            }
            for i in 0..200u64 {
                let k = h(round * 1000 + i);
                let id = (round * 1000 + i) as u32;
                assert_eq!(t.remove(k, |g| g == id), Some(id));
            }
        }
        assert_eq!(t.len(), 0);
    }
}
