//! A fast, non-cryptographic hasher for flow keys.
//!
//! Flowtree updates are dominated by hash-map probes on [`FlowKey`]s, so
//! the default SipHash is needless overhead (keys are not
//! attacker-controlled map inputs in the threat model of a summarizer —
//! worst case an adversary degrades their own summary's accuracy, not
//! memory safety). This is the well-known Fx multiply-rotate hash used
//! by rustc, implemented locally to keep the offline dependency set
//! small.
//!
//! [`FlowKey`]: flowkey::FlowKey

use core::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx hasher state.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.mix(v as u64);
        self.mix((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type BuildFx = BuildHasherDefault<FxHasher>;

/// Hashes any `Hash` value with [`FxHasher`] (used for child step hashes).
#[inline]
pub fn fxhash<T: core::hash::Hash>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkey::FlowKey;

    #[test]
    fn deterministic_and_distinguishing() {
        let a: FlowKey = "src=1.1.1.0/24".parse().unwrap();
        let b: FlowKey = "src=1.1.2.0/24".parse().unwrap();
        assert_eq!(fxhash(&a), fxhash(&a));
        assert_ne!(fxhash(&a), fxhash(&b));
        assert_ne!(fxhash(&a), fxhash(&FlowKey::ROOT));
    }

    #[test]
    fn byte_writes_cover_remainders() {
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 0]); // zero-padded but different length marker
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn collision_rate_is_sane_on_sequential_keys() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0u32..10_000 {
            let key: FlowKey = format!(
                "src={}.{}.{}.{}/32",
                i >> 24,
                (i >> 16) & 255,
                (i >> 8) & 255,
                i & 255
            )
            .parse()
            .unwrap();
            seen.insert(fxhash(&key));
        }
        // All 10k sequential host keys should hash distinctly.
        assert_eq!(seen.len(), 10_000);
    }
}
