//! Flowtree configuration: node budget, eviction, and estimation policies.

use crate::pop::Metric;

/// How the self-adjustment step picks victims when the tree exceeds its
/// node budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EvictionPolicy {
    /// Evict the leaf with the smallest complementary popularity
    /// (ties broken towards the least recently touched). This is the
    /// paper's "summarize the unpopular flows" rule.
    #[default]
    SmallestFirst,
    /// Evict the least recently touched leaf (ties broken towards the
    /// smallest complementary popularity). Included for the ablation
    /// study — it favors *currency* over *popularity*.
    ColdFirst,
}

/// How queries for keys that are absent from the tree split the residual
/// (complementary) mass of the nearest retained ancestors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Estimator {
    /// Split residual mass uniformly over the ancestor's uncovered
    /// space: each hierarchy level halves the share (protocol and site
    /// steps divide by their fan-out). The paper's "decompose the query
    /// into a set of queries that can be answered by the given
    /// hierarchy".
    #[default]
    Uniform,
    /// Attribute no residual mass: a guaranteed lower bound.
    Conservative,
    /// Attribute the full residual mass of every overlapping ancestor:
    /// a guaranteed upper bound (the copy-down estimate).
    Optimistic,
}

/// Flowtree tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Config {
    /// Maximum number of tree nodes, including the root and internal
    /// join nodes. The paper's evaluation uses 40 000.
    pub node_budget: usize,
    /// After a compaction the tree is shrunk to
    /// `node_budget * low_water` nodes, so compactions amortize over at
    /// least `(1 - low_water) * node_budget` subsequent inserts.
    pub low_water: f64,
    /// Counter used to rank popularity for eviction / top-k defaults.
    pub metric: Metric,
    /// Victim selection policy.
    pub eviction: EvictionPolicy,
    /// Residual-mass estimator for absent keys.
    pub estimator: Estimator,
}

impl Config {
    /// Smallest permitted node budget (root + a handful of children —
    /// anything lower cannot hold a meaningful summary).
    pub const MIN_BUDGET: usize = 16;

    /// The paper's evaluation configuration: 40 K nodes, packets metric.
    pub fn paper() -> Config {
        Config::with_budget(40_000)
    }

    /// Default configuration with an explicit node budget.
    pub fn with_budget(node_budget: usize) -> Config {
        Config {
            node_budget: node_budget.max(Self::MIN_BUDGET),
            low_water: 0.9,
            metric: Metric::Packets,
            eviction: EvictionPolicy::SmallestFirst,
            estimator: Estimator::Uniform,
        }
    }

    /// The post-compaction target size.
    pub fn compaction_target(&self) -> usize {
        let lw = self.low_water.clamp(0.1, 0.99);
        ((self.node_budget as f64 * lw) as usize).max(Self::MIN_BUDGET / 2)
    }
}

impl Default for Config {
    fn default() -> Config {
        Config::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_fig3() {
        let c = Config::paper();
        assert_eq!(c.node_budget, 40_000);
        assert_eq!(c.metric, Metric::Packets);
    }

    #[test]
    fn budget_is_floored() {
        assert_eq!(Config::with_budget(1).node_budget, Config::MIN_BUDGET);
    }

    #[test]
    fn compaction_target_below_budget() {
        let c = Config::with_budget(1000);
        assert!(c.compaction_target() < 1000);
        assert!(c.compaction_target() >= 800);
    }
}
