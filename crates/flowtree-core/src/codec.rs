//! Compact binary serialization of Flowtrees.
//!
//! Summaries are what the distributed system ships between sites, so the
//! encoding must be small (that is the point of the paper) and safe to
//! decode from untrusted bytes (the guides' rule: network input is
//! hostile until proven otherwise — every structural claim in the stream
//! is re-verified on decode).
//!
//! Format (all integers little-endian or LEB128 varints):
//!
//! ```text
//! magic   4 bytes  "FTR1"
//! version 1 byte   = 1
//! schema  1 byte   SchemaKind discriminant
//! count   varint   number of nodes, ≥ 1
//! nodes   count ×  (pre-order; node 0 must be the root)
//!   parent  varint   position of the parent in this stream (< own pos);
//!                    node 0 encodes 0
//!   key     packed   flowkey::pack
//!   comp    3 × signed varint (packets, bytes, flows)
//! ```
//!
//! The emitted pre-order is **canonical**: sibling lists are kept in
//! step-hash order, so any two trees holding the same node set encode
//! to identical bytes regardless of how the nodes arrived (insertion,
//! batch, sharded fold, or structural merge). Decoders do not depend
//! on the order — parent references alone carry the structure — so
//! frames produced by older writers remain readable.

use crate::pop::Popularity;
use crate::tree::FlowTree;
use crate::Config;
use core::fmt;
use flowkey::pack::{
    pack_key, packed_key_len, read_varint, unpack_key, varint_len, varint_signed_len, write_varint,
    write_varint_signed,
};
use flowkey::{key_hash, FlowKey, Schema, SchemaKind};

/// Magic bytes of the Flowtree wire format.
pub const MAGIC: [u8; 4] = *b"FTR1";
/// Current format version.
pub const VERSION: u8 = 1;

/// Hard ceiling on the node count accepted from the wire, protecting the
/// decoder from resource-exhaustion frames.
pub const MAX_WIRE_NODES: usize = 4_000_000;

/// Errors produced while decoding a Flowtree frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The frame does not start with [`MAGIC`].
    BadMagic,
    /// The version byte is not supported.
    BadVersion(u8),
    /// The schema byte is not a known [`SchemaKind`].
    BadSchema(u8),
    /// The frame ended early.
    Truncated,
    /// A key failed to decode.
    BadKey,
    /// The node count exceeds [`MAX_WIRE_NODES`] or is zero.
    BadCount(u64),
    /// A structural claim in the stream was false (bad parent reference,
    /// non-root first node, parent not a chain ancestor, duplicate key…).
    BadStructure(&'static str),
    /// Trailing bytes after a complete tree.
    TrailingBytes,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => f.write_str("bad magic"),
            CodecError::BadVersion(v) => write!(f, "unsupported version {v}"),
            CodecError::BadSchema(s) => write!(f, "unknown schema {s}"),
            CodecError::Truncated => f.write_str("truncated frame"),
            CodecError::BadKey => f.write_str("malformed key"),
            CodecError::BadCount(n) => write!(f, "implausible node count {n}"),
            CodecError::BadStructure(s) => write!(f, "bad structure: {s}"),
            CodecError::TrailingBytes => f.write_str("trailing bytes after tree"),
        }
    }
}

impl std::error::Error for CodecError {}

fn schema_byte(kind: SchemaKind) -> u8 {
    match kind {
        SchemaKind::Src1 => 0,
        SchemaKind::SrcDst2 => 1,
        SchemaKind::Four => 2,
        SchemaKind::Five => 3,
        SchemaKind::Extended => 4,
    }
}

fn schema_from_byte(b: u8) -> Option<SchemaKind> {
    Some(match b {
        0 => SchemaKind::Src1,
        1 => SchemaKind::SrcDst2,
        2 => SchemaKind::Four,
        3 => SchemaKind::Five,
        4 => SchemaKind::Extended,
        _ => return None,
    })
}

impl FlowTree {
    /// The canonical pre-order framing shared by [`FlowTree::encode`]
    /// and [`FlowTree::encoded_size`]: calls `row(parent_pos, node)`
    /// for every node in stream order — one definition of what a frame
    /// row is, so the writer and the size predictor cannot drift.
    fn for_each_frame_row(&self, mut row: impl FnMut(u64, &crate::tree::Node)) {
        let order = self.preorder();
        // Position of each node id in the emitted stream.
        let mut pos = vec![0u32; self.capacity()];
        for (i, &id) in order.iter().enumerate() {
            pos[id as usize] = i as u32;
        }
        for (i, &id) in order.iter().enumerate() {
            let node = self.node(id);
            let parent_pos = if i == 0 {
                0
            } else {
                pos[node.parent as usize] as u64
            };
            row(parent_pos, node);
        }
    }

    /// Encodes the tree into the compact wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.len() * 16);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(schema_byte(self.schema().kind()));
        write_varint(&mut out, self.len() as u64);
        self.for_each_frame_row(|parent_pos, node| {
            write_varint(&mut out, parent_pos);
            pack_key(&mut out, &node.key);
            write_varint_signed(&mut out, node.comp.packets);
            write_varint_signed(&mut out, node.comp.bytes);
            write_varint_signed(&mut out, node.comp.flows);
        });
        out
    }

    /// Size in bytes of the encoded tree (what a site would transfer),
    /// computed arithmetically — varint widths plus packed key sizes
    /// over one pre-order walk — without allocating and encoding a
    /// throwaway frame. Always equals `self.encode().len()`.
    pub fn encoded_size(&self) -> usize {
        let mut len = 6 + varint_len(self.len() as u64);
        self.for_each_frame_row(|parent_pos, node| {
            len += varint_len(parent_pos)
                + packed_key_len(&node.key)
                + varint_signed_len(node.comp.packets)
                + varint_signed_len(node.comp.bytes)
                + varint_signed_len(node.comp.flows);
        });
        len
    }

    /// Decodes and fully validates a frame produced by [`encode`].
    ///
    /// Every structural claim is re-verified: the first node must be the
    /// root, every parent reference must point backwards to a node whose
    /// key is a canonical-chain ancestor of the child, and keys must be
    /// unique. The node budget of `cfg` is raised to the decoded size if
    /// necessary, so a faithfully transferred summary is never mutated by
    /// the act of decoding.
    ///
    /// [`encode`]: FlowTree::encode
    pub fn decode(bytes: &[u8], cfg: Config) -> Result<FlowTree, CodecError> {
        let (tree, used) = Self::decode_prefix(bytes, cfg)?;
        if used != bytes.len() {
            return Err(CodecError::TrailingBytes);
        }
        Ok(tree)
    }

    /// Like [`decode`](FlowTree::decode) but tolerates trailing bytes,
    /// returning the tree and the number of bytes consumed (for framed
    /// streams carrying several trees).
    pub fn decode_prefix(bytes: &[u8], cfg: Config) -> Result<(FlowTree, usize), CodecError> {
        if bytes.len() < 6 {
            return Err(CodecError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(CodecError::BadMagic);
        }
        if bytes[4] != VERSION {
            return Err(CodecError::BadVersion(bytes[4]));
        }
        let kind = schema_from_byte(bytes[5]).ok_or(CodecError::BadSchema(bytes[5]))?;
        let schema = Schema::from_kind(kind);
        let mut pos = 6usize;
        let (count, n) = read_varint(&bytes[pos..]).map_err(|_| CodecError::Truncated)?;
        pos += n;
        if count == 0 || count as usize > MAX_WIRE_NODES {
            return Err(CodecError::BadCount(count));
        }
        let count = count as usize;

        let mut cfg = cfg;
        cfg.node_budget = cfg.node_budget.max(count);
        let mut tree = FlowTree::new(schema, cfg);
        // Keys / depths / node ids in stream order, so parent
        // references resolve to already-built nodes.
        let mut keys: Vec<FlowKey> = Vec::with_capacity(count);
        let mut depths: Vec<u32> = Vec::with_capacity(count);
        let mut ids: Vec<u32> = Vec::with_capacity(count);

        for i in 0..count {
            let (parent_pos, n) = read_varint(&bytes[pos..]).map_err(|_| CodecError::Truncated)?;
            pos += n;
            let (key, n) = unpack_key(&bytes[pos..]).map_err(|e| match e {
                flowkey::pack::UnpackError::Truncated => CodecError::Truncated,
                flowkey::pack::UnpackError::Invalid => CodecError::BadKey,
            })?;
            pos += n;
            let mut comp = Popularity::ZERO;
            for field in [&mut comp.packets, &mut comp.bytes, &mut comp.flows] {
                let (v, n) = flowkey::pack::read_varint_signed(&bytes[pos..])
                    .map_err(|_| CodecError::Truncated)?;
                *field = v;
                pos += n;
            }

            if !schema.conforms(&key) {
                return Err(CodecError::BadStructure("key outside schema"));
            }
            if i == 0 {
                if !key.is_root() {
                    return Err(CodecError::BadStructure("first node is not the root"));
                }
                if parent_pos != 0 {
                    return Err(CodecError::BadStructure("root parent reference"));
                }
                tree.set_root_comp(comp);
                ids.push(tree.root);
                depths.push(0);
            } else {
                if parent_pos as usize >= i {
                    return Err(CodecError::BadStructure("forward parent reference"));
                }
                // Validate the chain-ancestor claim and extract the
                // key's step under the parent in the same upward walk,
                // then trust the validated parent position to attach
                // directly — no longest-matching-parent search. Streams
                // produced by `encode` always name the direct parent,
                // so the fallback splice inside `attach_decoded` only
                // runs for indirect (but still valid) hand-built
                // streams.
                let parent_depth = depths[parent_pos as usize];
                let depth = schema.depth(&key);
                if depth <= parent_depth {
                    return Err(CodecError::BadStructure("parent not a chain ancestor"));
                }
                let (anc, step_key) = schema.chain_ancestor_with_step(&key, parent_depth);
                if anc != keys[parent_pos as usize] {
                    return Err(CodecError::BadStructure("parent not a chain ancestor"));
                }
                let step_hash = key_hash(&step_key);
                let id = tree
                    .attach_decoded(key, depth, comp, ids[parent_pos as usize], step_hash)
                    .ok_or(CodecError::BadStructure("duplicate key"))?;
                ids.push(id);
                depths.push(depth);
            }
            keys.push(key);
        }
        Ok((tree, pos))
    }

    pub(crate) fn set_root_comp(&mut self, comp: Popularity) {
        let root = self.root;
        self.nodes[root as usize].comp = comp;
        self.total += comp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;

    fn sample_tree() -> FlowTree {
        let mut tree = FlowTree::new(Schema::four_feature(), Config::with_budget(256));
        for i in 0..100u32 {
            let key: FlowKey = format!(
                "src=10.0.{}.{}/32 dst=192.0.2.{}/32 sport={} dport=443",
                i / 16,
                i % 16,
                i % 8,
                1024 + i
            )
            .parse()
            .unwrap();
            tree.insert(&key, Popularity::new(1 + i as i64, 100, 1));
        }
        tree
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let tree = sample_tree();
        let bytes = tree.encode();
        let back = FlowTree::decode(&bytes, Config::with_budget(256)).unwrap();
        back.validate();
        assert_eq!(back.len(), tree.len());
        assert_eq!(back.total(), tree.total());
        for view in tree.iter() {
            assert_eq!(back.comp_of(view.key), Some(view.comp), "at {}", view.key);
        }
    }

    #[test]
    fn empty_tree_roundtrips() {
        let tree = FlowTree::new(Schema::five_feature(), Config::with_budget(64));
        let bytes = tree.encode();
        let back = FlowTree::decode(&bytes, Config::with_budget(64)).unwrap();
        assert_eq!(back.len(), 1);
        assert!(back.total().is_zero());
    }

    #[test]
    fn negative_masses_roundtrip() {
        let mut a = sample_tree();
        let b = sample_tree();
        a.diff(&b).unwrap();
        // a now holds zero/negative-free mass; force a real negative node.
        a.add_mass(
            "src=1.2.3.4/32".parse().unwrap(),
            Popularity::new(-7, -9, 0),
        );
        let bytes = a.encode();
        let back = FlowTree::decode(&bytes, Config::with_budget(256)).unwrap();
        assert_eq!(
            back.comp_of(&"src=1.2.3.4/32".parse().unwrap()),
            Some(Popularity::new(-7, -9, 0))
        );
    }

    #[test]
    fn truncation_always_errors() {
        let bytes = sample_tree().encode();
        for cut in 0..bytes.len().min(64) {
            assert!(FlowTree::decode(&bytes[..cut], Config::paper()).is_err());
        }
        // And a cut in the middle of the node list.
        let cut = bytes.len() - 3;
        assert!(FlowTree::decode(&bytes[..cut], Config::paper()).is_err());
    }

    #[test]
    fn header_errors() {
        let mut bytes = sample_tree().encode();
        bytes[0] = b'X';
        assert_eq!(
            FlowTree::decode(&bytes, Config::paper()).unwrap_err(),
            CodecError::BadMagic
        );
        let mut bytes = sample_tree().encode();
        bytes[4] = 9;
        assert_eq!(
            FlowTree::decode(&bytes, Config::paper()).unwrap_err(),
            CodecError::BadVersion(9)
        );
        let mut bytes = sample_tree().encode();
        bytes[5] = 99;
        assert_eq!(
            FlowTree::decode(&bytes, Config::paper()).unwrap_err(),
            CodecError::BadSchema(99)
        );
    }

    #[test]
    fn trailing_bytes_rejected_but_prefix_ok() {
        let mut bytes = sample_tree().encode();
        let clean = bytes.len();
        bytes.push(0xAA);
        assert_eq!(
            FlowTree::decode(&bytes, Config::paper()).unwrap_err(),
            CodecError::TrailingBytes
        );
        let (tree, used) = FlowTree::decode_prefix(&bytes, Config::paper()).unwrap();
        assert_eq!(used, clean);
        assert_eq!(tree.len(), sample_tree().len());
    }

    #[test]
    fn hostile_count_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(0);
        flowkey::pack::write_varint(&mut bytes, u64::MAX);
        assert!(matches!(
            FlowTree::decode(&bytes, Config::paper()).unwrap_err(),
            CodecError::BadCount(_)
        ));
    }

    #[test]
    fn non_root_first_node_rejected() {
        // Hand-build: count=1 but key non-root.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(0); // Src1
        flowkey::pack::write_varint(&mut bytes, 1);
        flowkey::pack::write_varint(&mut bytes, 0);
        pack_key(&mut bytes, &"src=1.0.0.0/8".parse().unwrap());
        for _ in 0..3 {
            flowkey::pack::write_varint_signed(&mut bytes, 0);
        }
        assert!(matches!(
            FlowTree::decode(&bytes, Config::paper()).unwrap_err(),
            CodecError::BadStructure(_)
        ));
    }

    #[test]
    fn bogus_parent_reference_rejected() {
        // Two nodes where the second claims an off-chain parent.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(1); // SrcDst2
        flowkey::pack::write_varint(&mut bytes, 3);
        // Root.
        flowkey::pack::write_varint(&mut bytes, 0);
        pack_key(&mut bytes, &FlowKey::ROOT);
        for _ in 0..3 {
            flowkey::pack::write_varint_signed(&mut bytes, 0);
        }
        // A deep node under root: fine.
        flowkey::pack::write_varint(&mut bytes, 0);
        pack_key(&mut bytes, &"src=1.0.0.0/8 dst=2.0.0.0/8".parse().unwrap());
        for _ in 0..3 {
            flowkey::pack::write_varint_signed(&mut bytes, 1);
        }
        // A node claiming node 1 as parent although it is not an ancestor.
        flowkey::pack::write_varint(&mut bytes, 1);
        pack_key(&mut bytes, &"src=9.0.0.0/8 dst=8.0.0.0/8".parse().unwrap());
        for _ in 0..3 {
            flowkey::pack::write_varint_signed(&mut bytes, 1);
        }
        assert_eq!(
            FlowTree::decode(&bytes, Config::paper()).unwrap_err(),
            CodecError::BadStructure("parent not a chain ancestor")
        );
    }

    #[test]
    fn decode_raises_budget_to_fit() {
        let tree = sample_tree();
        let bytes = tree.encode();
        let back = FlowTree::decode(&bytes, Config::with_budget(16)).unwrap();
        assert_eq!(back.len(), tree.len(), "decode must not compact away nodes");
    }

    #[test]
    fn encoding_is_compact() {
        let tree = sample_tree();
        let per_node = tree.encoded_size() as f64 / tree.len() as f64;
        assert!(per_node < 32.0, "expected < 32 B/node, got {per_node:.1}");
    }

    #[test]
    fn fuzz_decode_never_panics() {
        let bytes = sample_tree().encode();
        // Flip each byte and decode; must never panic.
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x5A;
            let _ = FlowTree::decode(&mutated, Config::paper());
        }
    }
}
