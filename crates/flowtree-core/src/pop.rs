//! Popularity counters.
//!
//! The paper annotates every node with its popularity — "packet count,
//! flow count, and/or byte count". [`Popularity`] carries all three.
//! Counters are *signed* so that `diff` summaries (which legitimately
//! contain negative masses) are first-class values of the same type.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// Which counter a policy (eviction, top-k, HHH) ranks by.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Metric {
    /// Rank by packet count (the paper's figures use packets).
    #[default]
    Packets,
    /// Rank by byte count.
    Bytes,
    /// Rank by flow count.
    Flows,
}

/// Packet, byte, and flow counts of a (generalized) flow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Popularity {
    /// Number of packets.
    pub packets: i64,
    /// Number of bytes.
    pub bytes: i64,
    /// Number of flows (flow records).
    pub flows: i64,
}

impl Popularity {
    /// The zero popularity.
    pub const ZERO: Popularity = Popularity {
        packets: 0,
        bytes: 0,
        flows: 0,
    };

    /// Popularity contributed by one packet of `bytes` bytes.
    #[inline]
    pub fn packet(bytes: u32) -> Popularity {
        Popularity {
            packets: 1,
            bytes: bytes as i64,
            flows: 0,
        }
    }

    /// Popularity contributed by one flow record.
    #[inline]
    pub fn flow(packets: u64, bytes: u64) -> Popularity {
        Popularity {
            packets: packets as i64,
            bytes: bytes as i64,
            flows: 1,
        }
    }

    /// Explicit constructor.
    #[inline]
    pub fn new(packets: i64, bytes: i64, flows: i64) -> Popularity {
        Popularity {
            packets,
            bytes,
            flows,
        }
    }

    /// The value of one counter.
    #[inline]
    pub fn get(&self, metric: Metric) -> i64 {
        match metric {
            Metric::Packets => self.packets,
            Metric::Bytes => self.bytes,
            Metric::Flows => self.flows,
        }
    }

    /// Whether all three counters are zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        *self == Popularity::ZERO
    }

    /// Magnitude used for eviction ranking: the absolute value of the
    /// chosen metric (diff trees rank by how *significant* a change is,
    /// regardless of sign).
    #[inline]
    pub fn weight(&self, metric: Metric) -> u64 {
        self.get(metric).unsigned_abs()
    }
}

impl Add for Popularity {
    type Output = Popularity;
    #[inline]
    fn add(self, rhs: Popularity) -> Popularity {
        Popularity {
            packets: self.packets + rhs.packets,
            bytes: self.bytes + rhs.bytes,
            flows: self.flows + rhs.flows,
        }
    }
}

impl AddAssign for Popularity {
    #[inline]
    fn add_assign(&mut self, rhs: Popularity) {
        *self = *self + rhs;
    }
}

impl Sub for Popularity {
    type Output = Popularity;
    #[inline]
    fn sub(self, rhs: Popularity) -> Popularity {
        Popularity {
            packets: self.packets - rhs.packets,
            bytes: self.bytes - rhs.bytes,
            flows: self.flows - rhs.flows,
        }
    }
}

impl SubAssign for Popularity {
    #[inline]
    fn sub_assign(&mut self, rhs: Popularity) {
        *self = *self - rhs;
    }
}

impl Neg for Popularity {
    type Output = Popularity;
    #[inline]
    fn neg(self) -> Popularity {
        Popularity {
            packets: -self.packets,
            bytes: -self.bytes,
            flows: -self.flows,
        }
    }
}

impl Sum for Popularity {
    fn sum<I: Iterator<Item = Popularity>>(iter: I) -> Popularity {
        iter.fold(Popularity::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Popularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}p/{}B/{}f", self.packets, self.bytes, self.flows)
    }
}

/// A fractional popularity estimate, produced when a query has to split
/// residual mass across an uncovered portion of the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PopEst {
    /// Estimated packets.
    pub packets: f64,
    /// Estimated bytes.
    pub bytes: f64,
    /// Estimated flows.
    pub flows: f64,
}

impl PopEst {
    /// The zero estimate.
    pub const ZERO: PopEst = PopEst {
        packets: 0.0,
        bytes: 0.0,
        flows: 0.0,
    };

    /// The value of one counter.
    #[inline]
    pub fn get(&self, metric: Metric) -> f64 {
        match metric {
            Metric::Packets => self.packets,
            Metric::Bytes => self.bytes,
            Metric::Flows => self.flows,
        }
    }

    /// Scales all counters by `f`.
    #[inline]
    pub fn scaled(&self, f: f64) -> PopEst {
        PopEst {
            packets: self.packets * f,
            bytes: self.bytes * f,
            flows: self.flows * f,
        }
    }

    /// Rounds to the nearest integer popularity.
    pub fn rounded(&self) -> Popularity {
        Popularity {
            packets: self.packets.round() as i64,
            bytes: self.bytes.round() as i64,
            flows: self.flows.round() as i64,
        }
    }
}

impl From<Popularity> for PopEst {
    fn from(p: Popularity) -> PopEst {
        PopEst {
            packets: p.packets as f64,
            bytes: p.bytes as f64,
            flows: p.flows as f64,
        }
    }
}

impl Add for PopEst {
    type Output = PopEst;
    #[inline]
    fn add(self, rhs: PopEst) -> PopEst {
        PopEst {
            packets: self.packets + rhs.packets,
            bytes: self.bytes + rhs.bytes,
            flows: self.flows + rhs.flows,
        }
    }
}

impl AddAssign for PopEst {
    #[inline]
    fn add_assign(&mut self, rhs: PopEst) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Popularity::packet(1500), Popularity::new(1, 1500, 0));
        assert_eq!(Popularity::flow(10, 9000), Popularity::new(10, 9000, 1));
        assert!(Popularity::ZERO.is_zero());
    }

    #[test]
    fn arithmetic() {
        let a = Popularity::new(3, 100, 1);
        let b = Popularity::new(1, 50, 1);
        assert_eq!(a + b, Popularity::new(4, 150, 2));
        assert_eq!(a - b, Popularity::new(2, 50, 0));
        assert_eq!(-(a - b), Popularity::new(-2, -50, 0));
        assert_eq!((a - a), Popularity::ZERO);
        let sum: Popularity = [a, b, b].into_iter().sum();
        assert_eq!(sum, Popularity::new(5, 200, 3));
    }

    #[test]
    fn weight_uses_absolute_value() {
        let d = Popularity::new(-7, -100, 0);
        assert_eq!(d.weight(Metric::Packets), 7);
        assert_eq!(d.weight(Metric::Bytes), 100);
        assert_eq!(d.weight(Metric::Flows), 0);
    }

    #[test]
    fn est_scaling_and_rounding() {
        let e = PopEst::from(Popularity::new(10, 100, 2)).scaled(0.25);
        assert_eq!(e.packets, 2.5);
        assert_eq!(e.rounded(), Popularity::new(3, 25, 1)); // 0.5 rounds away from zero
        assert_eq!(e.get(Metric::Bytes), 25.0);
    }
}
