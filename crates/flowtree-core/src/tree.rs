//! The Flowtree data structure.
//!
//! A Flowtree is a **self-adjusting, bounded-size tree of generalized
//! flows**. Structurally it is a path-compressed trie over the canonical
//! generalization chains of [`flowkey`]: every node's tree parent is its
//! nearest retained chain ancestor, and internal *join* nodes are created
//! at the lowest common chain ancestor of diverging keys (exactly like a
//! Patricia trie creates branch nodes). Each node stores its
//! **complementary popularity** — the mass observed at that key that is
//! *not* attributed to any retained descendant — which makes node values
//! additive and therefore the whole structure mergeable and diffable by
//! plain node-wise addition/subtraction (the paper's `merge`/`diff`
//! operators).
//!
//! * **Update** (paper §2): existing key → increment its counter.
//!   Missing key → walk the key's canonical chain upward to the nearest
//!   retained ancestor ("longest matching parent") and splice the node
//!   in. No counts are aggregated up the tree on the hot path, giving
//!   the paper's amortized-constant update.
//! * **Self-adjustment**: when the node count exceeds the budget, the
//!   leaves with the smallest complementary popularity are folded into
//!   their parents until the tree is back under the low-water mark —
//!   "keeping the popular flows and summarizing the less-popular ones".
//! * **Queries** run either in `O(subtree)` for retained keys or in
//!   `O(tree)` for arbitrary hierarchical patterns (paper: "time
//!   proportional to the tree nodes"); see [`crate::query`].

use crate::config::{Config, EvictionPolicy};
use crate::hasher::{fxhash, BuildFx};
use crate::pop::Popularity;
use flowkey::{FlowKey, Schema};
use std::collections::{BinaryHeap, HashMap};

pub(crate) const NIL: u32 = u32::MAX;

/// Errors from Flowtree operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// `merge`/`diff` was attempted between trees of different schemas.
    SchemaMismatch,
}

impl core::fmt::Display for TreeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TreeError::SchemaMismatch => f.write_str("flowtrees have different schemas"),
        }
    }
}

impl std::error::Error for TreeError {}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) key: FlowKey,
    pub(crate) depth: u32,
    pub(crate) parent: u32,
    pub(crate) first_child: u32,
    pub(crate) next_sibling: u32,
    pub(crate) prev_sibling: u32,
    /// Hash of this node's chain step at `parent.depth + 1`; lets sibling
    /// scans compare one word instead of recomputing chain ancestors.
    pub(crate) step_hash: u64,
    pub(crate) comp: Popularity,
    pub(crate) touch: u64,
    pub(crate) generation: u32,
    pub(crate) alive: bool,
}

/// Counters describing the work a Flowtree has done — used by the
/// benchmarks to demonstrate the amortized-constant update cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total mass-insert operations (updates).
    pub inserts: u64,
    /// Updates that hit an existing node.
    pub hits: u64,
    /// Updates that created a node.
    pub misses: u64,
    /// Total chain steps walked while searching longest matching parents.
    pub chain_steps: u64,
    /// Join (branch) nodes created.
    pub joins_created: u64,
    /// Compaction runs.
    pub compactions: u64,
    /// Leaves folded into their parents by compactions.
    pub evictions: u64,
    /// Pass-through nodes contracted away.
    pub contractions: u64,
}

impl Stats {
    /// Mean chain steps per update — the "amortized constant" the paper
    /// claims; stays small and flat as the trace grows.
    pub fn mean_chain_steps(&self) -> f64 {
        if self.inserts == 0 {
            0.0
        } else {
            self.chain_steps as f64 / self.inserts as f64
        }
    }
}

/// A read-only view of one tree node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeView<'a> {
    /// The generalized flow this node summarizes.
    pub key: &'a FlowKey,
    /// Complementary popularity: mass at `key` not attributed to any
    /// retained descendant.
    pub comp: Popularity,
    /// Chain depth of the key.
    pub depth: u32,
    /// Key of the tree parent (`None` for the root).
    pub parent: Option<&'a FlowKey>,
    /// Whether the node currently has no children.
    pub is_leaf: bool,
}

/// The self-adjusting flow summary of Saidi et al. (SIGCOMM 2018).
///
/// See the crate-level docs for the design. Typical use:
///
/// ```
/// use flowtree_core::{Config, FlowTree, Popularity};
/// use flowkey::Schema;
///
/// let mut tree = FlowTree::new(Schema::two_feature(), Config::with_budget(1024));
/// let key = "src=10.0.0.1/32 dst=192.0.2.9/32".parse().unwrap();
/// tree.insert(&key, Popularity::packet(1500));
/// let answer = tree.popularity(&key);
/// assert_eq!(answer.est.packets, 1.0);
/// assert!(answer.tracked);
/// ```
#[derive(Debug, Clone)]
pub struct FlowTree {
    pub(crate) schema: Schema,
    pub(crate) cfg: Config,
    pub(crate) nodes: Vec<Node>,
    pub(crate) free: Vec<u32>,
    pub(crate) index: HashMap<FlowKey, u32, BuildFx>,
    pub(crate) root: u32,
    pub(crate) live: usize,
    pub(crate) clock: u64,
    pub(crate) total: Popularity,
    pub(crate) stats: Stats,
}

impl FlowTree {
    /// Creates an empty Flowtree (just the all-wildcard root).
    pub fn new(schema: Schema, cfg: Config) -> FlowTree {
        let root_key = schema.root();
        let root = Node {
            key: root_key,
            depth: 0,
            parent: NIL,
            first_child: NIL,
            next_sibling: NIL,
            prev_sibling: NIL,
            step_hash: 0,
            comp: Popularity::ZERO,
            touch: 0,
            generation: 0,
            alive: true,
        };
        // Pre-size for the budget, but cap so huge budgets (used by
        // tests and oracles) do not pay an up-front allocation.
        let cap = cfg.node_budget.saturating_add(16).min(65_536);
        let mut index = HashMap::with_capacity_and_hasher(cap, BuildFx::default());
        index.insert(root_key, 0);
        FlowTree {
            schema,
            cfg,
            nodes: vec![root],
            free: Vec::new(),
            index,
            root: 0,
            live: 1,
            clock: 0,
            total: Popularity::ZERO,
            stats: Stats::default(),
        }
    }

    /// Creates a Flowtree with the paper's evaluation configuration
    /// (40 K nodes).
    pub fn with_schema(schema: Schema) -> FlowTree {
        FlowTree::new(schema, Config::paper())
    }

    /// The flow schema of this tree.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The configuration of this tree.
    #[inline]
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Current number of nodes (including root and join nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the tree holds only the root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 1
    }

    /// Total mass ever inserted (conserved by compaction; adjusted by
    /// merge/diff).
    #[inline]
    pub fn total(&self) -> Popularity {
        self.total
    }

    /// Work counters.
    #[inline]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Whether `key` is currently retained as a node.
    pub fn contains_key(&self, key: &FlowKey) -> bool {
        self.index.contains_key(key)
    }

    /// The complementary popularity stored at `key`, if retained.
    pub fn comp_of(&self, key: &FlowKey) -> Option<Popularity> {
        self.index.get(key).map(|&id| self.nodes[id as usize].comp)
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    /// Records `pop` mass for `key` (the paper's *update* operation) and
    /// compacts if the node budget is exceeded.
    ///
    /// `key` is canonicalized to the tree's schema (inactive dimensions
    /// forced to wildcards), so callers can pass full 5-tuple keys to any
    /// tree.
    pub fn insert(&mut self, key: &FlowKey, pop: Popularity) {
        let key = self.schema.canonicalize(key);
        self.add_mass(key, pop);
        if self.live > self.cfg.node_budget {
            self.compact();
        }
    }

    /// Convenience: record one packet of `bytes` bytes for `key`.
    pub fn record_packet(&mut self, key: &FlowKey, bytes: u32) {
        self.insert(key, Popularity::packet(bytes));
    }

    /// Convenience: record one flow record for `key`.
    pub fn record_flow(&mut self, key: &FlowKey, packets: u64, bytes: u64) {
        self.insert(key, Popularity::flow(packets, bytes));
    }

    /// Inserts mass without triggering compaction (used by merge/diff,
    /// which compact once at the end). Returns the node id.
    pub(crate) fn add_mass(&mut self, key: FlowKey, pop: Popularity) -> u32 {
        debug_assert!(self.schema.conforms(&key));
        self.clock += 1;
        self.stats.inserts += 1;
        self.total += pop;

        if let Some(&id) = self.index.get(&key) {
            self.stats.hits += 1;
            let node = &mut self.nodes[id as usize];
            node.comp += pop;
            node.touch = self.clock;
            return id;
        }
        self.stats.misses += 1;

        // Longest matching parent: walk the canonical chain upward until
        // an existing node is found. The root always exists, so this
        // terminates; the expected walk is short because popular
        // ancestors are retained.
        let key_depth = self.schema.depth(&key);
        let mut anchor = self.root;
        for p in self.schema.chain_up(&key) {
            self.stats.chain_steps += 1;
            if let Some(&id) = self.index.get(&p) {
                anchor = id;
                break;
            }
        }

        let nid = self.alloc(key, key_depth, pop);
        self.index.insert(key, nid);

        let a_depth = self.nodes[anchor as usize].depth;
        let step_n = self.schema.chain_ancestor(&key, a_depth + 1);
        let hash_n = fxhash(&step_n);
        match self.find_child_by_step(anchor, &step_n, hash_n) {
            None => self.attach(nid, anchor, hash_n),
            Some(cid) => {
                let ckey = self.nodes[cid as usize].key;
                let join = self.schema.lcca(&key, &ckey);
                debug_assert_ne!(join, ckey, "a chain-ancestor child would have anchored");
                if join == key {
                    // The new key lies on the child's chain: splice between.
                    self.detach(cid);
                    self.attach(nid, anchor, hash_n);
                    let step_c = self.schema.chain_ancestor(&ckey, key_depth + 1);
                    self.attach(cid, nid, fxhash(&step_c));
                } else {
                    // Keys diverge below the anchor: branch at their LCCA.
                    let jdepth = self.schema.depth(&join);
                    let jid = self.alloc(join, jdepth, Popularity::ZERO);
                    self.index.insert(join, jid);
                    self.stats.joins_created += 1;
                    self.detach(cid);
                    self.attach(jid, anchor, hash_n);
                    let step_c = self.schema.chain_ancestor(&ckey, jdepth + 1);
                    self.attach(cid, jid, fxhash(&step_c));
                    let step_k = self.schema.chain_ancestor(&key, jdepth + 1);
                    self.attach(nid, jid, fxhash(&step_k));
                }
            }
        }
        nid
    }

    // ------------------------------------------------------------------
    // Merge / diff (paper §2, "Flowtree Operators")
    // ------------------------------------------------------------------

    /// Adds every node mass of `other` into `self` (the paper's `merge`:
    /// "adding the nodes of A to B ... the update is only done on the
    /// complementary popularities"). Compacts once at the end.
    pub fn merge(&mut self, other: &FlowTree) -> Result<(), TreeError> {
        if self.schema != other.schema {
            return Err(TreeError::SchemaMismatch);
        }
        for node in other.nodes.iter().filter(|n| n.alive) {
            if !node.comp.is_zero() {
                self.add_mass(node.key, node.comp);
            }
        }
        if self.live > self.cfg.node_budget {
            self.compact();
        }
        Ok(())
    }

    /// Subtracts every node mass of `other` from `self` (the paper's
    /// `diff`). The result can legitimately contain negative masses —
    /// that is what makes diff summaries useful for change detection and
    /// diff-based transfer. Zero-mass leaves are pruned afterwards.
    pub fn diff(&mut self, other: &FlowTree) -> Result<(), TreeError> {
        if self.schema != other.schema {
            return Err(TreeError::SchemaMismatch);
        }
        for node in other.nodes.iter().filter(|n| n.alive) {
            if !node.comp.is_zero() {
                self.add_mass(node.key, -node.comp);
            }
        }
        self.prune_zeros();
        if self.live > self.cfg.node_budget {
            self.compact();
        }
        Ok(())
    }

    /// The merge of two trees, leaving both inputs untouched.
    pub fn merged(a: &FlowTree, b: &FlowTree) -> Result<FlowTree, TreeError> {
        let mut out = a.clone();
        out.merge(b)?;
        Ok(out)
    }

    /// `a - b` as a fresh diff tree.
    pub fn diffed(a: &FlowTree, b: &FlowTree) -> Result<FlowTree, TreeError> {
        let mut out = a.clone();
        out.diff(b)?;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Self-adjustment
    // ------------------------------------------------------------------

    /// Folds the least-popular leaves into their parents until the tree
    /// is at the low-water mark. Mass is conserved: an evicted leaf's
    /// complementary popularity moves to its parent, which is exactly the
    /// paper's "summarize the unpopular flows".
    pub fn compact(&mut self) {
        let target = self.cfg.compaction_target().min(self.cfg.node_budget);
        if self.live <= target {
            return;
        }
        self.stats.compactions += 1;

        // Min-heap of (rank, id, generation) with lazy revalidation.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u64, u32, u32)>> = BinaryHeap::new();
        let push = |heap: &mut BinaryHeap<std::cmp::Reverse<(u64, u64, u32, u32)>>,
                    node: &Node,
                    id: u32,
                    cfg: &Config| {
            let (a, b) = rank(node, cfg);
            heap.push(std::cmp::Reverse((a, b, id, node.generation)));
        };
        for (i, n) in self.nodes.iter().enumerate() {
            if n.alive && n.first_child == NIL && i as u32 != self.root {
                push(&mut heap, n, i as u32, &self.cfg);
            }
        }

        while self.live > target {
            let Some(std::cmp::Reverse((a, b, id, generation))) = heap.pop() else {
                break; // only the root is left
            };
            let node = &self.nodes[id as usize];
            if !node.alive || node.generation != generation {
                continue; // slot was reused
            }
            if node.first_child != NIL {
                continue; // no longer a leaf (cannot happen, but be safe)
            }
            let (ca, cb) = rank(node, &self.cfg);
            if (ca, cb) != (a, b) {
                // Weight changed since the entry was pushed (the node
                // absorbed an evicted child); re-rank it.
                push(&mut heap, node, id, &self.cfg);
                continue;
            }

            let parent = node.parent;
            debug_assert_ne!(parent, NIL, "only the root has no parent");
            let comp = node.comp;
            self.remove_leaf(id);
            self.stats.evictions += 1;

            let pnode = &mut self.nodes[parent as usize];
            pnode.comp += comp;
            if pnode.first_child == NIL && parent != self.root {
                // Parent became a leaf: now a candidate itself.
                push(&mut heap, &self.nodes[parent as usize], parent, &self.cfg);
            } else {
                self.contract_if_passthrough(parent);
            }
        }
    }

    /// Removes leaves whose mass cancelled to zero (after `diff`) and
    /// contracts the resulting pass-through chains.
    pub fn prune_zeros(&mut self) {
        // Children before parents: process by descending depth.
        let mut order: Vec<u32> = (0..self.nodes.len() as u32)
            .filter(|&i| self.nodes[i as usize].alive && i != self.root)
            .collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.nodes[i as usize].depth));
        for id in order {
            let node = &self.nodes[id as usize];
            if !node.alive {
                continue;
            }
            if node.first_child == NIL && node.comp.is_zero() {
                let parent = node.parent;
                self.remove_leaf(id);
                if parent != self.root {
                    self.contract_if_passthrough(parent);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Structure helpers
    // ------------------------------------------------------------------

    fn alloc(&mut self, key: FlowKey, depth: u32, comp: Popularity) -> u32 {
        self.live += 1;
        let touch = self.clock;
        if let Some(id) = self.free.pop() {
            let generation = self.nodes[id as usize].generation.wrapping_add(1);
            self.nodes[id as usize] = Node {
                key,
                depth,
                parent: NIL,
                first_child: NIL,
                next_sibling: NIL,
                prev_sibling: NIL,
                step_hash: 0,
                comp,
                touch,
                generation,
                alive: true,
            };
            id
        } else {
            self.nodes.push(Node {
                key,
                depth,
                parent: NIL,
                first_child: NIL,
                next_sibling: NIL,
                prev_sibling: NIL,
                step_hash: 0,
                comp,
                touch,
                generation: 0,
                alive: true,
            });
            (self.nodes.len() - 1) as u32
        }
    }

    fn attach(&mut self, child: u32, parent: u32, step_hash: u64) {
        let head = self.nodes[parent as usize].first_child;
        {
            let c = &mut self.nodes[child as usize];
            c.parent = parent;
            c.step_hash = step_hash;
            c.prev_sibling = NIL;
            c.next_sibling = head;
        }
        if head != NIL {
            self.nodes[head as usize].prev_sibling = child;
        }
        self.nodes[parent as usize].first_child = child;
    }

    fn detach(&mut self, id: u32) {
        let (parent, prev, next) = {
            let n = &self.nodes[id as usize];
            (n.parent, n.prev_sibling, n.next_sibling)
        };
        if prev != NIL {
            self.nodes[prev as usize].next_sibling = next;
        } else if parent != NIL {
            self.nodes[parent as usize].first_child = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev_sibling = prev;
        }
        let n = &mut self.nodes[id as usize];
        n.parent = NIL;
        n.prev_sibling = NIL;
        n.next_sibling = NIL;
    }

    /// Removes a leaf node entirely (caller handles its mass).
    fn remove_leaf(&mut self, id: u32) {
        debug_assert_eq!(self.nodes[id as usize].first_child, NIL);
        self.detach(id);
        let key = self.nodes[id as usize].key;
        let removed = self.index.remove(&key);
        debug_assert_eq!(removed, Some(id));
        self.nodes[id as usize].alive = false;
        self.free.push(id);
        self.live -= 1;
    }

    /// Contracts `id` if it is a zero-mass pass-through (exactly one
    /// child, no mass, not the root): the child is re-attached to the
    /// grandparent. Join nodes whose purpose disappeared go away here.
    fn contract_if_passthrough(&mut self, id: u32) {
        if id == self.root {
            return;
        }
        let (only_child, comp_zero, parent) = {
            let n = &self.nodes[id as usize];
            if !n.alive {
                return;
            }
            let fc = n.first_child;
            let single = fc != NIL && self.nodes[fc as usize].next_sibling == NIL;
            (if single { fc } else { NIL }, n.comp.is_zero(), n.parent)
        };
        if only_child == NIL || !comp_zero {
            return;
        }
        // The child's chain passes through `id`, whose chain passes
        // through `parent`, so the child's step at the grandparent level
        // equals `id`'s step — the sibling-step invariant is preserved.
        let step_hash = self.nodes[id as usize].step_hash;
        self.detach(only_child);
        self.detach(id);
        let key = self.nodes[id as usize].key;
        self.index.remove(&key);
        self.nodes[id as usize].alive = false;
        self.free.push(id);
        self.live -= 1;
        self.stats.contractions += 1;
        self.attach(only_child, parent, step_hash);
    }

    /// Finds the child of `parent` whose chain step at
    /// `parent.depth + 1` equals `step` (at most one exists, by the
    /// sibling-step invariant).
    fn find_child_by_step(&self, parent: u32, step: &FlowKey, step_hash: u64) -> Option<u32> {
        let target_depth = self.nodes[parent as usize].depth + 1;
        let mut cur = self.nodes[parent as usize].first_child;
        while cur != NIL {
            let node = &self.nodes[cur as usize];
            if node.step_hash == step_hash
                && self.schema.chain_ancestor(&node.key, target_depth) == *step
            {
                return Some(cur);
            }
            cur = node.next_sibling;
        }
        None
    }

    // ------------------------------------------------------------------
    // Read access
    // ------------------------------------------------------------------

    /// The true (subtree-summed) popularity of a retained key:
    /// complementary popularities summed over the node's subtree.
    pub fn subtree_popularity(&self, key: &FlowKey) -> Option<Popularity> {
        let &id = self.index.get(key)?;
        Some(self.subtree_sum(id))
    }

    pub(crate) fn subtree_sum(&self, id: u32) -> Popularity {
        let mut acc = Popularity::ZERO;
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            let node = &self.nodes[cur as usize];
            acc += node.comp;
            let mut c = node.first_child;
            while c != NIL {
                stack.push(c);
                c = self.nodes[c as usize].next_sibling;
            }
        }
        acc
    }

    /// Iterates over all retained nodes (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = NodeView<'_>> {
        self.nodes
            .iter()
            .filter(|n| n.alive)
            .map(move |n| NodeView {
                key: &n.key,
                comp: n.comp,
                depth: n.depth,
                parent: if n.parent == NIL {
                    None
                } else {
                    Some(&self.nodes[n.parent as usize].key)
                },
                is_leaf: n.first_child == NIL,
            })
    }

    /// The retained children of `key`, if `key` is retained.
    pub fn children_of(&self, key: &FlowKey) -> Option<Vec<NodeView<'_>>> {
        let &id = self.index.get(key)?;
        let mut out = Vec::new();
        let mut c = self.nodes[id as usize].first_child;
        while c != NIL {
            let n = &self.nodes[c as usize];
            out.push(NodeView {
                key: &n.key,
                comp: n.comp,
                depth: n.depth,
                parent: Some(&self.nodes[id as usize].key),
                is_leaf: n.first_child == NIL,
            });
            c = n.next_sibling;
        }
        Some(out)
    }

    /// Ids of live nodes in an order where parents precede children
    /// (pre-order DFS from the root) — used by the codec and analytics.
    pub(crate) fn preorder(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.live);
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            out.push(id);
            let mut c = self.nodes[id as usize].first_child;
            while c != NIL {
                stack.push(c);
                c = self.nodes[c as usize].next_sibling;
            }
        }
        out
    }

    /// Validates every structural invariant; panics with a description on
    /// violation. Test/debug aid — O(n · depth).
    pub fn validate(&self) {
        let mut seen = 0usize;
        let mut mass = Popularity::ZERO;
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.alive {
                continue;
            }
            seen += 1;
            mass += n.comp;
            let id = i as u32;
            assert_eq!(self.index.get(&n.key), Some(&id), "index maps {}", n.key);
            assert_eq!(
                self.schema.depth(&n.key),
                n.depth,
                "cached depth of {}",
                n.key
            );
            if id == self.root {
                assert_eq!(n.parent, NIL);
                assert!(n.key.is_root());
            } else {
                assert_ne!(n.parent, NIL, "non-root {} must have a parent", n.key);
                let p = &self.nodes[n.parent as usize];
                assert!(p.alive, "parent of {} is dead", n.key);
                assert!(p.depth < n.depth, "parent deeper than child at {}", n.key);
                assert!(
                    self.schema.is_chain_ancestor(&p.key, &n.key),
                    "parent {} is not a chain ancestor of {}",
                    p.key,
                    n.key
                );
                let step = self.schema.chain_ancestor(&n.key, p.depth + 1);
                assert_eq!(n.step_hash, fxhash(&step), "stale step hash at {}", n.key);
            }
            // Sibling-step uniqueness and linkage.
            let mut steps = std::collections::HashSet::new();
            let mut c = n.first_child;
            let mut prev = NIL;
            while c != NIL {
                let ch = &self.nodes[c as usize];
                assert_eq!(ch.parent, id, "child link broken at {}", ch.key);
                assert_eq!(ch.prev_sibling, prev, "prev link broken at {}", ch.key);
                let step = self.schema.chain_ancestor(&ch.key, n.depth + 1);
                assert!(steps.insert(step), "duplicate sibling step under {}", n.key);
                prev = c;
                c = ch.next_sibling;
            }
        }
        assert_eq!(seen, self.live, "live count drift");
        assert_eq!(
            self.index.len(),
            self.live,
            "index size must equal live nodes"
        );
        assert_eq!(mass, self.total, "mass conservation violated");
    }

    /// Looks up a node id by key (for crate-internal query paths).
    pub(crate) fn node_id(&self, key: &FlowKey) -> Option<u32> {
        self.index.get(key).copied()
    }

    /// Rebuilds a tree from `(key, comp)` masses (used by serde and the
    /// trusted decode path). Keys are canonicalized; masses at identical
    /// keys accumulate.
    pub fn from_masses<I>(schema: Schema, cfg: Config, masses: I) -> FlowTree
    where
        I: IntoIterator<Item = (FlowKey, Popularity)>,
    {
        let mut tree = FlowTree::new(schema, cfg);
        for (key, comp) in masses {
            let key = schema.canonicalize(&key);
            tree.add_mass(key, comp);
        }
        if tree.live > tree.cfg.node_budget {
            tree.compact();
        }
        tree
    }
}

/// Eviction rank: smaller evicts first.
fn rank(node: &Node, cfg: &Config) -> (u64, u64) {
    let weight = node.comp.weight(cfg.metric);
    match cfg.eviction {
        EvictionPolicy::SmallestFirst => (weight, node.touch),
        EvictionPolicy::ColdFirst => (node.touch, weight),
    }
}
