//! The Flowtree data structure.
//!
//! A Flowtree is a **self-adjusting, bounded-size tree of generalized
//! flows**. Structurally it is a path-compressed trie over the canonical
//! generalization chains of [`flowkey`]: every node's tree parent is its
//! nearest retained chain ancestor, and internal *join* nodes are created
//! at the lowest common chain ancestor of diverging keys (exactly like a
//! Patricia trie creates branch nodes). Each node stores its
//! **complementary popularity** — the mass observed at that key that is
//! *not* attributed to any retained descendant — which makes node values
//! additive and therefore the whole structure mergeable and diffable by
//! plain node-wise addition/subtraction (the paper's `merge`/`diff`
//! operators).
//!
//! * **Update** (paper §2): existing key → increment its counter.
//!   Missing key → find the nearest retained ancestor on the key's
//!   canonical chain ("longest matching parent") and splice the node
//!   in. No counts are aggregated up the tree on the hot path, giving
//!   the paper's amortized-constant update.
//! * **Self-adjustment**: when the node count exceeds the budget, the
//!   leaves with the smallest complementary popularity are folded into
//!   their parents until the tree is back under the low-water mark —
//!   "keeping the popular flows and summarizing the less-popular ones".
//! * **Queries** run either in `O(subtree)` for retained keys or in
//!   `O(tree)` for arbitrary hierarchical patterns (paper: "time
//!   proportional to the tree nodes"); see [`crate::query`].
//!
//! ## The update hot path
//!
//! The miss path never re-hashes a whole key and never walks a whole
//! chain:
//!
//! * The key's hash is computed once. The node index stores
//!   precomputed 64-bit hashes, so a probe is one masked load plus a
//!   word compare (see [`crate::table`]), and removals and merges
//!   reuse the hash cached on each node.
//! * The parent search probes a short **linear prefix** of the chain
//!   with an incrementally-maintained rolling hash (one single-feature
//!   hash per step, see [`flowkey::hash`]) — the common case, since
//!   popular ancestors are retained within a few steps.
//! * A cold miss then anchors at the root and **descends** through the
//!   retained children on the key's chain, costing `O(retained chain
//!   ancestors)` instead of `O(depth)`. A descent hop is hash-rolling
//!   arithmetic: the chain's next specialized dimension is read off a
//!   **memoized profile schedule** (the schedule is a pure function of
//!   the key's depth profile, shared by every key of the same shape),
//!   and the hop's step hash rolls from the anchor's stored key hash
//!   with two single-feature hashes.
//! * Splices compute the lowest common chain ancestor **analytically**:
//!   feature hierarchies are laminar, so two chains meet exactly where
//!   their schedule profiles coincide and every per-dimension feature
//!   join is deep enough — pure `u16` arithmetic, with only the one or
//!   two keys actually spliced ever being materialized.
//!
//! Bulk ingestion should prefer [`FlowTree::insert_batch`]: it
//! canonicalizes and hashes each key once, sorts the batch by key hash
//! for index locality, and defers the budget check to the end of the
//! batch (the tree may transiently exceed its budget by the batch
//! length, exactly as `merge` does). Sharded parallel ingest on top of
//! this (`flowdist::ShardedTree`) reuses the same key hash to route
//! shards.
//!
//! ## Structural merge
//!
//! Whole summaries combine without the insert path:
//! [`FlowTree::merge`] and the k-way [`FlowTree::merge_many`] run a
//! hash-join sweep over the source arena (one stored-hash probe per
//! node; matches add masses node-wise) and then place only the missed
//! nodes, each attached directly under its already-placed source
//! parent at its stored sibling step — splices and joins are computed
//! by the same analytic profile arithmetic as the insert path. Sibling
//! lists are kept in a canonical order, so the wire encoding of a tree
//! depends only on its node masses: any merge order, sharded fold, or
//! batch schedule that produces the same masses produces the same
//! bytes.

use crate::config::{Config, EvictionPolicy};
use crate::pop::Popularity;
use crate::table::KeyIndex;
use flowkey::{key_hash, FlowKey, Schema};
use std::cell::RefCell;
use std::collections::BinaryHeap;

pub(crate) const NIL: u32 = u32::MAX;

/// Chain probes made linearly (one step at a time) before the parent
/// search gives up on probing and descends from the root instead.
/// Covers the common case of a retained ancestor within a few steps.
const LINEAR_PROBES: usize = 4;

thread_local! {
    /// Reusable DFS stack for subtree sums and pre-order walks, so
    /// point queries and codec traversals do not allocate per call.
    static DFS_STACK: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// Errors from Flowtree operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// `merge`/`diff` was attempted between trees of different schemas.
    SchemaMismatch,
}

impl core::fmt::Display for TreeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TreeError::SchemaMismatch => f.write_str("flowtrees have different schemas"),
        }
    }
}

impl std::error::Error for TreeError {}

#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) key: FlowKey,
    /// [`flowkey::key_hash`] of `key`, so removals and merges never
    /// re-hash the 7-feature key.
    pub(crate) key_hash: u64,
    pub(crate) depth: u32,
    pub(crate) parent: u32,
    pub(crate) first_child: u32,
    pub(crate) next_sibling: u32,
    pub(crate) prev_sibling: u32,
    /// Key hash of this node's chain step at `parent.depth + 1`; lets
    /// sibling scans compare one word instead of recomputing chain
    /// ancestors.
    pub(crate) step_hash: u64,
    pub(crate) comp: Popularity,
    pub(crate) touch: u64,
    pub(crate) generation: u32,
    pub(crate) alive: bool,
}

/// Counters describing the work a Flowtree has done — used by the
/// benchmarks to demonstrate the amortized-constant update cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Total mass-insert operations (updates).
    pub inserts: u64,
    /// Updates that hit an existing node.
    pub hits: u64,
    /// Updates that created a node.
    pub misses: u64,
    /// Index probes performed while searching longest matching parents
    /// (the linear-prefix phase; each probe is one hash-table lookup).
    /// Probes alone undercount a cold miss's search work — see
    /// [`Stats::descent_hops`] for the other half.
    pub chain_steps: u64,
    /// Retained-child descent hops taken while splicing misses: one
    /// per tree level walked from the search anchor down to the true
    /// longest matching parent. `chain_steps + descent_hops` is the
    /// full parent-search work, `O(retained chain ancestors)` per cold
    /// miss instead of the seed path's `O(depth)` full-key-hash probes.
    pub descent_hops: u64,
    /// Join (branch) nodes created.
    pub joins_created: u64,
    /// Compaction runs.
    pub compactions: u64,
    /// Leaves folded into their parents by compactions.
    pub evictions: u64,
    /// Pass-through nodes contracted away.
    pub contractions: u64,
    /// Nodes placed by the structural merge's wholesale graft/splice
    /// path — allocated and attached from another tree's stored key
    /// hashes with **zero** index probes (see [`FlowTree::merge_many`]).
    pub grafted_nodes: u64,
    /// Profile-schedule rebuilds: misses of the schedule memo on the
    /// insert miss path. Stays at the number of distinct key shapes as
    /// long as the working set fits the memo's LRU.
    pub profile_builds: u64,
}

impl Stats {
    /// Mean parent-search probes per update — the "amortized constant"
    /// the paper claims; stays small and flat as the trace grows.
    pub fn mean_chain_steps(&self) -> f64 {
        if self.inserts == 0 {
            0.0
        } else {
            self.chain_steps as f64 / self.inserts as f64
        }
    }

    /// Mean total parent-search work per update: index probes plus
    /// retained-child descent hops. The honest apples-to-apples number
    /// to compare against the seed path, whose work is all probes.
    pub fn mean_search_work(&self) -> f64 {
        if self.inserts == 0 {
            0.0
        } else {
            (self.chain_steps + self.descent_hops) as f64 / self.inserts as f64
        }
    }
}

/// A read-only view of one tree node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeView<'a> {
    /// The generalized flow this node summarizes.
    pub key: &'a FlowKey,
    /// Complementary popularity: mass at `key` not attributed to any
    /// retained descendant.
    pub comp: Popularity,
    /// Chain depth of the key.
    pub depth: u32,
    /// Key of the tree parent (`None` for the root).
    pub parent: Option<&'a FlowKey>,
    /// Whether the node currently has no children.
    pub is_leaf: bool,
}

/// Random access into a key's canonical chain without materializing
/// it: the first few steps come from the probed prefix (already walked
/// with rolling hashes), everything shallower is built on demand from
/// the memoized profile schedule — seven per-feature `ancestor_at`
/// masks plus one key hash, instead of walking the chain step-by-step.
struct ChainCtx<'a> {
    base_key: FlowKey,
    base_hash: u64,
    base_depth: u32,
    /// `(ancestor, hash)` for steps `1..=prefix.len()` above the key.
    prefix: &'a [(FlowKey, u64)],
    /// `seq[s]` = depth profile after `s` schedule steps (`seq[0]` is
    /// the key's own profile, last entry the root's).
    seq: &'a [flowkey::DepthProfile],
}

impl ChainCtx<'_> {
    /// The `(ancestor, hash)` at chain depth `depth ≤ base_depth`.
    #[inline]
    fn at(&self, depth: u32) -> (FlowKey, u64) {
        if depth == self.base_depth {
            return (self.base_key, self.base_hash);
        }
        let steps_up = (self.base_depth - depth) as usize;
        if steps_up <= self.prefix.len() {
            return self.prefix[steps_up - 1];
        }
        let k = self.base_key.at_profile(&self.seq[steps_up]);
        (k, key_hash(&k))
    }
}

/// Replays the canonical schedule from `profile` down to the root,
/// recording every intermediate profile. The sequence is a pure
/// function of the starting profile, so trees memoize it: every key of
/// the same shape (e.g. all full IPv4 5-tuples) shares one replay.
fn build_profile_seq(
    schema: &Schema,
    mut profile: flowkey::DepthProfile,
    out: &mut Vec<flowkey::DepthProfile>,
) {
    out.clear();
    out.push(profile);
    while let Some(dim) = schema.next_chain_dim(&profile) {
        profile.0[dim.index()] -= 1;
        out.push(profile);
    }
}

/// The single dimension two adjacent schedule profiles differ in, and
/// the deeper profile's feature depth there (`shallow` is one chain
/// step above `deep`).
#[inline]
fn diff_dim(shallow: &flowkey::DepthProfile, deep: &flowkey::DepthProfile) -> (flowkey::Dim, u16) {
    for i in 0..flowkey::NUM_DIMS {
        if shallow.0[i] != deep.0[i] {
            debug_assert_eq!(shallow.0[i] + 1, deep.0[i]);
            return (flowkey::Dim::from_index(i), deep.0[i]);
        }
    }
    unreachable!("adjacent schedule profiles differ in exactly one dimension")
}

/// Whether `p` is dimension-wise at or below `bound`.
#[inline]
fn profile_fits(p: &flowkey::DepthProfile, bound: &flowkey::DepthProfile) -> bool {
    p.0.iter().zip(bound.0.iter()).all(|(d, b)| d <= b)
}

/// Analytic relationship of a merge member's key `b` against a
/// destination child `c` that shares its chain step under the anchor —
/// the merge analogue of `splice_against_child`'s case analysis, and
/// like it computed with pure profile arithmetic plus rolling hashes:
/// no chain is ever walked key-by-key.
enum StepRel {
    /// The step-hash match was a 64-bit collision (the true join sits
    /// at or above the anchor): keep scanning siblings.
    Collision,
    /// `b` lies on `c`'s chain above it; carries the hash of `c`'s
    /// step under `b`.
    SpliceAbove(u64),
    /// `c` is a chain ancestor of `b`; carries the hash of `b`'s step
    /// under `c`.
    Descend(u64),
    /// The keys fork strictly below the anchor.
    Fork {
        /// The lowest common chain ancestor (the join key).
        join: FlowKey,
        join_hash: u64,
        join_depth: u32,
        /// Hash of `c`'s step under the join.
        step_c: u64,
        /// Hash of `b`'s step under the join.
        step_b: u64,
    },
}

/// Classifies `b` against `c` (see [`StepRel`]). Feature hierarchies
/// are laminar, so the chains meet exactly where the schedule-evolved
/// depth profiles coincide and every per-dimension feature join is deep
/// enough — `u16` arithmetic; the one or two keys a restructure needs
/// are materialized from the recorded profiles, and step hashes under
/// retained nodes roll from stored hashes with two single-feature
/// hashes. `b`'s schedule comes pre-replayed from the memo
/// (`seq_b[s]` = `b`'s profile after `s` schedule steps), so only `c`'s
/// side is replayed here.
#[allow(clippy::too_many_arguments)]
fn classify_step(
    schema: &Schema,
    a_depth: u32,
    c_key: &FlowKey,
    c_hash: u64,
    c_depth: u32,
    b_key: &FlowKey,
    b_depth: u32,
    seq_b: &[flowkey::DepthProfile],
) -> StepRel {
    #[inline]
    fn step_down(schema: &Schema, p: &mut flowkey::DepthProfile) {
        let dim = schema.next_chain_dim(p).expect("profile has depth left");
        p.0[dim.index()] -= 1;
    }

    let agree = b_key.agreement_profile(c_key);
    let mut pc = flowkey::DepthProfile::of(c_key);
    // `c`'s profile one schedule step below the current position — the
    // chain profile at `join_depth + 1`, where a re-attached `c` step
    // key lives.
    let mut pc_prev = pc;
    let mut dc = c_depth;
    while dc > b_depth {
        pc_prev = pc;
        step_down(schema, &mut pc);
        dc -= 1;
    }
    // Common depth from here on; `b`'s side reads off the memo.
    let mut d = dc.min(b_depth);
    loop {
        let pb = &seq_b[(b_depth - d) as usize];
        if *pb == pc && profile_fits(pb, &agree) {
            break;
        }
        debug_assert!(d > 0, "chains must meet at the root");
        pc_prev = pc;
        step_down(schema, &mut pc);
        d -= 1;
    }
    let join_depth = d;
    if join_depth <= a_depth {
        return StepRel::Collision;
    }
    let pb = &seq_b[(b_depth - join_depth) as usize];
    debug_assert_eq!(
        schema.lcca(b_key, c_key),
        b_key.at_profile(pb),
        "analytic join must match the chain-walking LCCA"
    );
    if join_depth == b_depth {
        // `b` is `c`'s chain ancestor: `c`'s step under `b` comes from
        // the recorded profile (one key build + one hash).
        return StepRel::SpliceAbove(key_hash(&c_key.at_profile(&pc_prev)));
    }
    let pb_prev = &seq_b[(b_depth - join_depth - 1) as usize];
    let (dim, feat_depth) = diff_dim(pb, pb_prev);
    if join_depth == c_depth {
        // `c` is `b`'s chain ancestor: roll `b`'s step hash from `c`'s
        // stored key hash (the step specializes exactly one dimension).
        let step_b = c_hash
            .wrapping_sub(flowkey::dim_hash(c_key, dim))
            .wrapping_add(flowkey::dim_hash_at(b_key, dim, feat_depth));
        debug_assert_eq!(
            step_b,
            key_hash(&schema.chain_ancestor(b_key, c_depth + 1)),
            "rolled step hash is exact"
        );
        return StepRel::Descend(step_b);
    }
    let join = b_key.at_profile(pb);
    let join_hash = key_hash(&join);
    let step_b = join_hash
        .wrapping_sub(flowkey::dim_hash(&join, dim))
        .wrapping_add(flowkey::dim_hash_at(b_key, dim, feat_depth));
    StepRel::Fork {
        join,
        join_hash,
        join_depth,
        step_c: key_hash(&c_key.at_profile(&pc_prev)),
        step_b,
    }
}

/// The self-adjusting flow summary of Saidi et al. (SIGCOMM 2018).
///
/// See the crate-level docs for the design. Typical use:
///
/// ```
/// use flowtree_core::{Config, FlowTree, Popularity};
/// use flowkey::Schema;
///
/// let mut tree = FlowTree::new(Schema::two_feature(), Config::with_budget(1024));
/// let key = "src=10.0.0.1/32 dst=192.0.2.9/32".parse().unwrap();
/// tree.insert(&key, Popularity::packet(1500));
/// let answer = tree.popularity(&key);
/// assert_eq!(answer.est.packets, 1.0);
/// assert!(answer.tracked);
/// ```
#[derive(Debug, Clone)]
pub struct FlowTree {
    pub(crate) schema: Schema,
    pub(crate) cfg: Config,
    pub(crate) nodes: Vec<Node>,
    pub(crate) free: Vec<u32>,
    pub(crate) index: KeyIndex,
    pub(crate) root: u32,
    pub(crate) live: usize,
    pub(crate) clock: u64,
    pub(crate) total: Popularity,
    pub(crate) stats: Stats,
    /// Scratch prefix chain of the key being inserted (reused across
    /// misses).
    chain_a: Vec<(FlowKey, u64)>,
    /// Memoized profile schedules, most-recently-used first: each
    /// entry maps a starting depth profile to every intermediate
    /// profile down to the root. A small LRU rather than a single
    /// entry, so merge-heavy workloads with mixed key shapes (v4 and
    /// v6, full and partial tuples) do not rebuild the schedule on
    /// every alternation.
    seq_lru: Vec<(flowkey::DepthProfile, Vec<flowkey::DepthProfile>)>,
}

/// Capacity of the profile-schedule memo. Real traffic rotates through
/// a handful of key shapes (v4/v6 × full/partial tuples); eight covers
/// the mixes seen in the traces while keeping the linear probe trivial.
const SEQ_LRU_CAP: usize = 8;

impl FlowTree {
    /// Creates an empty Flowtree (just the all-wildcard root).
    pub fn new(schema: Schema, cfg: Config) -> FlowTree {
        let root_key = schema.root();
        let root_hash = key_hash(&root_key);
        let root = Node {
            key: root_key,
            key_hash: root_hash,
            depth: 0,
            parent: NIL,
            first_child: NIL,
            next_sibling: NIL,
            prev_sibling: NIL,
            step_hash: 0,
            comp: Popularity::ZERO,
            touch: 0,
            generation: 0,
            alive: true,
        };
        // Pre-size both the index and the node arena for the budget,
        // but cap so huge budgets (used by tests and oracles) do not
        // pay an up-front allocation. Pre-reserving the arena matters:
        // steady-state ingest under a 40 K budget would otherwise pay
        // repeated reallocation + copy of every node.
        let cap = cfg.node_budget.saturating_add(16).min(65_536);
        let mut index = KeyIndex::with_capacity(cap);
        index.insert(root_hash, 0);
        let mut nodes = Vec::with_capacity(cap);
        nodes.push(root);
        FlowTree {
            schema,
            cfg,
            nodes,
            free: Vec::new(),
            index,
            root: 0,
            live: 1,
            clock: 0,
            total: Popularity::ZERO,
            stats: Stats::default(),
            chain_a: Vec::new(),
            seq_lru: Vec::new(),
        }
    }

    /// Takes the memoized profile schedule for `profile` out of the
    /// LRU, building it (and counting a [`Stats::profile_builds`]) on a
    /// miss. The caller returns the buffer via [`FlowTree::put_seq`] so
    /// it can be reused while `self` stays mutably borrowable.
    fn take_seq(&mut self, profile: flowkey::DepthProfile) -> Vec<flowkey::DepthProfile> {
        if let Some(i) = self.seq_lru.iter().position(|(p, _)| *p == profile) {
            return self.seq_lru.remove(i).1;
        }
        // Miss: evict the least-recently-used entry and reuse its
        // buffer when the memo is full.
        let mut seq = if self.seq_lru.len() >= SEQ_LRU_CAP {
            self.seq_lru.pop().expect("memo is full").1
        } else {
            Vec::new()
        };
        self.stats.profile_builds += 1;
        build_profile_seq(&self.schema, profile, &mut seq);
        seq
    }

    /// Returns a schedule taken by [`FlowTree::take_seq`], marking it
    /// most recently used.
    fn put_seq(&mut self, profile: flowkey::DepthProfile, seq: Vec<flowkey::DepthProfile>) {
        self.seq_lru.insert(0, (profile, seq));
    }

    /// Creates a Flowtree with the paper's evaluation configuration
    /// (40 K nodes).
    pub fn with_schema(schema: Schema) -> FlowTree {
        FlowTree::new(schema, Config::paper())
    }

    /// The flow schema of this tree.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The configuration of this tree.
    #[inline]
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Switches the residual-mass estimator used by queries. Estimators
    /// only affect reads, so this is always safe — useful for asking
    /// lower/upper-bound questions of one already-built tree.
    #[inline]
    pub fn set_estimator(&mut self, estimator: crate::Estimator) {
        self.cfg.estimator = estimator;
    }

    /// Current number of nodes (including root and join nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the tree holds only the root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 1
    }

    /// Total mass ever inserted (conserved by compaction; adjusted by
    /// merge/diff).
    #[inline]
    pub fn total(&self) -> Popularity {
        self.total
    }

    /// Work counters.
    #[inline]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Looks up the node id of `key` given its precomputed hash.
    #[inline]
    fn lookup(&self, key: &FlowKey, hash: u64) -> Option<u32> {
        let nodes = &self.nodes;
        self.index.get(hash, |id| nodes[id as usize].key == *key)
    }

    /// Whether `key` is currently retained as a node.
    pub fn contains_key(&self, key: &FlowKey) -> bool {
        self.lookup(key, key_hash(key)).is_some()
    }

    /// The complementary popularity stored at `key`, if retained.
    pub fn comp_of(&self, key: &FlowKey) -> Option<Popularity> {
        self.lookup(key, key_hash(key))
            .map(|id| self.nodes[id as usize].comp)
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    /// Records `pop` mass for `key` (the paper's *update* operation) and
    /// compacts if the node budget is exceeded.
    ///
    /// `key` is canonicalized to the tree's schema (inactive dimensions
    /// forced to wildcards), so callers can pass full 5-tuple keys to any
    /// tree.
    pub fn insert(&mut self, key: &FlowKey, pop: Popularity) {
        let key = self.schema.canonicalize(key);
        let hash = key_hash(&key);
        self.add_mass_hashed(key, hash, pop);
        if self.live > self.cfg.node_budget {
            self.compact();
        }
    }

    /// Records a batch of masses, amortizing per-update overhead:
    /// each key is canonicalized and hashed exactly once, the batch is
    /// sorted by key hash so consecutive index probes touch nearby
    /// slots, and the budget check runs once at the end (the tree may
    /// transiently exceed its budget by the batch length, exactly as
    /// [`FlowTree::merge`] does).
    ///
    /// With compaction out of play (budget not exceeded), the resulting
    /// tree is identical to repeated [`FlowTree::insert`]: the retained
    /// node set is closed under pairwise chain joins and per-key masses
    /// are sums, both independent of insertion order.
    pub fn insert_batch(&mut self, batch: &[(FlowKey, Popularity)]) {
        let mut items: Vec<(u64, FlowKey, Popularity)> = batch
            .iter()
            .map(|(k, p)| {
                let k = self.schema.canonicalize(k);
                (key_hash(&k), k, *p)
            })
            .collect();
        self.insert_batch_prehashed(&mut items);
    }

    /// Records mass for a key already canonicalized to this tree's
    /// schema, with its precomputed [`flowkey::key_hash`] — the
    /// zero-rehash entry point sharded ingest uses (the shard router
    /// has necessarily hashed the key already). Compacts if the node
    /// budget is exceeded.
    pub fn insert_prehashed(&mut self, key: FlowKey, hash: u64, pop: Popularity) {
        debug_assert!(self.schema.conforms(&key), "key not canonicalized");
        self.add_mass_hashed(key, hash, pop);
        if self.live > self.cfg.node_budget {
            self.compact();
        }
    }

    /// [`FlowTree::insert_batch`] over pre-canonicalized, pre-hashed
    /// items: sorts in place by key hash for index locality, inserts,
    /// and defers the budget check to the end of the batch.
    pub fn insert_batch_prehashed(&mut self, items: &mut [(u64, FlowKey, Popularity)]) {
        items.sort_unstable_by_key(|(h, _, _)| *h);
        for &(hash, key, pop) in items.iter() {
            self.add_mass_hashed(key, hash, pop);
        }
        if self.live > self.cfg.node_budget {
            self.compact();
        }
    }

    /// Convenience: record one packet of `bytes` bytes for `key`.
    pub fn record_packet(&mut self, key: &FlowKey, bytes: u32) {
        self.insert(key, Popularity::packet(bytes));
    }

    /// Convenience: record one flow record for `key`.
    pub fn record_flow(&mut self, key: &FlowKey, packets: u64, bytes: u64) {
        self.insert(key, Popularity::flow(packets, bytes));
    }

    /// Inserts mass without triggering compaction (used by merge/diff
    /// and the codec, which compact once at the end). Returns the node
    /// id.
    pub(crate) fn add_mass(&mut self, key: FlowKey, pop: Popularity) -> u32 {
        let hash = key_hash(&key);
        self.add_mass_hashed(key, hash, pop)
    }

    /// [`FlowTree::add_mass`] with the key hash already known (merge
    /// and diff reuse the hashes stored on the other tree's nodes).
    pub(crate) fn add_mass_hashed(&mut self, key: FlowKey, hash: u64, pop: Popularity) -> u32 {
        debug_assert!(self.schema.conforms(&key));
        debug_assert_eq!(hash, key_hash(&key), "stale key hash");
        self.clock += 1;
        self.stats.inserts += 1;
        self.total += pop;

        if let Some(id) = self.lookup(&key, hash) {
            self.stats.hits += 1;
            let node = &mut self.nodes[id as usize];
            node.comp += pop;
            node.touch = self.clock;
            return id;
        }
        self.stats.misses += 1;

        let schema = self.schema;
        let profile = flowkey::DepthProfile::of(&key);
        let seq = self.take_seq(profile);
        let mut prefix = std::mem::take(&mut self.chain_a);
        prefix.clear();

        // Longest-matching-parent search, phase 1: probe a short linear
        // prefix of the chain with incrementally-maintained hashes —
        // the common case, since popular ancestors are retained near
        // the key. Phase 2 (no hit): anchor at the root and let the
        // splice descend through retained children on the key's chain;
        // descent visits only *retained* ancestors, so a cold miss
        // costs O(retained chain ancestors) instead of O(depth).
        let total_steps = (seq.len() - 1) as u32;
        debug_assert!(total_steps > 0, "the root never reaches the miss path");
        let mut anchor = None;
        let mut walker = schema.chain_up_hashed(&key, hash);
        for _ in 0..total_steps.min(LINEAR_PROBES as u32) {
            let e = walker.next().expect("depth not exhausted");
            prefix.push(e);
            self.stats.chain_steps += 1;
            if let Some(id) = self.lookup(&e.0, e.1) {
                anchor = Some(id);
                break;
            }
        }
        let anchor = anchor.unwrap_or(self.root);

        let ctx = ChainCtx {
            base_key: key,
            base_hash: hash,
            base_depth: total_steps,
            prefix: &prefix,
            seq: &seq,
        };
        let nid = self.splice_with_ctx(key, hash, pop, anchor, &ctx);
        self.chain_a = prefix;
        self.put_seq(profile, seq);
        nid
    }

    /// Allocates the node for `key` and splices it under `anchor` (any
    /// retained chain ancestor of `key`), descending through retained
    /// children on the key's chain until the true insertion point is
    /// found.
    ///
    /// A descent hop never materializes a chain key: the hop's step
    /// hash rolls from the anchor's stored key hash with two
    /// single-feature hashes (the step specializes exactly one
    /// dimension, read off the memoized profile schedule), and the
    /// "child lies on the key's chain" test is pure profile arithmetic
    /// — profiles equal at the child's depth and every dimension's
    /// feature-join deep enough. Hash matches are confirmed
    /// analytically by the splice (a false 64-bit match computes an
    /// LCCA at or above the anchor and resumes the sibling scan), so
    /// collisions degrade to extra work, never to a wrong tree.
    fn splice_with_ctx(
        &mut self,
        key: FlowKey,
        hash: u64,
        pop: Popularity,
        mut anchor: u32,
        view: &ChainCtx<'_>,
    ) -> u32 {
        let key_depth = view.base_depth;
        debug_assert_eq!(key_depth, self.schema.depth(&key));
        let nid = self.alloc(key, hash, key_depth, pop);
        self.index.insert(hash, nid);

        'outer: loop {
            self.stats.descent_hops += 1;
            let (a_depth, a_key, a_hash) = {
                let a = &self.nodes[anchor as usize];
                (a.depth, a.key, a.key_hash)
            };
            // The dimension the chain specializes from `a_depth` to
            // `a_depth + 1`, and the feature depth it lands on.
            let su = (key_depth - a_depth) as usize;
            let (step_dim, step_feat_depth) = diff_dim(&view.seq[su], &view.seq[su - 1]);
            let step_h = a_hash
                .wrapping_sub(flowkey::dim_hash(&a_key, step_dim))
                .wrapping_add(flowkey::dim_hash_at(&key, step_dim, step_feat_depth));
            debug_assert_eq!(step_h, view.at(a_depth + 1).1, "rolled step hash is exact");

            let mut cur = self.nodes[anchor as usize].first_child;
            while cur != NIL {
                let (ckey, cdepth, next) = {
                    let c = &self.nodes[cur as usize];
                    (c.key, c.depth, c.next_sibling)
                };
                if self.nodes[cur as usize].step_hash == step_h {
                    if cdepth < key_depth {
                        // On-chain test without materialization: the
                        // chain ancestor of `key` at `cdepth` equals
                        // `ckey` iff the schedule profiles coincide and
                        // every feature pair agrees at least that deep.
                        let cprof = flowkey::DepthProfile::of(&ckey);
                        if cprof == view.seq[(key_depth - cdepth) as usize]
                            && profile_fits(&cprof, &key.agreement_profile(&ckey))
                        {
                            anchor = cur;
                            continue 'outer;
                        }
                    }
                    if self.splice_against_child(nid, anchor, cur, view, step_h) {
                        return nid;
                    }
                    // Analytically-refuted hash match (astronomically
                    // rare): keep scanning the remaining siblings.
                }
                cur = next;
            }
            // No child shares the step: attach directly under the anchor.
            self.attach(nid, anchor, step_h);
            return nid;
        }
    }

    /// Handles the two divergence cases of an insert whose chain step
    /// under `anchor` is occupied by `cid`: the new key lies on the
    /// child's chain (splice between), or the two keys fork below the
    /// anchor (branch at their lowest common chain ancestor).
    ///
    /// The LCCA is computed *analytically*: feature hierarchies are
    /// laminar, so two chains meet at depth `d` iff their
    /// schedule-evolved depth profiles coincide at `d` and every
    /// dimension's profile depth is at or above the features' join
    /// depth. That turns LCCA into pure `u16` profile arithmetic — no
    /// chain keys are materialized and nothing is hashed until the one
    /// or two splice keys are actually needed (the child's chain used
    /// to be walked step-by-step here, which dominated the miss path
    /// for deep children under shallow anchors).
    fn splice_against_child(
        &mut self,
        nid: u32,
        anchor: u32,
        cid: u32,
        view: &ChainCtx<'_>,
        step_hash_under_anchor: u64,
    ) -> bool {
        let schema = self.schema;
        let key = view.base_key;
        let key_depth = view.base_depth;
        let a_depth = self.nodes[anchor as usize].depth;
        let (ckey, cdepth) = {
            let c = &self.nodes[cid as usize];
            (c.key, c.depth)
        };

        #[inline]
        fn step_down(schema: &Schema, p: &mut flowkey::DepthProfile) {
            let dim = schema.next_chain_dim(p).expect("profile has depth left");
            p.0[dim.index()] -= 1;
        }

        let agree = key.agreement_profile(&ckey);
        let mut pk = flowkey::DepthProfile::of(&key);
        let mut pc = flowkey::DepthProfile::of(&ckey);
        let mut dk = key_depth;
        let mut dc = cdepth;
        // `pc` one schedule step before its current position — the
        // profile of the child's chain at depth `jdepth + 1`, which is
        // exactly where the re-attached child's step key lives.
        let mut pc_prev = pc;
        while dc > dk {
            pc_prev = pc;
            step_down(&schema, &mut pc);
            dc -= 1;
        }
        while dk > dc {
            step_down(&schema, &mut pk);
            dk -= 1;
        }
        while !(pk == pc && profile_fits(&pk, &agree)) {
            debug_assert!(dk > 0, "chains must meet at the root");
            step_down(&schema, &mut pk);
            pc_prev = pc;
            step_down(&schema, &mut pc);
            dk -= 1;
        }
        let jdepth = dk;
        if jdepth <= a_depth {
            // The matched step hash was a 64-bit collision: the child
            // does not actually share the key's chain step. Tell the
            // caller to keep scanning.
            return false;
        }
        debug_assert_eq!(
            schema.lcca(&key, &ckey),
            view.at(jdepth).0,
            "analytic LCCA must match the chain-walking definition"
        );
        debug_assert!(
            jdepth < cdepth,
            "a child on the key's chain is handled by descent"
        );

        // The child's step key under its new parent, materialized from
        // the recorded profile: one key build + one hash, instead of a
        // whole-chain walk.
        let step_c = key_hash(&ckey.at_profile(&pc_prev));

        if jdepth == key_depth {
            // The new key lies on the child's chain: splice between.
            self.detach(cid);
            self.attach(nid, anchor, step_hash_under_anchor);
            self.attach(cid, nid, step_c);
            return true;
        }

        // Keys diverge below the anchor: branch at the LCCA. The join
        // lies on the key's chain, where the context materializes it in
        // O(1)-ish (prefix read or one profile build).
        let (join, join_hash) = view.at(jdepth);
        let jid = self.alloc(join, join_hash, jdepth, Popularity::ZERO);
        self.index.insert(join_hash, jid);
        self.stats.joins_created += 1;
        self.detach(cid);
        self.attach(jid, anchor, step_hash_under_anchor);
        self.attach(cid, jid, step_c);
        let (_, step_k) = view.at(jdepth + 1);
        self.attach(nid, jid, step_k);
        true
    }

    /// Reference implementation of the pre-optimization miss path:
    /// strictly linear upward walk, re-hashing the full 7-feature key
    /// on every probe — the per-update cost profile of the original
    /// `HashMap`-indexed tree. Kept for benchmarks and differential
    /// tests; produces exactly the same tree as [`FlowTree::insert`].
    #[doc(hidden)]
    pub fn insert_seed_path(&mut self, key: &FlowKey, pop: Popularity) {
        let key = self.schema.canonicalize(key);
        let hash = key_hash(&key);
        self.clock += 1;
        self.stats.inserts += 1;
        self.total += pop;
        if let Some(id) = self.lookup(&key, hash) {
            self.stats.hits += 1;
            let node = &mut self.nodes[id as usize];
            node.comp += pop;
            node.touch = self.clock;
        } else {
            self.stats.misses += 1;
            let schema = self.schema;
            let profile = flowkey::DepthProfile::of(&key);
            let seq = self.take_seq(profile);
            let mut chain = std::mem::take(&mut self.chain_a);
            chain.clear();
            let mut anchor = None;
            for p in schema.chain_up(&key) {
                // Deliberately re-hash the whole key per probe.
                let ph = key_hash(&p);
                chain.push((p, ph));
                self.stats.chain_steps += 1;
                if let Some(id) = self.lookup(&p, ph) {
                    anchor = Some(id);
                    break;
                }
            }
            let anchor = anchor.expect("the root is always retained");
            let ctx = ChainCtx {
                base_key: key,
                base_hash: hash,
                base_depth: (seq.len() - 1) as u32,
                prefix: &chain,
                seq: &seq,
            };
            self.splice_with_ctx(key, hash, pop, anchor, &ctx);
            self.chain_a = chain;
            self.put_seq(profile, seq);
        }
        if self.live > self.cfg.node_budget {
            self.compact();
        }
    }

    // ------------------------------------------------------------------
    // Merge / diff (paper §2, "Flowtree Operators")
    // ------------------------------------------------------------------

    /// Adds every node mass of `other` into `self` (the paper's `merge`:
    /// "adding the nodes of A to B ... the update is only done on the
    /// complementary popularities"). Compacts once at the end.
    ///
    /// The merge is **structural**: both trees embed in the same
    /// canonical trie, so matching nodes are settled by one hash-join
    /// sweep (a single index probe per source node, reusing the hashes
    /// stored on `other`), and only the nodes genuinely absent from
    /// `self` run placement — attached directly under their
    /// already-placed source parent at the stored sibling step, with
    /// splice/branch restructures computed analytically. No node pays
    /// the insert path's longest-matching-parent search (kept as
    /// [`FlowTree::merge_elementwise`] for benchmarks and differential
    /// tests; both produce byte-identical encodings when no compaction
    /// interferes).
    pub fn merge(&mut self, other: &FlowTree) -> Result<(), TreeError> {
        self.merge_many(std::slice::from_ref(&other))
    }

    /// Transient-memory bound of [`FlowTree::merge_many`]: the arena
    /// may grow to this many multiples of the node budget between
    /// sources before a mid-pass compact runs. Above 1 so similar-tree
    /// merges never pay needless compactions; small enough that a
    /// thousand-window scope stays O(budget), not O(total input).
    pub const MERGE_HIGH_WATER_FACTOR: usize = 4;

    /// The k-way structural merge: adds every node mass of each tree in
    /// `others` into `self` in **one** co-traversal, instead of k
    /// sequential merges — a collector answering a 100-window query
    /// merges all 100 summaries in a single pass. Equivalent to folding
    /// [`FlowTree::merge`] over `others` (byte-identical encodings when
    /// no compaction interferes), with the budget checked once at the
    /// end — except that a pass crossing the high-water mark
    /// ([`FlowTree::MERGE_HIGH_WATER_FACTOR`] × budget) compacts
    /// **between sources**, so transient memory is bounded by the mark
    /// plus one source instead of the total input size. Mid-pass
    /// compaction costs the same determinism any compaction under
    /// budget pressure does: totals are conserved, node sets may fold
    /// earlier than an end-only compact would.
    pub fn merge_many(&mut self, others: &[&FlowTree]) -> Result<(), TreeError> {
        for o in others {
            if self.schema != o.schema {
                return Err(TreeError::SchemaMismatch);
            }
        }
        let high_water = self
            .cfg
            .node_budget
            .saturating_mul(Self::MERGE_HIGH_WATER_FACTOR);
        for (i, o) in others.iter().enumerate() {
            self.merge_structural(o, false);
            if i + 1 < others.len() && self.live > high_water {
                self.compact();
            }
        }
        if self.live > self.cfg.node_budget {
            self.compact();
        }
        Ok(())
    }

    /// One structural merge pass (schema already checked, no budget
    /// check): a **hash-join phase** — one sequential sweep of the
    /// source arena, one index probe per node with its stored hash;
    /// hits add masses node-wise, exactly the work an element-wise hit
    /// pays — followed by a **placement phase** that visits only the
    /// missed nodes in topological order and attaches each directly
    /// under its already-placed parent at the stored sibling step hash:
    /// no longest-matching-parent search, no probe-and-descend, and
    /// splice/join restructures computed with the analytic profile
    /// arithmetic of [`classify_step`]. A merge between similar trees
    /// degenerates to the probe sweep; a merge of disjoint trees
    /// degenerates to a linear copy.
    ///
    /// With `negate` set the same pass *subtracts* every source mass —
    /// the structural twin of the element-wise diff loop, shared by
    /// [`FlowTree::diff_many`].
    fn merge_structural(&mut self, o: &FlowTree, negate: bool) {
        if negate {
            self.total -= o.total;
        } else {
            self.total += o.total;
        }
        let n = o.nodes.len();
        // A-node id holding each source node's key (pass 1 hits and
        // pass 2 creations).
        let mut placed: Vec<u32> = vec![NIL; n];
        let mut misses = 0usize;
        for (i, b) in o.nodes.iter().enumerate() {
            if !b.alive {
                continue;
            }
            if let Some(id) = self.lookup(&b.key, b.key_hash) {
                self.clock += 1;
                let touch = self.clock;
                let node = &mut self.nodes[id as usize];
                if negate {
                    node.comp -= b.comp;
                } else {
                    node.comp += b.comp;
                }
                node.touch = touch;
                placed[i] = id;
            } else {
                misses += 1;
            }
        }
        if misses == 0 {
            return;
        }

        let mask = o.subtree_mass_mask();
        // For a source node that was neither matched nor created
        // (zero-mass or pass-through), the anchor its children inherit,
        // and the step they use there (the skipped node's own step:
        // their chains all pass through it). A non-NIL anchor doubles
        // as the "resolved but skipped" marker.
        let mut anchor_of: Vec<u32> = vec![NIL; n];
        let mut step_of: Vec<u64> = vec![0; n];
        // Placement needs parents resolved first, but arena order is
        // not topological (joins allocate after their children), so
        // resolve on demand: climb the chain of unresolved ancestors
        // and place it top-down. Each node is pushed exactly once
        // across the sweep — amortized linear, no DFS pass.
        let mut stack: Vec<u32> = Vec::new();
        for i in 0..n {
            if !o.nodes[i].alive || placed[i] != NIL || anchor_of[i] != NIL {
                continue;
            }
            let mut j = i as u32;
            loop {
                // The root always hits (every tree retains the root
                // key), so a missed node has a parent.
                let p = o.nodes[j as usize].parent;
                debug_assert_ne!(p, NIL);
                stack.push(j);
                if placed[p as usize] != NIL || anchor_of[p as usize] != NIL {
                    break;
                }
                j = p;
            }
            while let Some(k) = stack.pop() {
                let b = &o.nodes[k as usize];
                let p = b.parent as usize;
                let (anchor, step) = if placed[p] != NIL {
                    (placed[p], b.step_hash)
                } else {
                    (anchor_of[p], step_of[p])
                };
                // Materialize the node iff the element-wise loop
                // would: it carries mass, or it is a join of ≥ 2 massy
                // subtrees (which re-inserting the masses would
                // recreate at the same key). Everything else is
                // skipped and its children inherit the anchor.
                if b.comp.is_zero() && !Self::is_surviving_join(o, &mask, k) {
                    anchor_of[k as usize] = anchor;
                    step_of[k as usize] = step;
                } else {
                    let comp = if negate { -b.comp } else { b.comp };
                    placed[k as usize] =
                        self.place_single(anchor, b.key, b.key_hash, b.depth, comp, step);
                }
            }
        }
    }

    /// Reference implementation of the pre-structural merge: one
    /// hash-probe insert per live source node. Kept for benchmarks and
    /// the differential property tests that pin [`FlowTree::merge`] /
    /// [`FlowTree::merge_many`] to it.
    #[doc(hidden)]
    pub fn merge_elementwise(&mut self, other: &FlowTree) -> Result<(), TreeError> {
        if self.schema != other.schema {
            return Err(TreeError::SchemaMismatch);
        }
        for node in other.nodes.iter().filter(|n| n.alive) {
            if !node.comp.is_zero() {
                self.add_mass_hashed(node.key, node.key_hash, node.comp);
            }
        }
        if self.live > self.cfg.node_budget {
            self.compact();
        }
        Ok(())
    }

    /// `mask[id]` = the subtree rooted at `id` holds any nonzero mass
    /// (negative diff masses count). Returns the **empty** vector for
    /// the common fully-massy case — every zero-mass node is a join of
    /// ≥ 2 subtrees that all carry mass — which [`FlowTree::effective`]
    /// treats as "no filtering needed", skipping both this pass and the
    /// per-child mask reads. Trees built by inserts and merges are
    /// always fully massy; only diff trees (zero-cancelled masses) and
    /// hand-built streams need the real mask.
    fn subtree_mass_mask(&self) -> Vec<bool> {
        // The root is exempt: it is handled directly by `merge_many`,
        // never routed through `effective` (and it legitimately sits
        // zero-massed above a single child on single-prefix traffic).
        let filtering_needed = self.nodes.iter().enumerate().any(|(i, n)| {
            n.alive
                && i as u32 != self.root
                && n.comp.is_zero()
                && (n.first_child == NIL || self.nodes[n.first_child as usize].next_sibling == NIL)
        });
        if !filtering_needed {
            return Vec::new();
        }
        let order = self.preorder();
        let mut mask = vec![false; self.capacity()];
        for &id in order.iter().rev() {
            let node = &self.nodes[id as usize];
            if !node.comp.is_zero() {
                mask[id as usize] = true;
            }
            if mask[id as usize] && node.parent != NIL {
                mask[node.parent as usize] = true;
            }
        }
        mask
    }

    /// Whether a zero-mass source node would be recreated as a join by
    /// the element-wise loop: ≥ 2 of its child subtrees carry mass (so
    /// re-inserting their keys branches exactly at this node's key).
    /// An empty `mask` means the source is fully massy (see
    /// [`FlowTree::subtree_mass_mask`]): every zero-mass node is such
    /// a join by construction.
    fn is_surviving_join(o: &FlowTree, mask: &[bool], id: u32) -> bool {
        if mask.is_empty() {
            return true;
        }
        let mut massy = 0u32;
        let mut c = o.nodes[id as usize].first_child;
        while c != NIL {
            if mask[c as usize] {
                massy += 1;
                if massy >= 2 {
                    return true;
                }
            }
            c = o.nodes[c as usize].next_sibling;
        }
        false
    }

    /// Creates the node for a missed key and splices it in under
    /// `anchor` (a retained chain ancestor) at `step` (the key's chain
    /// step hash at `anchor.depth + 1`): the sibling scan either finds
    /// the step free (direct attach — the common case for new
    /// subtrees, whose parents were just placed), descends through a
    /// retained ancestor, splices above a deeper child, or branches at
    /// the analytic LCCA. Step-hash matches are confirmed by the LCCA
    /// depth, so 64-bit collisions degrade to extra sibling scanning,
    /// never to a wrong tree. Returns the new node's id.
    fn place_single(
        &mut self,
        anchor: u32,
        b_key: FlowKey,
        b_hash: u64,
        b_depth: u32,
        b_comp: Popularity,
        step: u64,
    ) -> u32 {
        // The memoized schedule of `b`'s shape, pulled lazily on the
        // first sibling conflict (direct attaches never need it) and
        // returned to the LRU on exit.
        let mut seq_b: Option<Vec<flowkey::DepthProfile>> = None;
        let nid = self.place_single_inner(anchor, b_key, b_hash, b_depth, b_comp, step, &mut seq_b);
        if let Some(seq) = seq_b {
            self.put_seq(flowkey::DepthProfile::of(&b_key), seq);
        }
        nid
    }

    #[allow(clippy::too_many_arguments)]
    fn place_single_inner(
        &mut self,
        anchor: u32,
        b_key: FlowKey,
        b_hash: u64,
        b_depth: u32,
        b_comp: Popularity,
        step: u64,
        seq_b: &mut Option<Vec<flowkey::DepthProfile>>,
    ) -> u32 {
        let schema = self.schema;
        // `(anchor, step)` evolve as the key descends through retained
        // ancestors; each level re-enters the sibling scan.
        let mut a_id = anchor;
        let mut step = step;
        'descend: loop {
            let (a_depth, mut cur) = {
                let a = &self.nodes[a_id as usize];
                (a.depth, a.first_child)
            };
            while cur != NIL {
                // Touch only the step hash and link on mismatching
                // siblings; the key is copied out on a hash match.
                let next = self.nodes[cur as usize].next_sibling;
                if self.nodes[cur as usize].step_hash == step {
                    let (c_key, c_hash, c_depth) = {
                        let c = &self.nodes[cur as usize];
                        (c.key, c.key_hash, c.depth)
                    };
                    // Key equality was settled by the hash-join probe.
                    debug_assert_ne!(c_key, b_key, "matched keys never reach placement");
                    let seq = seq_b
                        .get_or_insert_with(|| self.take_seq(flowkey::DepthProfile::of(&b_key)));
                    match classify_step(
                        &schema, a_depth, &c_key, c_hash, c_depth, &b_key, b_depth, seq,
                    ) {
                        StepRel::Collision => {
                            // Keep scanning the remaining siblings.
                        }
                        StepRel::SpliceAbove(step_c) => {
                            // The key lies on the child's chain above
                            // it: splice between anchor and child.
                            self.clock += 1;
                            let nid = self.alloc(b_key, b_hash, b_depth, b_comp);
                            self.index.insert(b_hash, nid);
                            self.stats.grafted_nodes += 1;
                            self.detach(cur);
                            self.attach(nid, a_id, step);
                            self.attach(cur, nid, step_c);
                            return nid;
                        }
                        StepRel::Descend(step_b) => {
                            // The child is a retained chain ancestor of
                            // the key: descend into it.
                            a_id = cur;
                            step = step_b;
                            continue 'descend;
                        }
                        StepRel::Fork {
                            join,
                            join_hash,
                            join_depth,
                            step_c,
                            step_b,
                        } => {
                            // The keys fork below the anchor: branch at
                            // their lowest common chain ancestor.
                            self.clock += 1;
                            let jid = self.alloc(join, join_hash, join_depth, Popularity::ZERO);
                            self.index.insert(join_hash, jid);
                            self.stats.joins_created += 1;
                            self.detach(cur);
                            self.attach(jid, a_id, step);
                            self.attach(cur, jid, step_c);
                            self.clock += 1;
                            let nid = self.alloc(b_key, b_hash, b_depth, b_comp);
                            self.index.insert(b_hash, nid);
                            self.stats.grafted_nodes += 1;
                            self.attach(nid, jid, step_b);
                            return nid;
                        }
                    }
                }
                cur = next;
            }
            // The step is free: attach directly — zero probes.
            self.clock += 1;
            let nid = self.alloc(b_key, b_hash, b_depth, b_comp);
            self.index.insert(b_hash, nid);
            self.stats.grafted_nodes += 1;
            self.attach(nid, a_id, step);
            return nid;
        }
    }

    /// Subtracts every node mass of `other` from `self` (the paper's
    /// `diff`). The result can legitimately contain negative masses —
    /// that is what makes diff summaries useful for change detection and
    /// diff-based transfer. Zero-mass leaves are pruned afterwards.
    ///
    /// Runs the **structural** fast path — the same hash-join +
    /// anchored-placement pass as [`FlowTree::merge`], with every
    /// source mass negated — so the collector's alarm sweep pays merge
    /// cost, not one longest-matching-parent search per node. The old
    /// loop survives as [`FlowTree::diff_elementwise`] for the
    /// differential property tests.
    pub fn diff(&mut self, other: &FlowTree) -> Result<(), TreeError> {
        self.diff_many(std::slice::from_ref(&other))
    }

    /// The k-way structural diff: subtracts every node mass of each
    /// tree in `others` from `self` in one co-traversal — the
    /// [`FlowTree::merge_many`] twin for subtraction. Equivalent to
    /// folding [`FlowTree::diff_elementwise`] over `others`
    /// (byte-identical encodings when no compaction interferes), with
    /// zero-mass pruning and the budget check deferred to the end of
    /// the pass.
    pub fn diff_many(&mut self, others: &[&FlowTree]) -> Result<(), TreeError> {
        for o in others {
            if self.schema != o.schema {
                return Err(TreeError::SchemaMismatch);
            }
        }
        for o in others {
            self.merge_structural(o, true);
        }
        self.prune_zeros();
        if self.live > self.cfg.node_budget {
            self.compact();
        }
        Ok(())
    }

    /// Reference implementation of the pre-structural diff: one
    /// hash-probe insert per live source node, masses negated. Kept for
    /// benchmarks and the differential property tests that pin
    /// [`FlowTree::diff`] / [`FlowTree::diff_many`] to it.
    #[doc(hidden)]
    pub fn diff_elementwise(&mut self, other: &FlowTree) -> Result<(), TreeError> {
        if self.schema != other.schema {
            return Err(TreeError::SchemaMismatch);
        }
        for node in other.nodes.iter().filter(|n| n.alive) {
            if !node.comp.is_zero() {
                self.add_mass_hashed(node.key, node.key_hash, -node.comp);
            }
        }
        self.prune_zeros();
        if self.live > self.cfg.node_budget {
            self.compact();
        }
        Ok(())
    }

    /// The merge of two trees, leaving both inputs untouched.
    pub fn merged(a: &FlowTree, b: &FlowTree) -> Result<FlowTree, TreeError> {
        let mut out = a.clone();
        out.merge(b)?;
        Ok(out)
    }

    /// `a - b` as a fresh diff tree.
    pub fn diffed(a: &FlowTree, b: &FlowTree) -> Result<FlowTree, TreeError> {
        let mut out = a.clone();
        out.diff(b)?;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Self-adjustment
    // ------------------------------------------------------------------

    /// Folds the least-popular leaves into their parents until the tree
    /// is at the low-water mark. Mass is conserved: an evicted leaf's
    /// complementary popularity moves to its parent, which is exactly the
    /// paper's "summarize the unpopular flows".
    pub fn compact(&mut self) {
        let target = self.cfg.compaction_target().min(self.cfg.node_budget);
        if self.live <= target {
            return;
        }
        self.stats.compactions += 1;

        // Min-heap of (rank, id, generation) with lazy revalidation.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u64, u32, u32)>> = BinaryHeap::new();
        let push = |heap: &mut BinaryHeap<std::cmp::Reverse<(u64, u64, u32, u32)>>,
                    node: &Node,
                    id: u32,
                    cfg: &Config| {
            let (a, b) = rank(node, cfg);
            heap.push(std::cmp::Reverse((a, b, id, node.generation)));
        };
        for (i, n) in self.nodes.iter().enumerate() {
            if n.alive && n.first_child == NIL && i as u32 != self.root {
                push(&mut heap, n, i as u32, &self.cfg);
            }
        }

        while self.live > target {
            let Some(std::cmp::Reverse((a, b, id, generation))) = heap.pop() else {
                break; // only the root is left
            };
            let node = &self.nodes[id as usize];
            if !node.alive || node.generation != generation {
                continue; // slot was reused
            }
            if node.first_child != NIL {
                continue; // no longer a leaf (cannot happen, but be safe)
            }
            let (ca, cb) = rank(node, &self.cfg);
            if (ca, cb) != (a, b) {
                // Weight changed since the entry was pushed (the node
                // absorbed an evicted child); re-rank it.
                push(&mut heap, node, id, &self.cfg);
                continue;
            }

            let parent = node.parent;
            debug_assert_ne!(parent, NIL, "only the root has no parent");
            let comp = node.comp;
            self.remove_leaf(id);
            self.stats.evictions += 1;

            let pnode = &mut self.nodes[parent as usize];
            pnode.comp += comp;
            if pnode.first_child == NIL && parent != self.root {
                // Parent became a leaf: now a candidate itself.
                push(&mut heap, &self.nodes[parent as usize], parent, &self.cfg);
            } else {
                self.contract_if_passthrough(parent);
            }
        }
    }

    /// Removes leaves whose mass cancelled to zero (after `diff`) and
    /// contracts the resulting pass-through chains.
    ///
    /// Dead leaves are bucketed by depth and processed deepest-first,
    /// cascading parents that become dead leaves into their (strictly
    /// shallower) buckets — `O(arena + depth)`, instead of sorting the
    /// whole arena by depth on every call.
    pub fn prune_zeros(&mut self) {
        let mut max_depth = 0u32;
        for n in &self.nodes {
            if n.alive {
                max_depth = max_depth.max(n.depth);
            }
        }
        if max_depth == 0 {
            return;
        }
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_depth as usize + 1];
        for (i, n) in self.nodes.iter().enumerate() {
            let id = i as u32;
            if n.alive && id != self.root && n.first_child == NIL && n.comp.is_zero() {
                buckets[n.depth as usize].push(id);
            }
        }
        for d in (1..=max_depth as usize).rev() {
            let mut i = 0;
            while i < buckets[d].len() {
                let id = buckets[d][i];
                i += 1;
                {
                    let n = &self.nodes[id as usize];
                    // Re-check at visit time: contraction may have
                    // restructured around this candidate.
                    if !n.alive || n.first_child != NIL || !n.comp.is_zero() {
                        continue;
                    }
                }
                let parent = self.nodes[id as usize].parent;
                self.remove_leaf(id);
                if parent != self.root {
                    let p = &self.nodes[parent as usize];
                    if p.alive && p.first_child == NIL && p.comp.is_zero() {
                        buckets[p.depth as usize].push(parent);
                    } else {
                        self.contract_if_passthrough(parent);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Structure helpers
    // ------------------------------------------------------------------

    fn alloc(&mut self, key: FlowKey, hash: u64, depth: u32, comp: Popularity) -> u32 {
        self.live += 1;
        let touch = self.clock;
        if let Some(id) = self.free.pop() {
            let generation = self.nodes[id as usize].generation.wrapping_add(1);
            self.nodes[id as usize] = Node {
                key,
                key_hash: hash,
                depth,
                parent: NIL,
                first_child: NIL,
                next_sibling: NIL,
                prev_sibling: NIL,
                step_hash: 0,
                comp,
                touch,
                generation,
                alive: true,
            };
            id
        } else {
            self.nodes.push(Node {
                key,
                key_hash: hash,
                depth,
                parent: NIL,
                first_child: NIL,
                next_sibling: NIL,
                prev_sibling: NIL,
                step_hash: 0,
                comp,
                touch,
                generation: 0,
                alive: true,
            });
            (self.nodes.len() - 1) as u32
        }
    }

    /// Links `child` under `parent`, keeping the sibling list sorted by
    /// `(step_hash, key)`. The order is **canonical**: it depends only
    /// on the node set, never on arrival order, so any two trees
    /// holding the same nodes store — and therefore wire-encode — them
    /// identically. Structural merges co-walk these ordered lists, and
    /// the byte-identity guarantees of `merge_many`/sharded folds rest
    /// on this invariant (checked by [`FlowTree::validate`]).
    fn attach(&mut self, child: u32, parent: u32, step_hash: u64) {
        let child_key = self.nodes[child as usize].key;
        let mut prev = NIL;
        let mut cur = self.nodes[parent as usize].first_child;
        while cur != NIL {
            let n = &self.nodes[cur as usize];
            if n.step_hash > step_hash || (n.step_hash == step_hash && n.key > child_key) {
                break;
            }
            prev = cur;
            cur = n.next_sibling;
        }
        {
            let c = &mut self.nodes[child as usize];
            c.parent = parent;
            c.step_hash = step_hash;
            c.prev_sibling = prev;
            c.next_sibling = cur;
        }
        if prev == NIL {
            self.nodes[parent as usize].first_child = child;
        } else {
            self.nodes[prev as usize].next_sibling = child;
        }
        if cur != NIL {
            self.nodes[cur as usize].prev_sibling = child;
        }
    }

    fn detach(&mut self, id: u32) {
        let (parent, prev, next) = {
            let n = &self.nodes[id as usize];
            (n.parent, n.prev_sibling, n.next_sibling)
        };
        if prev != NIL {
            self.nodes[prev as usize].next_sibling = next;
        } else if parent != NIL {
            self.nodes[parent as usize].first_child = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev_sibling = prev;
        }
        let n = &mut self.nodes[id as usize];
        n.parent = NIL;
        n.prev_sibling = NIL;
        n.next_sibling = NIL;
    }

    /// Removes a leaf node entirely (caller handles its mass).
    fn remove_leaf(&mut self, id: u32) {
        debug_assert_eq!(self.nodes[id as usize].first_child, NIL);
        self.detach(id);
        let hash = self.nodes[id as usize].key_hash;
        let removed = self.index.remove(hash, |cand| cand == id);
        debug_assert_eq!(removed, Some(id));
        self.nodes[id as usize].alive = false;
        self.free.push(id);
        self.live -= 1;
    }

    /// Contracts `id` if it is a zero-mass pass-through (exactly one
    /// child, no mass, not the root): the child is re-attached to the
    /// grandparent. Join nodes whose purpose disappeared go away here.
    fn contract_if_passthrough(&mut self, id: u32) {
        if id == self.root {
            return;
        }
        let (only_child, comp_zero, parent) = {
            let n = &self.nodes[id as usize];
            if !n.alive {
                return;
            }
            let fc = n.first_child;
            let single = fc != NIL && self.nodes[fc as usize].next_sibling == NIL;
            (if single { fc } else { NIL }, n.comp.is_zero(), n.parent)
        };
        if only_child == NIL || !comp_zero {
            return;
        }
        // The child's chain passes through `id`, whose chain passes
        // through `parent`, so the child's step at the grandparent level
        // equals `id`'s step — the sibling-step invariant is preserved.
        let step_hash = self.nodes[id as usize].step_hash;
        self.detach(only_child);
        self.detach(id);
        let hash = self.nodes[id as usize].key_hash;
        self.index.remove(hash, |cand| cand == id);
        self.nodes[id as usize].alive = false;
        self.free.push(id);
        self.live -= 1;
        self.stats.contractions += 1;
        self.attach(only_child, parent, step_hash);
    }

    // ------------------------------------------------------------------
    // Read access
    // ------------------------------------------------------------------

    /// The true (subtree-summed) popularity of a retained key:
    /// complementary popularities summed over the node's subtree.
    pub fn subtree_popularity(&self, key: &FlowKey) -> Option<Popularity> {
        let id = self.lookup(key, key_hash(key))?;
        Some(self.subtree_sum(id))
    }

    pub(crate) fn subtree_sum(&self, id: u32) -> Popularity {
        DFS_STACK.with(|cell| {
            let mut stack = cell.borrow_mut();
            stack.clear();
            stack.push(id);
            let mut acc = Popularity::ZERO;
            while let Some(cur) = stack.pop() {
                let node = &self.nodes[cur as usize];
                acc += node.comp;
                let mut c = node.first_child;
                while c != NIL {
                    stack.push(c);
                    c = self.nodes[c as usize].next_sibling;
                }
            }
            acc
        })
    }

    /// Iterates over all retained nodes (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = NodeView<'_>> {
        self.nodes
            .iter()
            .filter(|n| n.alive)
            .map(move |n| NodeView {
                key: &n.key,
                comp: n.comp,
                depth: n.depth,
                parent: if n.parent == NIL {
                    None
                } else {
                    Some(&self.nodes[n.parent as usize].key)
                },
                is_leaf: n.first_child == NIL,
            })
    }

    /// The retained children of `key`, if `key` is retained.
    pub fn children_of(&self, key: &FlowKey) -> Option<Vec<NodeView<'_>>> {
        let id = self.lookup(key, key_hash(key))?;
        let mut out = Vec::new();
        let mut c = self.nodes[id as usize].first_child;
        while c != NIL {
            let n = &self.nodes[c as usize];
            out.push(NodeView {
                key: &n.key,
                comp: n.comp,
                depth: n.depth,
                parent: Some(&self.nodes[id as usize].key),
                is_leaf: n.first_child == NIL,
            });
            c = n.next_sibling;
        }
        Some(out)
    }

    /// Ids of live nodes in an order where parents precede children
    /// (pre-order DFS from the root) — used by the codec and analytics.
    pub(crate) fn preorder(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.live);
        DFS_STACK.with(|cell| {
            let mut stack = cell.borrow_mut();
            stack.clear();
            stack.push(self.root);
            while let Some(id) = stack.pop() {
                out.push(id);
                let mut c = self.nodes[id as usize].first_child;
                while c != NIL {
                    stack.push(c);
                    c = self.nodes[c as usize].next_sibling;
                }
            }
        });
        out
    }

    /// Validates every structural invariant; panics with a description on
    /// violation. Test/debug aid — O(n · depth).
    pub fn validate(&self) {
        let mut seen = 0usize;
        let mut mass = Popularity::ZERO;
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.alive {
                continue;
            }
            seen += 1;
            mass += n.comp;
            let id = i as u32;
            assert_eq!(n.key_hash, key_hash(&n.key), "stale key hash at {}", n.key);
            assert_eq!(
                self.lookup(&n.key, n.key_hash),
                Some(id),
                "index maps {}",
                n.key
            );
            assert_eq!(
                self.schema.depth(&n.key),
                n.depth,
                "cached depth of {}",
                n.key
            );
            if id == self.root {
                assert_eq!(n.parent, NIL);
                assert!(n.key.is_root());
            } else {
                assert_ne!(n.parent, NIL, "non-root {} must have a parent", n.key);
                let p = &self.nodes[n.parent as usize];
                assert!(p.alive, "parent of {} is dead", n.key);
                assert!(p.depth < n.depth, "parent deeper than child at {}", n.key);
                assert!(
                    self.schema.is_chain_ancestor(&p.key, &n.key),
                    "parent {} is not a chain ancestor of {}",
                    p.key,
                    n.key
                );
                let step = self.schema.chain_ancestor(&n.key, p.depth + 1);
                assert_eq!(n.step_hash, key_hash(&step), "stale step hash at {}", n.key);
            }
            // Sibling-step uniqueness, linkage, and canonical order.
            let mut steps = std::collections::HashSet::new();
            let mut c = n.first_child;
            let mut prev = NIL;
            let mut last: Option<(u64, FlowKey)> = None;
            while c != NIL {
                let ch = &self.nodes[c as usize];
                assert_eq!(ch.parent, id, "child link broken at {}", ch.key);
                assert_eq!(ch.prev_sibling, prev, "prev link broken at {}", ch.key);
                let step = self.schema.chain_ancestor(&ch.key, n.depth + 1);
                assert!(steps.insert(step), "duplicate sibling step under {}", n.key);
                if let Some(l) = last {
                    assert!(
                        (ch.step_hash, ch.key) > l,
                        "siblings out of canonical order under {}",
                        n.key
                    );
                }
                last = Some((ch.step_hash, ch.key));
                prev = c;
                c = ch.next_sibling;
            }
        }
        assert_eq!(seen, self.live, "live count drift");
        assert_eq!(
            self.index.len(),
            self.live,
            "index size must equal live nodes"
        );
        assert_eq!(mass, self.total, "mass conservation violated");
    }

    /// Looks up a node id by key (for crate-internal query paths).
    pub(crate) fn node_id(&self, key: &FlowKey) -> Option<u32> {
        self.lookup(key, key_hash(key))
    }

    /// Decode fast path: records a node whose claimed parent the codec
    /// has already validated as a canonical-chain ancestor, attaching
    /// directly at `step_hash` (the key's chain step under that parent)
    /// when the step is free — no parent-search probes or descent. Any
    /// retained node whose chain shares the step lives inside the
    /// step's child subtree, so a free step proves the parent is the
    /// longest matching parent and no join is needed; a step conflict
    /// (indirect-ancestor stream, join required) falls back to the
    /// general insert path, preserving the decoder's acceptance
    /// semantics. Returns `None` if `key` is already present (hostile
    /// duplicate).
    pub(crate) fn attach_decoded(
        &mut self,
        key: FlowKey,
        depth: u32,
        comp: Popularity,
        parent: u32,
        step_hash: u64,
    ) -> Option<u32> {
        debug_assert_eq!(depth, self.schema.depth(&key));
        let hash = key_hash(&key);
        if self.lookup(&key, hash).is_some() {
            return None;
        }
        let mut c = self.nodes[parent as usize].first_child;
        while c != NIL {
            let n = &self.nodes[c as usize];
            if n.step_hash == step_hash {
                return Some(self.add_mass_hashed(key, hash, comp));
            }
            c = n.next_sibling;
        }
        self.clock += 1;
        self.stats.inserts += 1;
        self.stats.misses += 1;
        self.total += comp;
        let nid = self.alloc(key, hash, depth, comp);
        self.index.insert(hash, nid);
        self.attach(nid, parent, step_hash);
        Some(nid)
    }

    /// Rebuilds a tree from `(key, comp)` masses (used by serde and the
    /// trusted decode path). Keys are canonicalized; masses at identical
    /// keys accumulate.
    pub fn from_masses<I>(schema: Schema, cfg: Config, masses: I) -> FlowTree
    where
        I: IntoIterator<Item = (FlowKey, Popularity)>,
    {
        let mut tree = FlowTree::new(schema, cfg);
        for (key, comp) in masses {
            let key = schema.canonicalize(&key);
            tree.add_mass(key, comp);
        }
        if tree.live > tree.cfg.node_budget {
            tree.compact();
        }
        tree
    }
}

/// Eviction rank: smaller evicts first.
fn rank(node: &Node, cfg: &Config) -> (u64, u64) {
    let weight = node.comp.weight(cfg.metric);
    match cfg.eviction {
        EvictionPolicy::SmallestFirst => (weight, node.touch),
        EvictionPolicy::ColdFirst => (node.touch, weight),
    }
}
