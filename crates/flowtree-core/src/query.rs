//! Query operators.
//!
//! The paper's simplest query asks for the popularity of a flow: "if the
//! corresponding node is in the Flowtree, we can directly answer the
//! query. If it is not … we can estimate its popularity by decomposing
//! the query into a set of queries that can be answered by the given
//! hierarchy." This module implements that, generalized to arbitrary
//! hierarchical patterns (any combination of prefixes / port ranges /
//! wildcards, not only keys on canonical chains), plus top-k and
//! hierarchical-heavy-hitter extraction. Pattern queries run in time
//! proportional to the number of tree nodes, matching the paper.

use crate::pop::{Metric, PopEst, Popularity};
use crate::tree::{FlowTree, NIL};
use crate::Estimator;
use flowkey::FlowKey;

/// Result of a popularity query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryAnswer {
    /// The (possibly fractional) popularity estimate.
    pub est: PopEst,
    /// `true` when the queried key was a retained node and the answer is
    /// the exact subtree sum of what the tree tracked (still an estimate
    /// of ground truth if compaction folded descendants elsewhere first,
    /// but exact w.r.t. the tree's own bookkeeping).
    pub tracked: bool,
}

/// One hierarchical heavy hitter.
#[derive(Debug, Clone, PartialEq)]
pub struct HhhItem {
    /// The generalized flow.
    pub key: FlowKey,
    /// Discounted popularity: subtree mass not covered by deeper HHHs.
    pub discounted: Popularity,
    /// Full subtree popularity.
    pub subtree: Popularity,
}

impl FlowTree {
    /// The popularity of `key` (the paper's *query* operator).
    ///
    /// Retained keys answer exactly from the tree's bookkeeping
    /// (`tracked = true`); absent keys are estimated by decomposing the
    /// pattern over the retained hierarchy using the configured
    /// [`Estimator`].
    pub fn popularity(&self, key: &FlowKey) -> QueryAnswer {
        if let Some(id) = self.node_id(key) {
            return QueryAnswer {
                est: PopEst::from(self.subtree_sum(id)),
                tracked: true,
            };
        }
        QueryAnswer {
            est: self.estimate_pattern(key),
            tracked: false,
        }
    }

    /// Estimates the popularity of an arbitrary hierarchical pattern by
    /// walking the tree once (`O(n)`).
    ///
    /// For every retained node the walk classifies the node's key
    /// against the pattern:
    ///
    /// * fully inside the pattern → its whole subtree counts;
    /// * disjoint → its whole subtree is skipped (children specialize
    ///   their parents, so nothing below can overlap either);
    /// * partial overlap (the node is an ancestor of, or crosses, the
    ///   pattern) → a share of the node's *complementary* mass is
    ///   attributed according to the estimator, and the walk recurses.
    pub fn estimate_pattern(&self, pattern: &FlowKey) -> PopEst {
        let mut acc = PopEst::ZERO;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            if pattern.contains(&node.key) {
                acc += PopEst::from(self.subtree_sum(id));
                continue;
            }
            if !pattern.overlaps(&node.key) {
                continue;
            }
            // Node strictly contains or crosses the pattern: attribute a
            // share of the residual mass, then descend.
            match self.config().estimator {
                Estimator::Conservative => {}
                Estimator::Optimistic => acc += PopEst::from(node.comp),
                Estimator::Uniform => {
                    let meet = node
                        .key
                        .meet(pattern)
                        .expect("overlapping keys have a meet");
                    let bits = self.schema().log2_space_between(&node.key, &meet);
                    // 2^-bits, saturating to 0 for absurdly deep gaps.
                    let frac = if bits >= 1024 {
                        0.0
                    } else {
                        0.5f64.powi(bits as i32)
                    };
                    acc += PopEst::from(node.comp).scaled(frac);
                }
            }
            let mut c = node.first_child;
            while c != NIL {
                stack.push(c);
                c = self.node(c).next_sibling;
            }
        }
        acc
    }

    /// The `k` most popular retained flows by subtree popularity
    /// (root excluded), deepest-first on ties.
    pub fn top_k(&self, k: usize, metric: Metric) -> Vec<(FlowKey, Popularity)> {
        let sums = self.all_subtree_sums();
        let mut items: Vec<(FlowKey, Popularity, u32)> = sums
            .into_iter()
            .filter(|(id, _)| *id != self.root)
            .map(|(id, pop)| (self.node(id).key, pop, self.node(id).depth))
            .collect();
        items.sort_by(|a, b| {
            b.1.get(metric)
                .cmp(&a.1.get(metric))
                .then(b.2.cmp(&a.2))
                .then(a.0.cmp(&b.0))
        });
        items.truncate(k);
        items.into_iter().map(|(k, p, _)| (k, p)).collect()
    }

    /// Hierarchical heavy hitters with threshold `phi` (fraction of the
    /// total mass, e.g. `0.01` for the paper's "flows above 1 % of
    /// packets"): every node whose subtree mass *not covered by deeper
    /// heavy hitters* reaches `phi × total`, computed in one post-order
    /// pass.
    pub fn hhh(&self, phi: f64, metric: Metric) -> Vec<HhhItem> {
        let total = self.total().get(metric).max(0) as f64;
        let threshold = (phi * total).ceil() as i64;
        let mut out = Vec::new();
        if threshold <= 0 {
            return out;
        }
        let order = self.preorder();
        let n = self.capacity();
        let mut carry: Vec<Popularity> = vec![Popularity::ZERO; n];
        let mut subtree: Vec<Popularity> = vec![Popularity::ZERO; n];
        // Children appear after parents in pre-order; walk backwards so
        // every node is finalized before its parent.
        for &id in order.iter().rev() {
            let node = self.node(id);
            let disc = carry[id as usize] + node.comp;
            let sub = subtree[id as usize] + node.comp;
            if node.parent != NIL {
                subtree[node.parent as usize] += sub;
            }
            if disc.get(metric) >= threshold {
                out.push(HhhItem {
                    key: node.key,
                    discounted: disc,
                    subtree: sub,
                });
                // Covered mass does not propagate upward.
            } else if node.parent != NIL {
                carry[node.parent as usize] += disc;
            }
        }
        out.sort_by(|a, b| {
            b.discounted
                .get(metric)
                .cmp(&a.discounted.get(metric))
                .then(a.key.cmp(&b.key))
        });
        out
    }

    /// The retained generalized flows inside `pattern`, with their
    /// subtree popularities, most popular first — the raw material for
    /// custom drill-down UIs (`flowquery` builds its refinement
    /// candidates this way). `O(n)` in tree size; disjoint subtrees are
    /// pruned without descending.
    pub fn nodes_under(&self, pattern: &FlowKey, metric: Metric) -> Vec<(FlowKey, Popularity)> {
        let sums = self.all_subtree_sums();
        let mut sum_of = vec![Popularity::ZERO; self.capacity()];
        for (id, s) in &sums {
            sum_of[*id as usize] = *s;
        }
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            if !pattern.overlaps(&node.key) {
                continue; // nothing below can match either
            }
            if pattern.contains(&node.key) {
                out.push((node.key, sum_of[id as usize]));
            }
            let mut c = node.first_child;
            while c != NIL {
                stack.push(c);
                c = self.node(c).next_sibling;
            }
        }
        out.sort_by(|a, b| b.1.get(metric).cmp(&a.1.get(metric)).then(a.0.cmp(&b.0)));
        out
    }

    /// Subtree sums for every live node in `O(n)`.
    pub(crate) fn all_subtree_sums(&self) -> Vec<(u32, Popularity)> {
        let order = self.preorder();
        let n = self.capacity();
        let mut sums: Vec<Popularity> = vec![Popularity::ZERO; n];
        for &id in order.iter().rev() {
            let node = self.node(id);
            sums[id as usize] += node.comp;
            if node.parent != NIL {
                let s = sums[id as usize];
                sums[node.parent as usize] += s;
            }
        }
        order
            .into_iter()
            .map(|id| (id, sums[id as usize]))
            .collect()
    }

    #[inline]
    pub(crate) fn node(&self, id: u32) -> &crate::tree::Node {
        &self.nodes[id as usize]
    }

    #[inline]
    pub(crate) fn capacity(&self) -> usize {
        self.nodes.len()
    }
}
