//! Tree rendering: Graphviz dot and indented ASCII.
//!
//! Used by `examples/figure2.rs` to regenerate the paper's Fig. 2 style
//! drawings: each node is labeled with its flow and its popularity
//! (complementary and subtree-summed, like the bracketed counts in the
//! figure).

use crate::pop::{Metric, Popularity};
use crate::tree::{FlowTree, NIL};
use std::fmt::Write as _;

impl FlowTree {
    /// Graphviz dot rendering of the whole tree.
    pub fn to_dot(&self) -> String {
        let sums = self.all_subtree_sums();
        let mut sum_of = vec![Popularity::ZERO; self.capacity()];
        for (id, s) in &sums {
            sum_of[*id as usize] = *s;
        }
        let mut out =
            String::from("digraph flowtree {\n  node [shape=box, fontname=\"monospace\"];\n");
        for &(id, _) in &sums {
            let node = self.node(id);
            let label = format!(
                "{}\\n[{} | comp {}]",
                escape(&node.key.to_string()),
                sum_of[id as usize].get(Metric::Packets),
                node.comp.get(Metric::Packets),
            );
            let _ = writeln!(out, "  n{id} [label=\"{label}\"];");
            if node.parent != NIL {
                let _ = writeln!(out, "  n{} -> n{id};", node.parent);
            }
        }
        out.push_str("}\n");
        out
    }

    /// Indented ASCII rendering (children sorted by key for determinism).
    pub fn to_ascii(&self) -> String {
        let sums = self.all_subtree_sums();
        let mut sum_of = vec![Popularity::ZERO; self.capacity()];
        for (id, s) in &sums {
            sum_of[*id as usize] = *s;
        }
        let mut out = String::new();
        let mut stack: Vec<(u32, usize)> = vec![(self.root, 0)];
        while let Some((id, indent)) = stack.pop() {
            let node = self.node(id);
            let _ = writeln!(
                out,
                "{}{} [{} | comp {}]",
                "  ".repeat(indent),
                node.key,
                sum_of[id as usize].get(Metric::Packets),
                node.comp.get(Metric::Packets),
            );
            let mut kids = Vec::new();
            let mut c = node.first_child;
            while c != NIL {
                kids.push(c);
                c = self.node(c).next_sibling;
            }
            kids.sort_by_key(|k| std::cmp::Reverse(self.node(*k).key));
            for k in kids {
                stack.push((k, indent + 1));
            }
        }
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;
    use flowkey::Schema;

    fn tiny_tree() -> FlowTree {
        let mut tree = FlowTree::new(Schema::one_feature_src(), Config::with_budget(64));
        for (key, n) in [
            ("src=1.1.1.12/32", 2i64),
            ("src=1.1.1.20/32", 6),
            ("src=1.1.1.99/32", 40),
        ] {
            tree.insert(&key.parse().unwrap(), Popularity::new(n, n * 100, 1));
        }
        tree
    }

    #[test]
    fn dot_contains_every_node_and_edge() {
        let tree = tiny_tree();
        let dot = tree.to_dot();
        assert!(dot.starts_with("digraph flowtree {"));
        assert!(dot.contains("1.1.1.12/32"));
        assert!(dot.contains("->"));
        // One label line per node.
        assert_eq!(
            dot.matches("[label=").count(),
            tree.len(),
            "every node labeled"
        );
    }

    #[test]
    fn ascii_is_indented_and_complete() {
        let tree = tiny_tree();
        let ascii = tree.to_ascii();
        assert_eq!(ascii.lines().count(), tree.len());
        assert!(ascii.starts_with("* ["), "root first: {ascii}");
        assert!(ascii.contains("src=1.1.1.99/32"));
    }

    #[test]
    fn root_shows_total_packets() {
        let tree = tiny_tree();
        let ascii = tree.to_ascii();
        let first = ascii.lines().next().unwrap();
        assert!(first.contains("[48 |"), "root subtree = 2+6+40: {first}");
    }
}
