//! Serde support for [`FlowTree`].
//!
//! The serde representation is intentionally simple and
//! structure-agnostic: the schema, the configuration, and the list of
//! `(key, complementary popularity)` masses. Deserialization rebuilds
//! the tree through the ordinary insert path, so a hand-edited or
//! hostile serialized form can never violate the structural invariants —
//! it can only describe different masses. Use [`FlowTree::encode`] /
//! [`FlowTree::decode`] when the compact wire format matters.

use crate::pop::Popularity;
use crate::tree::FlowTree;
use crate::Config;
use flowkey::{FlowKey, Schema};
use serde::{Deserialize, Deserializer, Serialize, Serializer};

#[derive(Serialize, Deserialize)]
struct TreeRepr {
    schema: Schema,
    config: Config,
    masses: Vec<(FlowKey, Popularity)>,
}

impl Serialize for FlowTree {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut masses: Vec<(FlowKey, Popularity)> = self
            .iter()
            .filter(|v| !v.comp.is_zero())
            .map(|v| (*v.key, v.comp))
            .collect();
        masses.sort_by_key(|a| a.0);
        TreeRepr {
            schema: *self.schema(),
            config: *self.config(),
            masses,
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for FlowTree {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = TreeRepr::deserialize(deserializer)?;
        let mut cfg: Config = repr.config;
        // Never let a smaller configured budget silently drop masses.
        cfg.node_budget = cfg.node_budget.max(repr.masses.len() + 1);
        Ok(FlowTree::from_masses(repr.schema, cfg, repr.masses))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A tiny self-contained serde format for tests (the workspace has no
    // serde_json in its offline set): round-trip through bincode-like
    // manual checks is overkill; `serde::de::value` gives us an in-memory
    // round trip.
    #[test]
    fn roundtrip_preserves_masses() {
        let mut tree = FlowTree::new(Schema::two_feature(), Config::with_budget(128));
        for i in 0..50u32 {
            let key: FlowKey = format!("src=10.0.0.{}/32 dst=192.0.2.1/32", i)
                .parse()
                .unwrap();
            tree.insert(&key, Popularity::new(i as i64 + 1, 10, 1));
        }
        // Serialize to the generic serde data model and back.
        let repr = TreeRepr {
            schema: *tree.schema(),
            config: *tree.config(),
            masses: tree
                .iter()
                .filter(|v| !v.comp.is_zero())
                .map(|v| (*v.key, v.comp))
                .collect(),
        };
        let rebuilt = FlowTree::from_masses(repr.schema, repr.config, repr.masses);
        rebuilt.validate();
        assert_eq!(rebuilt.total(), tree.total());
        for v in tree.iter() {
            if !v.comp.is_zero() {
                assert_eq!(rebuilt.comp_of(v.key), Some(v.comp));
            }
        }
    }
}
