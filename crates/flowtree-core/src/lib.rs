//! # flowtree-core — the Flowtree data structure
//!
//! A from-scratch implementation of the core contribution of *Flowtree:
//! Enabling Distributed Flow Summarization at Scale* (Saidi, Foucard,
//! Smaragdakis, Feldmann — ACM SIGCOMM 2018): a **self-adjusting,
//! bounded-size, mergeable summary of generalized network flows**.
//!
//! ## The idea in four sentences
//!
//! Every flow feature (IP, port, protocol…) has a natural hierarchy, so
//! any packet trace maps to a *flow graph* whose nodes are generalized
//! flows annotated with popularity. Flowtree keeps the popular nodes and
//! folds unpopular ones into their ancestors under a fixed node budget,
//! so the summary stays small while still covering *all* traffic (unlike
//! heavy-hitter-only sketches, medium and low-popularity flows remain
//! answerable with bounded error). Nodes store **complementary
//! popularity** — mass not attributed to retained descendants — which is
//! additive, so whole summaries can be **merged** and **diffed**
//! node-wise; that is what enables cheap distributed and
//! across-time summarization. Updates are amortized constant time;
//! queries cost at most one tree walk.
//!
//! ## Ingest entry points
//!
//! * [`FlowTree::insert`] — one update; the miss path uses a
//!   zero-rehash parent search (precomputed-hash index, rolling
//!   per-dimension hashes, root descent with an analytic LCCA — see
//!   the [`tree` hot-path notes](FlowTree)).
//! * [`FlowTree::insert_batch`] — bulk: canonicalize + hash each key
//!   once, hash-sort for index locality, one budget check per batch.
//! * [`FlowTree::insert_prehashed`] / [`FlowTree::insert_batch_prehashed`]
//!   — for callers that already hold [`flowkey::key_hash`]es, like
//!   `flowdist`'s sharded parallel ingest, which routes keys to
//!   per-core trees by that same hash and folds the shards with the
//!   paper's §2 `merge` (complementary popularities are additive, so
//!   node-wise merging of shard summaries reconstructs the unsharded
//!   summary).
//!
//! ## Quick start
//!
//! ```
//! use flowtree_core::{Config, FlowTree, Metric, Popularity};
//! use flowkey::Schema;
//!
//! // The paper's evaluation setup: 4-feature flows, 40 K node budget.
//! let mut tree = FlowTree::new(Schema::four_feature(), Config::paper());
//!
//! let key = "src=10.1.2.3/32 dst=192.0.2.7/32 sport=49152 dport=443"
//!     .parse()
//!     .unwrap();
//! tree.insert(&key, Popularity::packet(1500));
//!
//! // Point query (tracked ⇒ answered from the tree's own bookkeeping).
//! assert_eq!(tree.popularity(&key).est.packets, 1.0);
//!
//! // Hierarchical pattern query: "how much traffic to 192.0.2.0/24?"
//! let pat = "dst=192.0.2.0/24".parse().unwrap();
//! assert!(tree.estimate_pattern(&pat).packets >= 1.0);
//!
//! // Top flows and hierarchical heavy hitters.
//! let top = tree.top_k(10, Metric::Packets);
//! assert!(!top.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod config;
mod hasher;
mod pop;
mod query;
mod render;
#[cfg(feature = "serde")]
mod serde_impl;
mod table;
mod tree;

pub use codec::{CodecError, MAGIC, MAX_WIRE_NODES, VERSION};
pub use config::{Config, Estimator, EvictionPolicy};
pub use hasher::{fxhash, BuildFx, FxHasher};
pub use pop::{Metric, PopEst, Popularity};
pub use query::{HhhItem, QueryAnswer};
pub use tree::{FlowTree, NodeView, Stats, TreeError};
