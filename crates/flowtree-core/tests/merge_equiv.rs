//! Property tests pinning the structural merge paths to the
//! element-wise reference loop: `merge`, `merge_many`, and any merge
//! order must produce **byte-identical wire encodings** (and therefore
//! identical estimates) whenever compaction stays out of play —
//! including diff trees carrying negative masses and decoded trees
//! carrying zero-mass pass-through nodes.

use flowkey::{FlowKey, Schema};
use flowtree_core::{Config, FlowTree, Popularity};
use proptest::prelude::*;

fn arb_key() -> impl Strategy<Value = FlowKey> {
    // Mixed shapes on purpose: full 5-tuples, bare prefixes of varying
    // length, and v6 — so merges exercise splices, joins, descents, and
    // the profile-schedule memo across shapes.
    prop_oneof![
        (0u8..4, 0u8..6, 0u8..32, 0u8..3, 1u16..5).prop_map(|(a, b, c, d, p)| format!(
            "src=10.{a}.{b}.{c}/32 dst=192.0.2.{d}/32 sport={} dport=443 proto=tcp",
            40_000 + p
        )
        .parse()
        .unwrap()),
        (0u8..4, 8u8..=24)
            .prop_map(|(a, len)| { format!("src={}.0.0.0/{len}", 10 + a).parse().unwrap() }),
        (0u8..6, 0u8..3).prop_map(|(h, d)| format!(
            "src=2001:db8::{h:x}/128 dst=192.0.2.{d}/32 proto=udp"
        )
        .parse()
        .unwrap()),
        (0u8..8, 1u16..4).prop_map(|(c, p)| format!("src=10.0.0.{c}/32 dport={}", 50 + p)
            .parse()
            .unwrap()),
    ]
}

fn arb_pop() -> impl Strategy<Value = Popularity> {
    (1i64..40, 1i64..1500).prop_map(|(p, b)| Popularity::new(p, b, 1))
}

fn arb_inserts() -> impl Strategy<Value = Vec<(FlowKey, Popularity)>> {
    proptest::collection::vec((arb_key(), arb_pop()), 0..120)
}

/// Room for everything: no compaction anywhere.
const CFG: fn() -> Config = || Config::with_budget(1_000_000);

fn build(schema: Schema, inserts: &[(FlowKey, Popularity)]) -> FlowTree {
    let mut t = FlowTree::new(schema, CFG());
    for (k, p) in inserts {
        t.insert(k, *p);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pairwise structural merge ≡ element-wise reference, bytes and
    /// all.
    #[test]
    fn structural_merge_matches_elementwise(
        a in arb_inserts(),
        b in arb_inserts(),
    ) {
        let schema = Schema::five_feature();
        let (ta, tb) = (build(schema, &a), build(schema, &b));
        let mut structural = ta.clone();
        structural.merge(&tb).unwrap();
        structural.validate();
        let mut reference = ta.clone();
        reference.merge_elementwise(&tb).unwrap();
        prop_assert_eq!(structural.total(), reference.total());
        prop_assert_eq!(structural.encode(), reference.encode());
    }

    /// One k-way pass ≡ the sequential element-wise fold, regardless of
    /// how many trees and in any order.
    #[test]
    fn merge_many_matches_sequential_fold(
        batches in proptest::collection::vec(arb_inserts(), 0..6),
    ) {
        let schema = Schema::five_feature();
        let trees: Vec<FlowTree> = batches.iter().map(|b| build(schema, b)).collect();
        let refs: Vec<&FlowTree> = trees.iter().collect();

        let mut kway = FlowTree::new(schema, CFG());
        kway.merge_many(&refs).unwrap();
        kway.validate();

        let mut reference = FlowTree::new(schema, CFG());
        for t in &trees {
            reference.merge_elementwise(t).unwrap();
        }
        prop_assert_eq!(kway.total(), reference.total());
        prop_assert_eq!(kway.encode(), reference.encode());

        // Order independence: merging in reverse gives the same bytes.
        let mut rev = FlowTree::new(schema, CFG());
        let back: Vec<&FlowTree> = trees.iter().rev().collect();
        rev.merge_many(&back).unwrap();
        prop_assert_eq!(rev.encode(), kway.encode());
    }

    /// Diff trees — negative masses, zero-cancelled nodes, and (after a
    /// wire roundtrip) zero-mass pass-through nodes — merge identically
    /// through the structural and element-wise paths.
    #[test]
    fn diff_trees_merge_identically(
        a in arb_inserts(),
        b in arb_inserts(),
        base in arb_inserts(),
    ) {
        let schema = Schema::five_feature();
        let (ta, tb) = (build(schema, &a), build(schema, &b));
        // A raw diff, *without* pruning zero-mass leaves: roundtrip it
        // through the codec the way a delta summary ships, so the
        // merge input legitimately contains zero-mass nodes.
        let mut diff = ta.clone();
        diff.diff(&tb).unwrap();
        let diff = FlowTree::decode(&diff.encode(), CFG()).unwrap();

        let tbase = build(schema, &base);
        let mut structural = tbase.clone();
        structural.merge(&diff).unwrap();
        structural.validate();
        let mut reference = tbase.clone();
        reference.merge_elementwise(&diff).unwrap();
        prop_assert_eq!(structural.total(), reference.total());
        prop_assert_eq!(structural.encode(), reference.encode());
    }

    /// The wire encoding is canonical: any insertion order of the same
    /// mass multiset produces identical bytes, and `encoded_size`
    /// predicts them exactly.
    #[test]
    fn encoding_is_canonical_and_size_exact(
        inserts in arb_inserts(),
        seed in 0u64..u64::MAX,
    ) {
        let schema = Schema::five_feature();
        let forward = build(schema, &inserts);
        // A deterministic shuffle of the same inserts.
        let mut shuffled = inserts.clone();
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (s >> 33) as usize % (i + 1));
        }
        let other = build(schema, &shuffled);
        let bytes = forward.encode();
        prop_assert_eq!(&bytes, &other.encode());
        prop_assert_eq!(forward.encoded_size(), bytes.len());

        // And decoding those bytes re-derives the same canonical tree.
        let back = FlowTree::decode(&bytes, CFG()).unwrap();
        back.validate();
        prop_assert_eq!(back.encode(), bytes);
    }

    /// Structural diff ≡ the element-wise diff loop, bytes and all —
    /// overlapping keys cancel to zero and prune, disjoint keys appear
    /// with negative mass, either way the encodings must agree.
    #[test]
    fn structural_diff_matches_elementwise(
        a in arb_inserts(),
        b in arb_inserts(),
    ) {
        let schema = Schema::five_feature();
        let (ta, tb) = (build(schema, &a), build(schema, &b));
        let mut structural = ta.clone();
        structural.diff(&tb).unwrap();
        structural.validate();
        let mut reference = ta.clone();
        reference.diff_elementwise(&tb).unwrap();
        prop_assert_eq!(structural.total(), reference.total());
        prop_assert_eq!(structural.encode(), reference.encode());
    }

    /// One k-way diff pass ≡ the sequential element-wise fold (each
    /// step pruning its own zeros), regardless of how many subtrahends.
    #[test]
    fn diff_many_matches_sequential_elementwise_diffs(
        base in arb_inserts(),
        batches in proptest::collection::vec(arb_inserts(), 0..4),
    ) {
        let schema = Schema::five_feature();
        let tbase = build(schema, &base);
        let trees: Vec<FlowTree> = batches.iter().map(|b| build(schema, b)).collect();
        let refs: Vec<&FlowTree> = trees.iter().collect();

        let mut kway = tbase.clone();
        kway.diff_many(&refs).unwrap();
        kway.validate();

        let mut reference = tbase.clone();
        for t in &trees {
            reference.diff_elementwise(t).unwrap();
        }
        prop_assert_eq!(kway.total(), reference.total());
        prop_assert_eq!(kway.encode(), reference.encode());
    }

    /// A diff that subtracts the tree from itself cancels completely.
    #[test]
    fn self_diff_cancels(inserts in arb_inserts()) {
        let schema = Schema::five_feature();
        let t = build(schema, &inserts);
        let mut d = t.clone();
        d.diff(&t).unwrap();
        d.validate();
        prop_assert!(d.total().is_zero());
        // Nothing but the root survives the prune.
        prop_assert!(d.len() <= 1, "{} live nodes after self-diff", d.len());
    }

    /// Merging a tree into an empty one is a faithful copy (the k-way
    /// fold's first step), modulo zero-mass filtering the element-wise
    /// loop also applies.
    #[test]
    fn merge_into_empty_copies(inserts in arb_inserts()) {
        let schema = Schema::five_feature();
        let t = build(schema, &inserts);
        let mut out = FlowTree::new(schema, CFG());
        out.merge(&t).unwrap();
        out.validate();
        let mut reference = FlowTree::new(schema, CFG());
        reference.merge_elementwise(&t).unwrap();
        prop_assert_eq!(out.encode(), reference.encode());
    }
}

/// Estimates agree too (a consequence of byte identity, pinned once
/// explicitly for the query path's sake).
#[test]
fn merged_estimates_agree() {
    let schema = Schema::five_feature();
    let mk = |lo: u8, hi: u8| {
        let mut t = FlowTree::new(schema, Config::with_budget(100_000));
        for h in lo..hi {
            let k: FlowKey = format!(
                "src=10.0.{}.{}/32 dst=192.0.2.1/32 sport=40000 dport=443 proto=tcp",
                h % 4,
                h
            )
            .parse()
            .unwrap();
            t.insert(&k, Popularity::new(h as i64 + 1, 100, 1));
        }
        t
    };
    let (a, b, c) = (mk(0, 60), mk(30, 90), mk(45, 120));
    let mut kway = FlowTree::new(schema, Config::with_budget(100_000));
    kway.merge_many(&[&a, &b, &c]).unwrap();
    let mut reference = FlowTree::new(schema, Config::with_budget(100_000));
    for t in [&a, &b, &c] {
        reference.merge_elementwise(t).unwrap();
    }
    for pat in [
        "src=10.0.0.0/8",
        "src=10.0.2.0/24",
        "dst=192.0.2.0/24",
        "dport=443",
    ] {
        let p: FlowKey = pat.parse().unwrap();
        assert_eq!(
            kway.estimate_pattern(&p),
            reference.estimate_pattern(&p),
            "estimate for {pat}"
        );
    }
}

/// A k-way merge whose inputs dwarf the budget compacts **between**
/// sources: transient memory is bounded by the high-water mark plus
/// one source, not by the total input size, and mass is conserved.
#[test]
fn merge_many_compacts_at_the_high_water_mark_between_sources() {
    let schema = Schema::five_feature();
    let mk = |s: u8| {
        // Disjoint populations per source: every merge is pure growth.
        let mut t = FlowTree::new(schema, Config::with_budget(100_000));
        for h in 0..200u8 {
            let k: FlowKey = format!(
                "src=10.{s}.{}.{h}/32 dst=192.0.2.1/32 sport=40000 dport=443 proto=tcp",
                h % 4
            )
            .parse()
            .unwrap();
            t.insert(&k, Popularity::new(1, 100, 1));
        }
        t
    };
    let sources: Vec<FlowTree> = (0..16).map(mk).collect();
    let refs: Vec<&FlowTree> = sources.iter().collect();
    let total: Popularity = sources.iter().map(|t| t.total()).sum();

    let budget = 256usize;
    let mut bounded = FlowTree::new(schema, Config::with_budget(budget));
    bounded.merge_many(&refs).unwrap();
    bounded.validate();
    assert_eq!(bounded.total(), total, "compaction conserves mass");
    assert!(bounded.len() <= budget);
    // 16 × ~600 input nodes against a 1024-node high-water mark: the
    // pass must have compacted repeatedly *during* the fold, not once
    // at the end.
    let mid_pass_floor = (sources.len() * 600) / (budget * FlowTree::MERGE_HIGH_WATER_FACTOR) / 2;
    assert!(
        bounded.stats().compactions as usize >= mid_pass_floor.max(2),
        "{} compactions for a {}-source over-budget fold",
        bounded.stats().compactions,
        sources.len()
    );

    // Under the mark nothing changes: one no-compaction pass stays
    // byte-identical to the element-wise reference.
    let mut roomy = FlowTree::new(schema, Config::with_budget(100_000));
    roomy.merge_many(&refs).unwrap();
    let mut reference = FlowTree::new(schema, Config::with_budget(100_000));
    for t in &sources {
        reference.merge_elementwise(t).unwrap();
    }
    assert_eq!(roomy.encode(), reference.encode());
    assert_eq!(roomy.stats().compactions, 0);
}
