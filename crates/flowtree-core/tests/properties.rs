//! Property-based tests of Flowtree invariants under randomized
//! workloads: conservation, budget enforcement, merge/diff algebra,
//! query exactness, and codec round-trips.

use flowkey::{FlowKey, Schema};
use flowtree_core::{Config, Estimator, FlowTree, Popularity};
use proptest::prelude::*;
use std::collections::HashMap;

/// Keys drawn from a small universe so random sequences hit, nest, and
/// fork with realistic frequency.
fn arb_host_key() -> impl Strategy<Value = FlowKey> {
    (0u8..4, 0u8..8, 0u8..16, 0u8..2, 1u16..5).prop_map(|(a, b, c, d, port)| {
        format!(
            "src=10.{a}.{b}.{c}/32 dst=192.0.2.{d}/32 sport={} dport=443",
            40000 + port
        )
        .parse()
        .unwrap()
    })
}

/// Arbitrary chain keys (hosts generalized a few canonical steps) so the
/// tree also receives interior-mass inserts, like a merge would produce.
fn arb_any_key() -> impl Strategy<Value = FlowKey> {
    (arb_host_key(), 0u32..40).prop_map(|(k, up)| {
        let schema = Schema::four_feature();
        let depth = schema.depth(&k);
        schema.chain_ancestor(&k, depth.saturating_sub(up))
    })
}

fn arb_pop() -> impl Strategy<Value = Popularity> {
    (1i64..100, 1i64..5000).prop_map(|(p, b)| Popularity::new(p, b, 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mass is conserved through any insert sequence and any budget:
    /// the root's subtree sum equals the inserted total.
    #[test]
    fn conservation_under_compaction(
        inserts in proptest::collection::vec((arb_any_key(), arb_pop()), 1..400),
        budget in 16usize..128,
    ) {
        let mut tree = FlowTree::new(Schema::four_feature(), Config::with_budget(budget));
        let mut expect = Popularity::ZERO;
        for (k, p) in &inserts {
            tree.insert(k, *p);
            expect += *p;
            prop_assert!(tree.len() <= budget.max(Config::MIN_BUDGET));
        }
        tree.validate();
        prop_assert_eq!(tree.total(), expect);
        prop_assert_eq!(tree.subtree_popularity(&FlowKey::ROOT).unwrap(), expect);
        // Pattern query over everything must see the full mass.
        let est = tree.estimate_pattern(&FlowKey::ROOT);
        prop_assert!((est.packets - expect.packets as f64).abs() < 1e-6);
    }

    /// With an unbounded budget, tracked point queries equal an exact
    /// hash-map aggregation of the input.
    #[test]
    fn unbounded_tree_is_exact(
        inserts in proptest::collection::vec((arb_host_key(), arb_pop()), 1..300),
    ) {
        let mut tree = FlowTree::new(Schema::four_feature(), Config::with_budget(1_000_000));
        let mut truth: HashMap<FlowKey, Popularity> = HashMap::new();
        for (k, p) in &inserts {
            tree.insert(k, *p);
            *truth.entry(*k).or_insert(Popularity::ZERO) += *p;
        }
        tree.validate();
        for (k, expect) in &truth {
            let got = tree.popularity(k);
            prop_assert!(got.tracked, "{} must be retained", k);
            prop_assert!((got.est.packets - expect.packets as f64).abs() < 1e-9);
            prop_assert!((got.est.bytes - expect.bytes as f64).abs() < 1e-9);
        }
    }

    /// Merge adds totals exactly and, without eviction, adds per-key
    /// subtree sums exactly; diff inverts it.
    #[test]
    fn merge_diff_algebra(
        xs in proptest::collection::vec((arb_any_key(), arb_pop()), 1..150),
        ys in proptest::collection::vec((arb_any_key(), arb_pop()), 1..150),
    ) {
        let big = Config::with_budget(1_000_000);
        let mut a = FlowTree::new(Schema::four_feature(), big);
        for (k, p) in &xs { a.insert(k, *p); }
        let mut b = FlowTree::new(Schema::four_feature(), big);
        for (k, p) in &ys { b.insert(k, *p); }

        let merged = FlowTree::merged(&a, &b).unwrap();
        merged.validate();
        prop_assert_eq!(merged.total(), a.total() + b.total());
        // When both sides retain a key, the merged subtree sum must be
        // the exact sum of the two subtree sums.
        for v in a.iter() {
            if b.contains_key(v.key) {
                let expect = a.subtree_popularity(v.key).unwrap()
                    + b.subtree_popularity(v.key).unwrap();
                prop_assert_eq!(
                    merged.subtree_popularity(v.key),
                    Some(expect),
                    "merge sum at {}",
                    v.key
                );
            }
        }

        let mut back = merged.clone();
        back.diff(&b).unwrap();
        back.validate();
        prop_assert_eq!(back.total(), a.total());
        for v in a.iter() {
            prop_assert_eq!(
                back.subtree_popularity(v.key),
                a.subtree_popularity(v.key),
                "diff must restore {}", v.key
            );
        }
    }

    /// Self-diff cancels to nothing even for compacted trees.
    #[test]
    fn self_diff_cancels(
        inserts in proptest::collection::vec((arb_any_key(), arb_pop()), 1..200),
        budget in 20usize..200,
    ) {
        let mut a = FlowTree::new(Schema::four_feature(), Config::with_budget(budget));
        for (k, p) in &inserts { a.insert(k, *p); }
        let mut d = a.clone();
        d.diff(&a).unwrap();
        d.validate();
        prop_assert!(d.total().is_zero());
        prop_assert_eq!(d.len(), 1);
    }

    /// Estimator policies bracket each other on arbitrary patterns.
    #[test]
    fn estimators_are_ordered(
        inserts in proptest::collection::vec((arb_any_key(), arb_pop()), 1..200),
        pattern in arb_any_key(),
        budget in 16usize..96,
    ) {
        let mk = |est: Estimator| {
            let mut cfg = Config::with_budget(budget);
            cfg.estimator = est;
            let mut t = FlowTree::new(Schema::four_feature(), cfg);
            for (k, p) in &inserts { t.insert(k, *p); }
            t.estimate_pattern(&pattern).packets
        };
        let c = mk(Estimator::Conservative);
        let u = mk(Estimator::Uniform);
        let o = mk(Estimator::Optimistic);
        prop_assert!(c <= u + 1e-9, "conservative {c} > uniform {u}");
        prop_assert!(u <= o + 1e-9, "uniform {u} > optimistic {o}");
    }

    /// The wire codec round-trips arbitrary (even diffed) trees exactly.
    #[test]
    fn codec_roundtrip(
        xs in proptest::collection::vec((arb_any_key(), arb_pop()), 1..150),
        ys in proptest::collection::vec((arb_any_key(), arb_pop()), 0..100),
        budget in 24usize..200,
    ) {
        let mut a = FlowTree::new(Schema::four_feature(), Config::with_budget(budget));
        for (k, p) in &xs { a.insert(k, *p); }
        if !ys.is_empty() {
            // Mix in negative masses via diff to stress the signed path.
            let mut b = FlowTree::new(Schema::four_feature(), Config::with_budget(budget));
            for (k, p) in &ys { b.insert(k, *p); }
            a.diff(&b).unwrap();
        }
        let bytes = a.encode();
        let back = FlowTree::decode(&bytes, Config::with_budget(budget)).unwrap();
        back.validate();
        prop_assert_eq!(back.len(), a.len());
        prop_assert_eq!(back.total(), a.total());
        for v in a.iter() {
            prop_assert_eq!(back.comp_of(v.key), Some(v.comp), "at {}", v.key);
        }
    }

    /// Tracked answers never lose mass relative to what remains under a
    /// key after compaction (folding moves mass upward, never below).
    #[test]
    fn folding_moves_mass_upward_only(
        inserts in proptest::collection::vec((arb_host_key(), arb_pop()), 1..300),
        budget in 16usize..64,
    ) {
        let mut small = FlowTree::new(Schema::four_feature(), Config::with_budget(budget));
        let mut exact = FlowTree::new(Schema::four_feature(), Config::with_budget(1_000_000));
        for (k, p) in &inserts {
            small.insert(k, *p);
            exact.insert(k, *p);
        }
        // Every key still retained in the compacted tree reports at most
        // the exact subtree mass (mass can only have been folded *into*
        // it from below, which stays inside the subtree, or folded out
        // to an ancestor — never conjured).
        for v in small.iter() {
            let got = small.subtree_popularity(v.key).unwrap();
            // All mass in `exact` sits at fully-specified host keys, so
            // its pattern estimate is the exact ground truth.
            let truth = exact.estimate_pattern(v.key).packets;
            prop_assert!(
                got.packets as f64 <= truth + 1e-6,
                "{}: compacted {} > exact {}", v.key, got.packets, truth
            );
        }
    }
}
