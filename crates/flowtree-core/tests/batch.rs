//! Regression tests for the batch and pre-hashed insert entry points:
//! they must be observationally identical to repeated `insert`.

use flowkey::{FlowKey, Schema};
use flowtree_core::{Config, FlowTree, Popularity};
use proptest::prelude::*;

/// Sorted `(key, comp, parent)` content snapshot — structure and
/// masses, independent of arena layout.
fn masses(tree: &FlowTree) -> Vec<(FlowKey, Popularity, Option<FlowKey>)> {
    let mut out: Vec<_> = tree
        .iter()
        .map(|v| (*v.key, v.comp, v.parent.copied()))
        .collect();
    out.sort_by_key(|(k, _, _)| *k);
    out
}

fn arb_host_key() -> impl Strategy<Value = FlowKey> {
    (0u8..4, 0u8..8, 0u8..32, 0u8..2, 1u16..6).prop_map(|(a, b, c, d, port)| {
        format!(
            "src=10.{a}.{b}.{c}/32 dst=192.0.2.{d}/32 sport={} dport=443",
            40000 + port
        )
        .parse()
        .unwrap()
    })
}

fn arb_any_key() -> impl Strategy<Value = FlowKey> {
    (arb_host_key(), 0u32..40).prop_map(|(k, up)| {
        let schema = Schema::four_feature();
        let depth = schema.depth(&k);
        schema.chain_ancestor(&k, depth.saturating_sub(up))
    })
}

fn arb_pop() -> impl Strategy<Value = Popularity> {
    (1i64..100, 1i64..5000).prop_map(|(p, b)| Popularity::new(p, b, 1))
}

proptest! {
    /// Without compaction in play, `insert_batch` produces exactly the
    /// tree of repeated `insert`: same node set, same parents, same
    /// complementary masses (the retained set is closed under pairwise
    /// chain joins, which is insertion-order independent).
    #[test]
    fn insert_batch_matches_repeated_insert_exactly(
        inserts in proptest::collection::vec((arb_any_key(), arb_pop()), 1..300),
    ) {
        let schema = Schema::four_feature();
        let cfg = Config::with_budget(1_000_000);
        let mut one_by_one = FlowTree::new(schema, cfg);
        for (k, p) in &inserts {
            one_by_one.insert(k, *p);
        }
        let mut batched = FlowTree::new(schema, cfg);
        batched.insert_batch(&inserts);
        batched.validate();
        prop_assert_eq!(batched.total(), one_by_one.total());
        prop_assert_eq!(masses(&batched), masses(&one_by_one));
    }

    /// Under budget pressure the batch path may compact at different
    /// points, but mass conservation, the budget bound, and structural
    /// invariants all still hold.
    #[test]
    fn insert_batch_under_pressure_conserves(
        inserts in proptest::collection::vec((arb_any_key(), arb_pop()), 1..400),
        budget in 16usize..96,
    ) {
        let schema = Schema::four_feature();
        let mut batched = FlowTree::new(schema, Config::with_budget(budget));
        batched.insert_batch(&inserts);
        batched.validate();
        let expect = inserts
            .iter()
            .fold(Popularity::ZERO, |acc, (_, p)| acc + *p);
        prop_assert_eq!(batched.total(), expect);
        prop_assert!(batched.len() <= budget.max(Config::MIN_BUDGET));
    }

    /// The optimized miss path (linear-prefix probes + root descent)
    /// and the linear re-hashing reference path (`insert_seed_path`)
    /// build identical trees insert-for-insert, while the optimized
    /// path performs no more index probes.
    #[test]
    fn fast_path_matches_seed_path(
        inserts in proptest::collection::vec((arb_any_key(), arb_pop()), 1..300),
        budget in 32usize..256,
    ) {
        let schema = Schema::four_feature();
        let mut fast = FlowTree::new(schema, Config::with_budget(budget));
        let mut reference = FlowTree::new(schema, Config::with_budget(budget));
        for (k, p) in &inserts {
            fast.insert(k, *p);
            reference.insert_seed_path(k, *p);
        }
        fast.validate();
        reference.validate();
        prop_assert_eq!(masses(&fast), masses(&reference));
        prop_assert!(
            fast.stats().chain_steps <= reference.stats().chain_steps,
            "prefix probes {} must not exceed linear-walk probes {}",
            fast.stats().chain_steps,
            reference.stats().chain_steps
        );
    }
}

#[test]
fn prehashed_entry_points_agree_with_insert() {
    let schema = Schema::five_feature();
    let keys: Vec<(FlowKey, Popularity)> = (0..500)
        .map(|i| {
            let k: FlowKey = format!(
                "src=10.0.{}.{}/32 dst=192.0.2.1/32 sport=4000 dport=53 proto=udp",
                i % 7,
                i % 253
            )
            .parse()
            .unwrap();
            (k, Popularity::packet(64 + (i as u32 % 1400)))
        })
        .collect();

    let mut plain = FlowTree::new(schema, Config::with_budget(4096));
    for (k, p) in &keys {
        plain.insert(k, *p);
    }

    let mut prehashed = FlowTree::new(schema, Config::with_budget(4096));
    for (k, p) in &keys {
        let ck = schema.canonicalize(k);
        prehashed.insert_prehashed(ck, flowkey::key_hash(&ck), *p);
    }
    prehashed.validate();
    assert_eq!(masses(&prehashed), masses(&plain));

    let mut items: Vec<(u64, FlowKey, Popularity)> = keys
        .iter()
        .map(|(k, p)| {
            let ck = schema.canonicalize(k);
            (flowkey::key_hash(&ck), ck, *p)
        })
        .collect();
    let mut batched = FlowTree::new(schema, Config::with_budget(4096));
    batched.insert_batch_prehashed(&mut items);
    batched.validate();
    assert_eq!(masses(&batched), masses(&plain));
}
