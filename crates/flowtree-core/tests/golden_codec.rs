//! Golden test pinning the wire format.
//!
//! Sites exchange encoded summaries, so the byte format is a protocol:
//! if this test fails, the format changed and `codec::VERSION` must be
//! bumped (old summaries become unreadable by honest version refusal,
//! not by silent misdecoding).

use flowkey::Schema;
use flowtree_core::{Config, FlowTree, Popularity};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn encoded_bytes_are_stable() {
    let mut tree = FlowTree::new(Schema::one_feature_src(), Config::with_budget(64));
    tree.insert(
        &"src=1.1.1.12/30".parse().unwrap(),
        Popularity::new(2, 120, 1),
    );
    tree.insert(
        &"src=1.1.1.20/30".parse().unwrap(),
        Popularity::new(6, 360, 2),
    );
    let bytes = tree.encode();
    // magic "FTR1", version 1, schema 0 (Src1), count 4 (root + join +
    // two leaves), then pre-order nodes with packed keys and zigzag
    // varint counters.
    assert_eq!(
        hex(&bytes),
        "46545231010004000000000000011b0101010000000001011e0101010c04f001\
         0201011e010101140cd00504",
        "wire format drifted — bump flowtree_core::VERSION"
    );
    // And of course it still decodes to the same tree.
    let back = FlowTree::decode(&bytes, Config::with_budget(64)).unwrap();
    assert_eq!(back.total(), Popularity::new(8, 480, 3));
    assert_eq!(back.len(), 4);
}

#[test]
fn header_prefix_is_the_documented_magic() {
    let tree = FlowTree::new(Schema::five_feature(), Config::with_budget(64));
    let bytes = tree.encode();
    assert_eq!(&bytes[..4], b"FTR1");
    assert_eq!(bytes[4], flowtree_core::VERSION);
}
