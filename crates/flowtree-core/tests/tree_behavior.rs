//! Behavioral tests of the Flowtree data structure: insertion paths,
//! self-adjustment, operators, and queries on hand-computable scenarios.

use flowkey::{FlowKey, Schema};
use flowtree_core::{Config, Estimator, EvictionPolicy, FlowTree, Metric, Popularity};

fn key(s: &str) -> FlowKey {
    s.parse().unwrap()
}

fn pkts(n: i64) -> Popularity {
    Popularity::new(n, n * 1000, 0)
}

// ---------------------------------------------------------------------
// Insertion structure
// ---------------------------------------------------------------------

#[test]
fn first_insert_hangs_off_root() {
    let mut t = FlowTree::new(Schema::one_feature_src(), Config::with_budget(64));
    t.insert(&key("src=1.1.1.1/32"), pkts(5));
    t.validate();
    assert_eq!(t.len(), 2);
    let children = t.children_of(&FlowKey::ROOT).unwrap();
    assert_eq!(children.len(), 1);
    assert_eq!(children[0].key, &key("src=1.1.1.1/32"));
}

#[test]
fn duplicate_insert_increments_in_place() {
    let mut t = FlowTree::new(Schema::one_feature_src(), Config::with_budget(64));
    t.insert(&key("src=1.1.1.1/32"), pkts(5));
    t.insert(&key("src=1.1.1.1/32"), pkts(7));
    t.validate();
    assert_eq!(t.len(), 2);
    assert_eq!(t.comp_of(&key("src=1.1.1.1/32")), Some(pkts(12)));
    assert_eq!(t.stats().hits, 1);
    assert_eq!(t.stats().misses, 1);
}

#[test]
fn diverging_keys_create_a_join_node() {
    let mut t = FlowTree::new(Schema::one_feature_src(), Config::with_budget(64));
    // Fig. 2a flavor: two /32s inside 1.1.1.0/27 fork below the root.
    t.insert(&key("src=1.1.1.12/32"), pkts(2));
    t.insert(&key("src=1.1.1.20/32"), pkts(6));
    t.validate();
    // root + join(1.1.1.0/27) + two leaves.
    assert_eq!(t.len(), 4);
    assert!(t.contains_key(&key("src=1.1.1.0/27")));
    assert_eq!(t.comp_of(&key("src=1.1.1.0/27")), Some(Popularity::ZERO));
    assert_eq!(t.stats().joins_created, 1);
    let children = t.children_of(&key("src=1.1.1.0/27")).unwrap();
    assert_eq!(children.len(), 2);
}

#[test]
fn inserting_a_chain_ancestor_splices_between() {
    let mut t = FlowTree::new(Schema::one_feature_src(), Config::with_budget(64));
    t.insert(&key("src=1.1.1.1/32"), pkts(3));
    // /24 lies on the /32's canonical chain, between root and leaf.
    t.insert(&key("src=1.1.1.0/24"), pkts(10));
    t.validate();
    assert_eq!(t.len(), 3);
    let mid = t.children_of(&FlowKey::ROOT).unwrap();
    assert_eq!(mid.len(), 1);
    assert_eq!(mid[0].key, &key("src=1.1.1.0/24"));
    let deep = t.children_of(&key("src=1.1.1.0/24")).unwrap();
    assert_eq!(deep.len(), 1);
    assert_eq!(deep[0].key, &key("src=1.1.1.1/32"));
}

#[test]
fn inserting_descendant_lands_under_existing_ancestor() {
    let mut t = FlowTree::new(Schema::one_feature_src(), Config::with_budget(64));
    t.insert(&key("src=1.1.1.0/24"), pkts(10));
    t.insert(&key("src=1.1.1.1/32"), pkts(3));
    t.validate();
    assert_eq!(t.len(), 3);
    let deep = t.children_of(&key("src=1.1.1.0/24")).unwrap();
    assert_eq!(deep.len(), 1);
    assert_eq!(deep[0].key, &key("src=1.1.1.1/32"));
}

#[test]
fn fig2a_example_structure() {
    // Build something shaped like the paper's Fig. 2a: traffic in two
    // /30s under 1.1.1.0/24 plus bulk /24 and /8 traffic.
    let mut t = FlowTree::new(Schema::one_feature_src(), Config::with_budget(64));
    t.insert(&key("src=1.1.1.12/30"), pkts(2));
    t.insert(&key("src=1.1.1.20/30"), pkts(6));
    t.insert(&key("src=1.1.1.0/24"), pkts(4179));
    t.insert(&key("src=1.0.0.0/8"), pkts(1_995_813));
    t.validate();
    // /24's subtree popularity = 4179 + 2 + 6 = 4187 as in the figure.
    assert_eq!(
        t.subtree_popularity(&key("src=1.1.1.0/24")).unwrap(),
        pkts(4187)
    );
    // /8 subtree = 2,000,000.
    assert_eq!(
        t.subtree_popularity(&key("src=1.0.0.0/8")).unwrap(),
        pkts(2_000_000)
    );
    // Total conserved at the root.
    assert_eq!(t.subtree_popularity(&FlowKey::ROOT).unwrap(), t.total());
}

#[test]
fn multi_feature_inserts_validate() {
    let mut t = FlowTree::new(Schema::five_feature(), Config::with_budget(256));
    for i in 0..64u32 {
        let k = key(&format!(
            "src=10.{}.{}.{}/32 dst=192.0.2.{}/32 sport={} dport={} proto={}",
            i % 4,
            i % 8,
            i,
            i % 16,
            40000 + i,
            if i % 2 == 0 { 80 } else { 443 },
            if i % 3 == 0 { "tcp" } else { "udp" },
        ));
        t.insert(&k, pkts(1 + i as i64));
    }
    t.validate();
    assert!(t.len() <= 256);
    assert_eq!(t.total(), (0..64).map(|i| pkts(1 + i as i64)).sum());
}

// ---------------------------------------------------------------------
// Self-adjustment (compaction)
// ---------------------------------------------------------------------

#[test]
fn budget_is_enforced_and_mass_conserved() {
    let cfg = Config::with_budget(64);
    let mut t = FlowTree::new(Schema::one_feature_src(), cfg);
    let mut expect = Popularity::ZERO;
    for i in 0..10_000u32 {
        let k = key(&format!(
            "src={}.{}.{}.{}/32",
            10 + (i % 4),
            i / 251 % 251,
            i % 251,
            i % 13
        ));
        let p = pkts(1 + (i % 7) as i64);
        expect += p;
        t.insert(&k, p);
        assert!(t.len() <= 64, "budget exceeded at insert {i}");
    }
    t.validate();
    assert_eq!(t.total(), expect);
    assert_eq!(t.subtree_popularity(&FlowKey::ROOT).unwrap(), expect);
    assert!(t.stats().compactions > 0);
    assert!(t.stats().evictions > 0);
}

#[test]
fn compaction_keeps_the_popular_evicts_the_unpopular() {
    let mut t = FlowTree::new(Schema::one_feature_src(), Config::with_budget(32));
    let heavy = key("src=9.9.9.9/32");
    t.insert(&heavy, pkts(1_000_000));
    for i in 0..2000u32 {
        let k = key(&format!("src=10.0.{}.{}/32", i / 250, i % 250));
        t.insert(&k, pkts(1));
    }
    t.validate();
    assert!(
        t.contains_key(&heavy),
        "the heavy hitter must survive compaction"
    );
    // Its count must be fully intact (never folded).
    assert!(t.comp_of(&heavy).unwrap().packets == 1_000_000);
}

#[test]
fn eviction_folds_counts_into_parents_not_away() {
    let mut t = FlowTree::new(Schema::one_feature_src(), Config::with_budget(20));
    // 100 singletons inside one /24: they must collapse into ancestors
    // that keep the aggregate count queryable.
    for i in 0..100u32 {
        t.insert(&key(&format!("src=1.1.1.{i}/32")), pkts(1));
    }
    t.validate();
    assert!(t.len() <= 20);
    let agg = t.estimate_pattern(&key("src=1.1.1.0/24"));
    assert!(
        agg.packets >= 99.0,
        "aggregate under /24 must be preserved, got {}",
        agg.packets
    );
}

#[test]
fn cold_first_policy_prefers_stale_leaves() {
    let mut cfg = Config::with_budget(24);
    cfg.eviction = EvictionPolicy::ColdFirst;
    let mut t = FlowTree::new(Schema::one_feature_src(), cfg);
    let old = key("src=1.2.3.4/32");
    t.insert(&old, pkts(50)); // popular but stale
    let fresh = key("src=7.7.7.7/32");
    for i in 0..500u32 {
        t.insert(
            &key(&format!("src=10.8.{}.{}/32", i / 200, i % 200)),
            pkts(1),
        );
        t.insert(&fresh, pkts(1)); // constantly refreshed
    }
    t.validate();
    assert!(
        t.contains_key(&fresh),
        "constantly-touched key must survive ColdFirst"
    );
    assert!(
        !t.contains_key(&old),
        "stale key should be evicted by ColdFirst despite popularity"
    );
}

#[test]
fn smallest_first_keeps_stale_heavy_hitters() {
    let mut t = FlowTree::new(
        Schema::one_feature_src(),
        Config::with_budget(24), // default SmallestFirst
    );
    let old = key("src=1.2.3.4/32");
    t.insert(&old, pkts(5000)); // popular but stale
    for i in 0..500u32 {
        t.insert(
            &key(&format!("src=10.8.{}.{}/32", i / 200, i % 200)),
            pkts(1),
        );
    }
    t.validate();
    assert!(t.contains_key(&old), "heavy hitters survive SmallestFirst");
}

// ---------------------------------------------------------------------
// Merge / diff operators
// ---------------------------------------------------------------------

fn build_site(seed: u32, n: u32, budget: usize) -> FlowTree {
    let mut t = FlowTree::new(Schema::two_feature(), Config::with_budget(budget));
    for i in 0..n {
        let v = seed
            .wrapping_mul(2654435761)
            .wrapping_add(i.wrapping_mul(2654435761));
        let k = key(&format!(
            "src=10.{}.{}.{}/32 dst=198.51.{}.{}/32",
            v % 8,
            (v >> 8) % 64,
            (v >> 16) % 251,
            (v >> 4) % 4,
            (v >> 12) % 251,
        ));
        t.insert(&k, pkts(1 + (v % 11) as i64));
    }
    t
}

#[test]
fn merge_totals_add_exactly() {
    let a = build_site(1, 3000, 512);
    let b = build_site(2, 3000, 512);
    let merged = FlowTree::merged(&a, &b).unwrap();
    merged.validate();
    assert_eq!(merged.total(), a.total() + b.total());
    assert!(merged.len() <= 512);
}

#[test]
fn merge_is_commutative_on_totals_and_queries() {
    let a = build_site(3, 1000, 4096); // generous budget: no eviction noise
    let b = build_site(4, 1000, 4096);
    let ab = FlowTree::merged(&a, &b).unwrap();
    let ba = FlowTree::merged(&b, &a).unwrap();
    assert_eq!(ab.total(), ba.total());
    for pat in ["src=10.0.0.0/8", "dst=198.51.0.0/16", "src=10.4.0.0/16"] {
        let p = key(pat);
        let x = ab.popularity(&p).est.packets;
        let y = ba.popularity(&p).est.packets;
        assert!((x - y).abs() < 1e-6, "{pat}: {x} vs {y}");
    }
}

#[test]
fn diff_inverts_merge_without_eviction() {
    let a = build_site(5, 800, 100_000);
    let b = build_site(6, 800, 100_000);
    let mut m = FlowTree::merged(&a, &b).unwrap();
    m.diff(&b).unwrap();
    m.validate();
    assert_eq!(m.total(), a.total());
    // Every key retained by `a` must answer identically.
    for v in a.iter() {
        let expect = a.subtree_popularity(v.key).unwrap();
        let got = m.subtree_popularity(v.key);
        assert_eq!(got, Some(expect), "at {}", v.key);
    }
}

#[test]
fn diff_of_identical_trees_is_empty() {
    let a = build_site(7, 500, 4096);
    let mut d = a.clone();
    d.diff(&a).unwrap();
    d.validate();
    assert!(d.total().is_zero());
    assert_eq!(d.len(), 1, "only the root remains after full cancellation");
}

#[test]
fn diff_detects_change_between_windows() {
    let mut w1 = build_site(8, 400, 4096);
    let w2 = build_site(8, 400, 4096); // identical baseline …
    let attack = key("src=6.6.6.6/32 dst=198.51.0.1/32");
    w1.insert(&attack, pkts(10_000)); // … plus a spike in w1
    let d = FlowTree::diffed(&w1, &w2).unwrap();
    assert_eq!(d.total(), pkts(10_000));
    assert_eq!(d.comp_of(&attack), Some(pkts(10_000)));
}

#[test]
fn merge_rejects_schema_mismatch() {
    let a = FlowTree::new(Schema::two_feature(), Config::with_budget(64));
    let b = FlowTree::new(Schema::five_feature(), Config::with_budget(64));
    let mut a2 = a.clone();
    assert!(a2.merge(&b).is_err());
    assert!(a2.diff(&b).is_err());
}

#[test]
fn merging_many_sites_equals_single_tree_when_unbounded() {
    // With no eviction, merging per-site trees must equal the tree built
    // from the concatenated trace — the distributed-summarization
    // correctness property.
    let whole = {
        let mut t = FlowTree::new(Schema::two_feature(), Config::with_budget(100_000));
        for seed in 10..15 {
            let site = build_site(seed, 500, 100_000);
            for v in site.iter() {
                if !v.comp.is_zero() {
                    t.insert(v.key, v.comp);
                }
            }
        }
        t
    };
    let mut merged = FlowTree::new(Schema::two_feature(), Config::with_budget(100_000));
    for seed in 10..15 {
        merged.merge(&build_site(seed, 500, 100_000)).unwrap();
    }
    merged.validate();
    assert_eq!(merged.total(), whole.total());
    for v in whole.iter() {
        assert_eq!(
            merged.subtree_popularity(v.key),
            whole.subtree_popularity(v.key),
            "at {}",
            v.key
        );
    }
}

// ---------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------

#[test]
fn tracked_query_is_exact() {
    let mut t = FlowTree::new(Schema::two_feature(), Config::with_budget(4096));
    t.insert(&key("src=10.0.0.1/32 dst=192.0.2.1/32"), pkts(5));
    t.insert(&key("src=10.0.0.2/32 dst=192.0.2.1/32"), pkts(9));
    let a = t.popularity(&key("src=10.0.0.1/32 dst=192.0.2.1/32"));
    assert!(a.tracked);
    assert_eq!(a.est.packets, 5.0);
}

#[test]
fn pattern_query_sums_contained_subtrees() {
    let mut t = FlowTree::new(Schema::two_feature(), Config::with_budget(4096));
    t.insert(&key("src=10.0.0.1/32 dst=192.0.2.1/32"), pkts(5));
    t.insert(&key("src=10.0.0.2/32 dst=192.0.2.9/32"), pkts(9));
    t.insert(&key("src=172.16.0.1/32 dst=192.0.2.1/32"), pkts(100));
    // Off-chain pattern: src 10/8 only.
    let est = t.estimate_pattern(&key("src=10.0.0.0/8"));
    assert_eq!(est.packets, 14.0);
    // And dst-side.
    let est = t.estimate_pattern(&key("dst=192.0.2.1/32"));
    assert_eq!(est.packets, 105.0);
}

#[test]
fn estimator_policies_bracket_the_truth() {
    // Mass is folded to an ancestor; querying a descendant must give
    // Conservative ≤ Uniform ≤ Optimistic, with Conservative = 0 and
    // Optimistic = the entire residual.
    let mk = |est: Estimator| {
        let mut cfg = Config::with_budget(4096);
        cfg.estimator = est;
        let mut t = FlowTree::new(Schema::one_feature_src(), cfg);
        t.insert(&key("src=10.0.0.0/24"), pkts(64));
        t
    };
    let q = key("src=10.0.0.1/32");
    let c = mk(Estimator::Conservative).popularity(&q).est.packets;
    let u = mk(Estimator::Uniform).popularity(&q).est.packets;
    let o = mk(Estimator::Optimistic).popularity(&q).est.packets;
    assert_eq!(c, 0.0);
    assert_eq!(o, 64.0);
    assert!(c <= u && u <= o);
    // Uniform: /24 → /32 is 8 levels ⇒ 64 / 2^8 = 0.25.
    assert!((u - 0.25).abs() < 1e-9, "uniform share was {u}");
}

#[test]
fn top_k_matches_brute_force() {
    let mut t = FlowTree::new(Schema::one_feature_src(), Config::with_budget(4096));
    for i in 0..200u32 {
        t.insert(
            &key(&format!("src=10.1.{}.{}/32", i / 100, i % 100)),
            pkts(i as i64 + 1),
        );
    }
    let top = t.top_k(5, Metric::Packets);
    assert_eq!(top.len(), 5);
    // Brute force: subtree popularity of every retained node.
    let mut brute: Vec<(FlowKey, i64)> = t
        .iter()
        .filter(|v| !v.key.is_root())
        .map(|v| (*v.key, t.subtree_popularity(v.key).unwrap().packets))
        .collect();
    brute.sort_by_key(|(_, p)| std::cmp::Reverse(*p));
    assert_eq!(top[0].1.packets, brute[0].1);
    let top_set: std::collections::HashSet<i64> = top.iter().map(|(_, p)| p.packets).collect();
    let brute_set: std::collections::HashSet<i64> = brute[..5].iter().map(|(_, p)| *p).collect();
    assert_eq!(top_set, brute_set);
}

#[test]
fn hhh_finds_exactly_the_heavy_prefixes() {
    let mut t = FlowTree::new(Schema::one_feature_src(), Config::with_budget(4096));
    // 900 packets spread thinly over 9 /32s in 10.0.0.0/24 (100 each),
    // plus one genuinely heavy host at 60.
    for i in 0..9u32 {
        t.insert(&key(&format!("src=10.0.0.{i}/32")), pkts(100));
    }
    t.insert(&key("src=60.0.0.1/32"), pkts(600));
    // Total 1500. phi=0.3 ⇒ threshold 450: the individual /32s at 100
    // are too small, but their common ancestor accumulates 900.
    let hhh = t.hhh(0.3, Metric::Packets);
    let keys: Vec<String> = hhh.iter().map(|h| h.key.to_string()).collect();
    assert!(
        keys.iter().any(|k| k.contains("60.0.0.1/32")),
        "heavy host found: {keys:?}"
    );
    assert!(
        keys.iter()
            .any(|k| k.contains("10.0.0.0/29") || k.contains("10.0.0.0/28")),
        "aggregated prefix found: {keys:?}"
    );
    // No /32 of the thin group qualifies on its own.
    assert!(
        !keys.iter().any(|k| k.contains("10.0.0.3/32")),
        "thin hosts must be covered by their ancestor: {keys:?}"
    );
}

#[test]
fn query_cost_is_bounded_by_tree_not_trace() {
    // The paper: queries are answered in time proportional to the tree
    // nodes. Sanity-check the implementation by keeping the budget tiny
    // while the trace is large — estimate_pattern must still work.
    let mut t = FlowTree::new(Schema::one_feature_src(), Config::with_budget(32));
    for i in 0..20_000u32 {
        t.insert(
            &key(&format!(
                "src=10.{}.{}.{}/32",
                i % 16,
                (i / 16) % 251,
                i % 251
            )),
            pkts(1),
        );
    }
    let est = t.estimate_pattern(&key("src=10.0.0.0/8"));
    assert!((est.packets - 20_000.0).abs() < 1.0);
}

// ---------------------------------------------------------------------
// Stats / amortized updates
// ---------------------------------------------------------------------

#[test]
fn mean_chain_steps_stays_small() {
    let mut t = FlowTree::new(Schema::five_feature(), Config::paper());
    for i in 0..50_000u32 {
        let k = key(&format!(
            "src=10.{}.{}.{}/32 dst=192.0.2.{}/32 sport={} dport=443 proto=tcp",
            i % 4,
            (i / 7) % 256,
            i % 256,
            i % 32,
            1024 + (i % 40000)
        ));
        t.insert(&k, pkts(1));
    }
    let mean = t.stats().mean_chain_steps();
    assert!(
        mean < 40.0,
        "expected amortized-constant chain walking, got mean {mean:.1}"
    );
}

#[test]
fn nodes_under_lists_the_subforest() {
    let mut t = FlowTree::new(Schema::two_feature(), Config::with_budget(4096));
    t.insert(&key("src=10.0.0.1/32 dst=192.0.2.1/32"), pkts(5));
    t.insert(&key("src=10.0.0.2/32 dst=192.0.2.1/32"), pkts(9));
    t.insert(&key("src=172.16.0.1/32 dst=192.0.2.1/32"), pkts(100));
    let rows = t.nodes_under(&key("src=10.0.0.0/8"), flowtree_core::Metric::Packets);
    assert!(!rows.is_empty());
    // Every row is inside the pattern and sorted by popularity.
    for (k, _) in &rows {
        assert!(key("src=10.0.0.0/8").contains(k), "{k}");
    }
    assert!(rows.windows(2).all(|w| w[0].1.packets >= w[1].1.packets));
    // The top row accounts for the whole 10/8 subforest.
    assert_eq!(rows[0].1.packets, 14);
    // The outside host never appears.
    assert!(rows.iter().all(|(k, _)| !k.to_string().contains("172.16")));
    // Root pattern lists everything including the root.
    let all = t.nodes_under(&FlowKey::ROOT, flowtree_core::Metric::Packets);
    assert_eq!(all.len(), t.len());
    assert_eq!(all[0].1, t.total());
}
