//! Coverage for the hierarchies beyond plain IPv4 5-tuples: IPv6 flows,
//! mixed-family traffic, and the extended schema with time and site
//! features (the paper's future-work system).

use flowkey::{FlowKey, Schema, Site, TimeBucket};
use flowtree_core::{Config, FlowTree, Popularity};

fn key(s: &str) -> FlowKey {
    s.parse().unwrap()
}

fn pkts(n: i64) -> Popularity {
    Popularity::new(n, n * 100, 1)
}

#[test]
fn ipv6_flows_build_and_query() {
    let mut t = FlowTree::new(Schema::two_feature(), Config::with_budget(1_024));
    for i in 0..64u32 {
        let k = key(&format!(
            "src=2001:db8:{:x}::{:x}/128 dst=2001:db8:ffff::1/128",
            i % 8,
            i
        ));
        t.insert(&k, pkts(1 + i as i64));
    }
    t.validate();
    let est = t.estimate_pattern(&key("src=2001:db8::/32"));
    let total: i64 = (1..=64).sum();
    assert!((est.packets - total as f64).abs() < 1e-6, "{}", est.packets);
    // Sub-prefix drill-down.
    let sub = t.estimate_pattern(&key("src=2001:db8:1::/48"));
    assert!(sub.packets > 0.0 && sub.packets < total as f64);
}

#[test]
fn mixed_v4_v6_traffic_coexists() {
    let mut t = FlowTree::new(Schema::two_feature(), Config::with_budget(2_048));
    for i in 0..32u32 {
        t.insert(
            &key(&format!("src=10.0.0.{i}/32 dst=192.0.2.1/32")),
            pkts(2),
        );
        t.insert(
            &key(&format!("src=2001:db8::{:x}/128 dst=2001:db8::ffff/128", i)),
            pkts(3),
        );
    }
    t.validate();
    assert_eq!(t.total().packets, 32 * 5);
    // Families answer separately.
    assert!((t.estimate_pattern(&key("src=10.0.0.0/8")).packets - 64.0).abs() < 1e-6);
    assert!((t.estimate_pattern(&key("src=2001:db8::/32")).packets - 96.0).abs() < 1e-6);
    // And cross-family compaction keeps both under the root.
    let mut tight = FlowTree::new(Schema::two_feature(), Config::with_budget(24));
    for v in t.iter() {
        if !v.comp.is_zero() {
            tight.insert(v.key, v.comp);
        }
    }
    tight.validate();
    assert_eq!(tight.total().packets, 32 * 5);
}

#[test]
fn extended_schema_with_time_and_site() {
    let schema = Schema::extended();
    let mut t = FlowTree::new(schema, Config::with_budget(8_192));
    // Two sites, four hours, one flow per (site, hour).
    for site in 0..2u16 {
        for hour in 0..4u64 {
            let base = 1_700_000_000u64 + hour * 3_600;
            let k = FlowKey::five_tuple(
                "10.0.0.1/32".parse().unwrap(),
                "192.0.2.9/32".parse().unwrap(),
                40_000,
                443,
                6,
            )
            .with_time(TimeBucket::new(base, 0).unwrap())
            .with_site(Site::Is(site));
            t.insert(&k, pkts(10));
        }
    }
    t.validate();
    assert_eq!(t.total().packets, 80);
    // Drill by site.
    assert!((t.estimate_pattern(&key("site=0")).packets - 40.0).abs() < 1e-6);
    assert!((t.estimate_pattern(&key("site=r0")).packets - 80.0).abs() < 1e-6);
    // Drill by time: the first two hours.
    let first_two = FlowKey::ROOT.with_time(
        TimeBucket::new(1_700_000_000, 0)
            .unwrap()
            .ancestor_at(TimeBucket::MAX_LEVEL as u16 - 13)
            .unwrap(),
    );
    let est = t.estimate_pattern(&first_two);
    assert!(
        est.packets >= 20.0 && est.packets <= 80.0,
        "time bucket share: {}",
        est.packets
    );
    // Combined: site 1 AND the host prefix.
    let combo = key("src=10.0.0.0/24 site=1");
    assert!((t.estimate_pattern(&combo).packets - 40.0).abs() < 1e-6);
}

#[test]
fn extended_merge_across_sites() {
    let schema = Schema::extended();
    let mk = |site: u16| {
        let mut t = FlowTree::new(schema, Config::with_budget(4_096));
        for h in 0..8u8 {
            let k = FlowKey::five_tuple(
                format!("10.{}.0.{h}/32", site % 200).parse().unwrap(),
                "198.51.100.7/32".parse().unwrap(),
                30_000 + h as u16,
                53,
                17,
            )
            .with_site(Site::Is(site));
            t.insert(&k, pkts(4));
        }
        t
    };
    let a = mk(0);
    let b = mk(300); // different region
    let merged = FlowTree::merged(&a, &b).unwrap();
    merged.validate();
    assert_eq!(merged.total().packets, 64);
    // Region-level drill-down separates them.
    assert!((merged.estimate_pattern(&key("site=r0")).packets - 32.0).abs() < 1e-6);
    assert!((merged.estimate_pattern(&key("site=r1")).packets - 32.0).abs() < 1e-6);
}

#[test]
fn one_feature_schema_ignores_other_dims_entirely() {
    let mut t = FlowTree::new(Schema::one_feature_src(), Config::with_budget(256));
    // Same src, different everything else: must collapse to one node.
    for port in [80u16, 443, 8080] {
        let k = FlowKey::five_tuple(
            "203.0.113.7/32".parse().unwrap(),
            format!("192.0.2.{}/32", port % 10).parse().unwrap(),
            port,
            port,
            6,
        );
        t.insert(&k, pkts(1));
    }
    t.validate();
    assert_eq!(t.len(), 2, "root + one src node");
    assert_eq!(
        t.subtree_popularity(&key("src=203.0.113.7/32"))
            .unwrap()
            .packets,
        3
    );
}
