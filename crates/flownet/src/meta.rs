//! Packet metadata extraction: raw frames → [`PacketMeta`] → [`FlowKey`].

use crate::ethernet::{EtherType, EthernetFrame};
use crate::ipv4::Ipv4Packet;
use crate::ipv6::Ipv6Packet;
use crate::tcp::TcpSegment;
use crate::udp::UdpDatagram;
use crate::ParseError;
use flowkey::{FlowKey, IpNet, PortRange, Proto};
use std::net::IpAddr;

/// The flow-relevant metadata of one captured packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketMeta {
    /// Capture timestamp in microseconds since the Unix epoch.
    pub ts_micros: u64,
    /// Source address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// Source port (0 when the protocol has none or the packet is a
    /// non-first fragment).
    pub sport: u16,
    /// Destination port (0 when absent).
    pub dport: u16,
    /// IP protocol number.
    pub proto: u8,
    /// Original wire length in bytes (not the captured snap length).
    pub wire_len: u32,
}

impl PacketMeta {
    /// The fully-specified 5-tuple flow key of this packet.
    pub fn flow_key(&self) -> FlowKey {
        let src = match self.src {
            IpAddr::V4(a) => IpNet::v4_host(a),
            IpAddr::V6(a) => IpNet::v6_host(a),
        };
        let dst = match self.dst {
            IpAddr::V4(a) => IpNet::v4_host(a),
            IpAddr::V6(a) => IpNet::v6_host(a),
        };
        FlowKey {
            src,
            dst,
            sport: PortRange::port(self.sport),
            dport: PortRange::port(self.dport),
            proto: Proto::Is(self.proto),
            ..FlowKey::ROOT
        }
    }

    /// The capture timestamp in whole seconds.
    pub fn ts_secs(&self) -> u64 {
        self.ts_micros / 1_000_000
    }
}

/// Parses an Ethernet frame into flow metadata.
///
/// `ts_micros` and `wire_len` come from the capture layer (pcap record
/// header or live capture). Non-IP frames yield
/// `Err(Unsupported)`; malformed IP yields the specific parse error.
pub fn parse_ethernet(
    frame: &[u8],
    ts_micros: u64,
    wire_len: u32,
) -> Result<PacketMeta, ParseError> {
    let eth = EthernetFrame::new_checked(frame)?;
    match eth.ethertype() {
        EtherType::Ipv4 | EtherType::Ipv6 => parse_ip(eth.payload(), ts_micros, wire_len),
        EtherType::Arp => Err(ParseError::Unsupported("ARP")),
        EtherType::Other(_) => Err(ParseError::Unsupported("non-IP ethertype")),
    }
}

/// Parses a raw IP packet (v4 or v6, detected from the version nibble)
/// into flow metadata.
pub fn parse_ip(packet: &[u8], ts_micros: u64, wire_len: u32) -> Result<PacketMeta, ParseError> {
    let version = packet.first().ok_or(ParseError::Truncated)? >> 4;
    match version {
        4 => {
            let ip = Ipv4Packet::new_checked(packet)?;
            let (sport, dport) = if ip.is_fragment() {
                // Ports live only in the first fragment; later fragments
                // are accounted against the port-wildcard flow.
                (0, 0)
            } else {
                ports(ip.protocol(), ip.payload())
            };
            Ok(PacketMeta {
                ts_micros,
                src: IpAddr::V4(ip.src_addr()),
                dst: IpAddr::V4(ip.dst_addr()),
                sport,
                dport,
                proto: ip.protocol(),
                wire_len,
            })
        }
        6 => {
            let ip = Ipv6Packet::new_checked(packet)?;
            let (proto, off) = ip.upper_layer()?;
            let (sport, dport) = ports(proto, &ip.payload()[off..]);
            Ok(PacketMeta {
                ts_micros,
                src: IpAddr::V6(ip.src_addr()),
                dst: IpAddr::V6(ip.dst_addr()),
                sport,
                dport,
                proto,
                wire_len,
            })
        }
        _ => Err(ParseError::Malformed("IP version")),
    }
}

/// Extracts ports for protocols that have them; anything else is (0, 0).
/// Truncated transport headers degrade to (0, 0) rather than dropping
/// the packet — the IP-level information is still valuable to a
/// summarizer.
fn ports(proto: u8, l4: &[u8]) -> (u16, u16) {
    match proto {
        6 => TcpSegment::new_checked(l4)
            .map(|t| (t.src_port(), t.dst_port()))
            .unwrap_or((0, 0)),
        17 => UdpDatagram::new_checked(l4)
            .map(|u| (u.src_port(), u.dst_port()))
            .unwrap_or((0, 0)),
        _ => (0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testpkt;

    #[test]
    fn udp4_frame_to_key() {
        let frame = testpkt::udp4([10, 0, 0, 1], [192, 0, 2, 7], 5353, 53, b"q");
        let meta = parse_ethernet(&frame, 42_000_000, frame.len() as u32).unwrap();
        assert_eq!(meta.proto, 17);
        assert_eq!((meta.sport, meta.dport), (5353, 53));
        assert_eq!(meta.ts_secs(), 42);
        assert_eq!(
            meta.flow_key().to_string(),
            "src=10.0.0.1/32 dst=192.0.2.7/32 sport=5353 dport=53 proto=udp"
        );
    }

    #[test]
    fn tcp4_frame_to_key() {
        let frame = testpkt::tcp4([172, 16, 0, 9], [198, 51, 100, 1], 50000, 443, b"hello");
        let meta = parse_ethernet(&frame, 0, frame.len() as u32).unwrap();
        assert_eq!(meta.proto, 6);
        assert_eq!((meta.sport, meta.dport), (50000, 443));
    }

    #[test]
    fn udp6_frame_to_key() {
        let frame = testpkt::udp6(1, 2, 1111, 53, b"x");
        let meta = parse_ethernet(&frame, 0, frame.len() as u32).unwrap();
        assert_eq!(meta.proto, 17);
        assert!(matches!(meta.src, IpAddr::V6(_)));
        assert_eq!(meta.dport, 53);
    }

    #[test]
    fn icmp_has_no_ports() {
        let frame = testpkt::ipv4_proto([1, 1, 1, 1], [2, 2, 2, 2], 1, &[8, 0, 0, 0]);
        let meta = parse_ethernet(&frame, 0, frame.len() as u32).unwrap();
        assert_eq!(meta.proto, 1);
        assert_eq!((meta.sport, meta.dport), (0, 0));
    }

    #[test]
    fn arp_and_garbage_rejected() {
        let mut arp = testpkt::udp4([1, 1, 1, 1], [2, 2, 2, 2], 1, 1, b"");
        arp[12..14].copy_from_slice(&0x0806u16.to_be_bytes());
        assert_eq!(
            parse_ethernet(&arp, 0, 60).unwrap_err(),
            ParseError::Unsupported("ARP")
        );
        assert!(parse_ethernet(&[0u8; 5], 0, 5).is_err());
        assert!(parse_ip(&[], 0, 0).is_err());
        assert!(parse_ip(&[0x55; 40], 0, 40).is_err()); // version 5
    }

    #[test]
    fn fragment_loses_ports_not_packet() {
        let mut frame = testpkt::udp4([10, 0, 0, 1], [10, 0, 0, 2], 7, 7, b"frag");
        // Set fragment offset on the IPv4 header inside the frame.
        frame[14 + 7] = 0x10;
        // Recompute the IP checksum so the packet stays valid.
        let (ip_start, ihl) = (14, 20);
        frame[ip_start + 10] = 0;
        frame[ip_start + 11] = 0;
        let ck = crate::internet_checksum(&frame[ip_start..ip_start + ihl], 0);
        frame[ip_start + 10..ip_start + 12].copy_from_slice(&ck.to_be_bytes());
        let meta = parse_ethernet(&frame, 0, frame.len() as u32).unwrap();
        assert_eq!((meta.sport, meta.dport), (0, 0));
        assert_eq!(meta.proto, 17);
    }
}
