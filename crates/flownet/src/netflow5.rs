//! NetFlow version 5 export packets.
//!
//! The fixed-format flow export protocol spoken by the routers in the
//! paper's Fig. 1 ("each router exports its data to a close-by Flowtree
//! daemon using APIs such as NetFlow"). A v5 packet is a 24-byte header
//! followed by 1–30 records of 48 bytes each; IPv4 only.

use crate::record::FlowRecord;
use crate::ParseError;
use std::net::{IpAddr, Ipv4Addr};

/// NetFlow v5 version number.
pub const VERSION: u16 = 5;
/// Header length in bytes.
pub const HEADER_LEN: usize = 24;
/// Record length in bytes.
pub const RECORD_LEN: usize = 48;
/// Maximum records per packet, per the v5 specification.
pub const MAX_RECORDS: usize = 30;

/// A decoded NetFlow v5 packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Records in this packet.
    pub count: u16,
    /// Milliseconds since the export device booted.
    pub sys_uptime_ms: u32,
    /// Export timestamp, seconds since the epoch.
    pub unix_secs: u32,
    /// Export timestamp, residual nanoseconds.
    pub unix_nsecs: u32,
    /// Total flows seen by the exporter before this packet.
    pub flow_sequence: u32,
    /// Engine type / slot.
    pub engine_type: u8,
    /// Engine id.
    pub engine_id: u8,
    /// Sampling mode and interval.
    pub sampling: u16,
}

/// Encodes `records` into one v5 packet.
///
/// `base_ms` is the exporter's epoch-milliseconds at export time; record
/// first/last timestamps are expressed relative to it as sysuptime.
/// Panics if `records` is empty or exceeds [`MAX_RECORDS`], or if any
/// record is not IPv4 (v5 cannot carry IPv6 — use IPFIX).
pub fn encode(records: &[FlowRecord], base_ms: u64, flow_sequence: u32) -> Vec<u8> {
    assert!(
        !records.is_empty() && records.len() <= MAX_RECORDS,
        "netflow5 packets carry 1..=30 records"
    );
    let mut out = Vec::with_capacity(HEADER_LEN + records.len() * RECORD_LEN);
    let uptime_ms: u32 = 3_600_000; // pretend the box has been up an hour
    out.extend_from_slice(&VERSION.to_be_bytes());
    out.extend_from_slice(&(records.len() as u16).to_be_bytes());
    out.extend_from_slice(&uptime_ms.to_be_bytes());
    out.extend_from_slice(&((base_ms / 1000) as u32).to_be_bytes());
    out.extend_from_slice(&(((base_ms % 1000) * 1_000_000) as u32).to_be_bytes());
    out.extend_from_slice(&flow_sequence.to_be_bytes());
    out.push(0); // engine type
    out.push(0); // engine id
    out.extend_from_slice(&0u16.to_be_bytes()); // sampling
    for r in records {
        let (IpAddr::V4(src), IpAddr::V4(dst)) = (r.src, r.dst) else {
            panic!("netflow v5 carries IPv4 flows only; use IPFIX for IPv6");
        };
        out.extend_from_slice(&src.octets());
        out.extend_from_slice(&dst.octets());
        out.extend_from_slice(&[0u8; 4]); // nexthop
        out.extend_from_slice(&0u16.to_be_bytes()); // input if
        out.extend_from_slice(&0u16.to_be_bytes()); // output if
        out.extend_from_slice(&(r.packets.min(u32::MAX as u64) as u32).to_be_bytes());
        out.extend_from_slice(&(r.bytes.min(u32::MAX as u64) as u32).to_be_bytes());
        // first/last as sysuptime: uptime - (base - t).
        let rel = |t_ms: u64| -> u32 {
            let behind = base_ms.saturating_sub(t_ms);
            (uptime_ms as u64).saturating_sub(behind) as u32
        };
        out.extend_from_slice(&rel(r.first_ms).to_be_bytes());
        out.extend_from_slice(&rel(r.last_ms).to_be_bytes());
        out.extend_from_slice(&r.sport.to_be_bytes());
        out.extend_from_slice(&r.dport.to_be_bytes());
        out.push(0); // pad
        out.push(0); // tcp flags (not tracked at this layer)
        out.push(r.proto);
        out.push(0); // tos
        out.extend_from_slice(&0u16.to_be_bytes()); // src as
        out.extend_from_slice(&0u16.to_be_bytes()); // dst as
        out.push(32); // src mask
        out.push(32); // dst mask
        out.extend_from_slice(&0u16.to_be_bytes()); // pad2
    }
    out
}

/// Decodes one v5 packet into its header and records.
pub fn decode(bytes: &[u8]) -> Result<(Header, Vec<FlowRecord>), ParseError> {
    if bytes.len() < HEADER_LEN {
        return Err(ParseError::Truncated);
    }
    let rd16 = |o: usize| u16::from_be_bytes([bytes[o], bytes[o + 1]]);
    let rd32 = |o: usize| u32::from_be_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]);
    if rd16(0) != VERSION {
        return Err(ParseError::Malformed("netflow version"));
    }
    let count = rd16(2);
    if count == 0 || count as usize > MAX_RECORDS {
        return Err(ParseError::Malformed("netflow record count"));
    }
    let need = HEADER_LEN + count as usize * RECORD_LEN;
    if bytes.len() < need {
        return Err(ParseError::Truncated);
    }
    let header = Header {
        count,
        sys_uptime_ms: rd32(4),
        unix_secs: rd32(8),
        unix_nsecs: rd32(12),
        flow_sequence: rd32(16),
        engine_type: bytes[20],
        engine_id: bytes[21],
        sampling: rd16(22),
    };
    // Reconstruct epoch milliseconds of the export moment.
    let base_ms = header.unix_secs as u64 * 1000 + (header.unix_nsecs as u64 / 1_000_000);
    let uptime = header.sys_uptime_ms as u64;
    let mut records = Vec::with_capacity(count as usize);
    for i in 0..count as usize {
        let o = HEADER_LEN + i * RECORD_LEN;
        let src = Ipv4Addr::new(bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]);
        let dst = Ipv4Addr::new(bytes[o + 4], bytes[o + 5], bytes[o + 6], bytes[o + 7]);
        let packets = rd32(o + 16) as u64;
        let bytes_cnt = rd32(o + 20) as u64;
        let first_up = rd32(o + 24) as u64;
        let last_up = rd32(o + 28) as u64;
        let to_epoch = |up: u64| base_ms.saturating_sub(uptime.saturating_sub(up));
        records.push(FlowRecord {
            src: IpAddr::V4(src),
            dst: IpAddr::V4(dst),
            sport: rd16(o + 32),
            dport: rd16(o + 34),
            proto: bytes[o + 38],
            packets,
            bytes: bytes_cnt,
            first_ms: to_epoch(first_up),
            last_ms: to_epoch(last_up),
        });
    }
    Ok((header, records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records(n: usize) -> Vec<FlowRecord> {
        (0..n)
            .map(|i| {
                let mut r = FlowRecord::v4(
                    [10, 0, (i / 256) as u8, (i % 256) as u8],
                    [192, 0, 2, (i % 100) as u8],
                    1024 + i as u16,
                    if i % 2 == 0 { 80 } else { 443 },
                    if i % 3 == 0 { 17 } else { 6 },
                    10 + i as u64,
                    1000 * (i as u64 + 1),
                );
                r.first_ms = 1_700_000_000_000 + i as u64 * 10;
                r.last_ms = r.first_ms + 500;
                r
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_flow_fields() {
        let records = sample_records(7);
        let base_ms = 1_700_000_001_000;
        let bytes = encode(&records, base_ms, 42);
        assert_eq!(bytes.len(), HEADER_LEN + 7 * RECORD_LEN);
        let (hdr, back) = decode(&bytes).unwrap();
        assert_eq!(hdr.count, 7);
        assert_eq!(hdr.flow_sequence, 42);
        assert_eq!(back.len(), 7);
        for (a, b) in records.iter().zip(&back) {
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert_eq!((a.sport, a.dport, a.proto), (b.sport, b.dport, b.proto));
            assert_eq!((a.packets, a.bytes), (b.packets, b.bytes));
            // Timestamps survive to millisecond precision.
            assert_eq!(a.first_ms, b.first_ms);
            assert_eq!(a.last_ms, b.last_ms);
        }
    }

    #[test]
    fn rejects_wrong_version_and_counts() {
        let mut bytes = encode(&sample_records(1), 0, 0);
        bytes[1] = 9;
        assert!(decode(&bytes).is_err());
        let mut bytes = encode(&sample_records(1), 0, 0);
        bytes[2..4].copy_from_slice(&0u16.to_be_bytes());
        assert!(decode(&bytes).is_err());
        let mut bytes = encode(&sample_records(1), 0, 0);
        bytes[2..4].copy_from_slice(&31u16.to_be_bytes());
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn truncated_packets_error() {
        let bytes = encode(&sample_records(3), 0, 0);
        for cut in [
            0,
            10,
            HEADER_LEN,
            HEADER_LEN + RECORD_LEN + 5,
            bytes.len() - 1,
        ] {
            assert!(decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    #[should_panic(expected = "1..=30")]
    fn encode_rejects_oversized_batches() {
        let _ = encode(&sample_records(31), 0, 0);
    }

    #[test]
    #[should_panic(expected = "IPv4")]
    fn encode_rejects_ipv6() {
        let mut r = sample_records(1);
        r[0].src = "2001:db8::1".parse().unwrap();
        let _ = encode(&r, 0, 0);
    }
}
