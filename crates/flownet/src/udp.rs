//! UDP datagrams (zero-copy view).

use crate::{internet_checksum, ParseError};

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A zero-copy view of a UDP datagram.
#[derive(Debug, Clone)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wraps `buffer`, validating the length field.
    pub fn new_checked(buffer: T) -> Result<Self, ParseError> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let dg = UdpDatagram { buffer };
        let l = dg.len_field() as usize;
        if l < HEADER_LEN || l > len {
            return Err(ParseError::Malformed("UDP length"));
        }
        Ok(dg)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Length field (header + payload).
    pub fn len_field(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Checksum field (0 = absent for IPv4).
    pub fn checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[6], b[7]])
    }

    /// The datagram payload.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..self.len_field() as usize]
    }

    /// Verifies the checksum with the pseudo-header sum; a zero checksum
    /// (legal over IPv4) verifies trivially.
    pub fn verify_checksum(&self, pseudo_sum: u32) -> bool {
        if self.checksum() == 0 {
            return true;
        }
        internet_checksum(
            &self.buffer.as_ref()[..self.len_field() as usize],
            pseudo_sum,
        ) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagram<T> {
    /// Initializes the header with the buffer's length.
    pub fn init(buffer: T) -> Result<Self, ParseError> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let mut dg = UdpDatagram { buffer };
        let l = dg.buffer.as_ref().len().min(u16::MAX as usize) as u16;
        let b = dg.buffer.as_mut();
        b[..HEADER_LEN].fill(0);
        b[4..6].copy_from_slice(&l.to_be_bytes());
        Ok(dg)
    }

    /// Sets the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Computes and writes the checksum (0x0000 results are emitted as
    /// 0xFFFF per RFC 768).
    pub fn fill_checksum(&mut self, pseudo_sum: u32) {
        self.buffer.as_mut()[6..8].fill(0);
        let l = self.len_field() as usize;
        let mut ck = internet_checksum(&self.buffer.as_ref()[..l], pseudo_sum);
        if ck == 0 {
            ck = 0xffff;
        }
        self.buffer.as_mut()[6..8].copy_from_slice(&ck.to_be_bytes());
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let l = self.len_field() as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..l]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_then_parse() {
        let mut buf = [0u8; HEADER_LEN + 5];
        let mut dg = UdpDatagram::init(&mut buf[..]).unwrap();
        dg.set_src_port(5353);
        dg.set_dst_port(53);
        dg.payload_mut().copy_from_slice(b"query");
        dg.fill_checksum(99);
        let dg = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(dg.src_port(), 5353);
        assert_eq!(dg.dst_port(), 53);
        assert_eq!(dg.payload(), b"query");
        assert!(dg.verify_checksum(99));
        assert!(!dg.verify_checksum(98));
    }

    #[test]
    fn zero_checksum_accepted() {
        let mut buf = [0u8; HEADER_LEN];
        let _ = UdpDatagram::init(&mut buf[..]).unwrap();
        let dg = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(dg.checksum(), 0);
        assert!(dg.verify_checksum(12345));
    }

    #[test]
    fn rejects_bad_length() {
        let mut buf = [0u8; HEADER_LEN + 2];
        buf[4..6].copy_from_slice(&4u16.to_be_bytes()); // < header
        assert!(UdpDatagram::new_checked(&buf[..]).is_err());
        buf[4..6].copy_from_slice(&100u16.to_be_bytes()); // > buffer
        assert!(UdpDatagram::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn payload_respects_length_field() {
        let mut buf = [0u8; HEADER_LEN + 10];
        let mut dg = UdpDatagram::init(&mut buf[..]).unwrap();
        dg.payload_mut().copy_from_slice(b"0123456789");
        buf[4..6].copy_from_slice(&((HEADER_LEN + 4) as u16).to_be_bytes());
        let dg = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(dg.payload(), b"0123");
    }
}
