//! The router-side flow cache: packets in, flow records out.
//!
//! This is the piece of a router's NetFlow/IPFIX engine the paper's
//! Fig. 1 assumes: packets are aggregated per 5-tuple; a flow record is
//! emitted when the flow has been idle for `idle_timeout`, has lived
//! longer than `active_timeout` (long-lived flows are reported in
//! slices), or when the cache is full and must make room.

use crate::meta::PacketMeta;
use crate::record::FlowRecord;
use std::collections::HashMap;
use std::net::IpAddr;

/// Flow cache tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowCacheConfig {
    /// Emit a record once a flow has been idle this long (ms).
    pub idle_timeout_ms: u64,
    /// Emit (and restart) long-lived flows after this long (ms).
    pub active_timeout_ms: u64,
    /// Maximum tracked flows; beyond this the oldest flow is flushed.
    pub max_entries: usize,
}

impl Default for FlowCacheConfig {
    fn default() -> Self {
        // Common router defaults: 15 s idle, 60 s active (scaled-down
        // from Cisco's 15 s / 30 min to suit short traces).
        FlowCacheConfig {
            idle_timeout_ms: 15_000,
            active_timeout_ms: 60_000,
            max_entries: 65_536,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Tuple {
    src: IpAddr,
    dst: IpAddr,
    sport: u16,
    dport: u16,
    proto: u8,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    packets: u64,
    bytes: u64,
    first_ms: u64,
    last_ms: u64,
}

/// Aggregates a packet stream into flow records.
#[derive(Debug)]
pub struct FlowCache {
    cfg: FlowCacheConfig,
    flows: HashMap<Tuple, Entry>,
    emitted: u64,
}

impl FlowCache {
    /// Creates an empty cache.
    pub fn new(cfg: FlowCacheConfig) -> FlowCache {
        FlowCache {
            cfg,
            flows: HashMap::new(),
            emitted: 0,
        }
    }

    /// Currently tracked flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether no flows are tracked.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Total records emitted over the cache's lifetime.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Feeds one packet; returns any records that expired as a result
    /// (idle/active timeouts are checked lazily against this packet's
    /// clock, plus a capacity eviction if needed).
    pub fn observe(&mut self, meta: &PacketMeta) -> Vec<FlowRecord> {
        let now_ms = meta.ts_micros / 1000;
        let mut out = self.expire(now_ms);
        let tuple = Tuple {
            src: meta.src,
            dst: meta.dst,
            sport: meta.sport,
            dport: meta.dport,
            proto: meta.proto,
        };
        let entry = self.flows.entry(tuple).or_insert(Entry {
            packets: 0,
            bytes: 0,
            first_ms: now_ms,
            last_ms: now_ms,
        });
        entry.packets += 1;
        entry.bytes += meta.wire_len as u64;
        entry.last_ms = entry.last_ms.max(now_ms);

        if self.flows.len() > self.cfg.max_entries {
            // Flush the least recently updated flow to make room.
            if let Some((&victim, _)) = self.flows.iter().min_by_key(|(_, e)| e.last_ms) {
                let e = self.flows.remove(&victim).expect("victim present");
                out.push(to_record(victim, e));
                self.emitted += 1;
            }
        }
        out
    }

    /// Expires flows against an explicit clock (call with the current
    /// time when the packet stream is quiet).
    pub fn expire(&mut self, now_ms: u64) -> Vec<FlowRecord> {
        let idle = self.cfg.idle_timeout_ms;
        let active = self.cfg.active_timeout_ms;
        let expired: Vec<Tuple> = self
            .flows
            .iter()
            .filter(|(_, e)| {
                now_ms.saturating_sub(e.last_ms) >= idle
                    || now_ms.saturating_sub(e.first_ms) >= active
            })
            .map(|(t, _)| *t)
            .collect();
        let mut out = Vec::with_capacity(expired.len());
        for t in expired {
            let e = self.flows.remove(&t).expect("listed above");
            out.push(to_record(t, e));
            self.emitted += 1;
        }
        out
    }

    /// Flushes every tracked flow (end of capture / shutdown).
    pub fn drain(&mut self) -> Vec<FlowRecord> {
        let mut out: Vec<FlowRecord> = self.flows.drain().map(|(t, e)| to_record(t, e)).collect();
        self.emitted += out.len() as u64;
        // Deterministic order for reproducible pipelines.
        out.sort_by_key(|r| (r.first_ms, r.src, r.dst, r.sport, r.dport));
        out
    }
}

fn to_record(t: Tuple, e: Entry) -> FlowRecord {
    FlowRecord {
        src: t.src,
        dst: t.dst,
        sport: t.sport,
        dport: t.dport,
        proto: t.proto,
        packets: e.packets,
        bytes: e.bytes,
        first_ms: e.first_ms,
        last_ms: e.last_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(src: u8, sport: u16, ts_ms: u64, len: u32) -> PacketMeta {
        PacketMeta {
            ts_micros: ts_ms * 1000,
            src: IpAddr::V4([10, 0, 0, src].into()),
            dst: IpAddr::V4([192, 0, 2, 1].into()),
            sport,
            dport: 80,
            proto: 6,
            wire_len: len,
        }
    }

    #[test]
    fn aggregates_packets_of_one_flow() {
        let mut c = FlowCache::new(FlowCacheConfig::default());
        for i in 0..10 {
            assert!(c.observe(&meta(1, 5000, 1000 + i * 10, 100)).is_empty());
        }
        let recs = c.drain();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].packets, 10);
        assert_eq!(recs[0].bytes, 1000);
        assert_eq!(recs[0].first_ms, 1000);
        assert_eq!(recs[0].last_ms, 1090);
    }

    #[test]
    fn idle_timeout_emits() {
        let mut c = FlowCache::new(FlowCacheConfig {
            idle_timeout_ms: 100,
            active_timeout_ms: 1_000_000,
            max_entries: 100,
        });
        c.observe(&meta(1, 5000, 0, 60));
        // A later packet from another flow triggers the expiry check.
        let out = c.observe(&meta(2, 6000, 500, 60));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].sport, 5000);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn active_timeout_slices_long_flows() {
        let mut c = FlowCache::new(FlowCacheConfig {
            idle_timeout_ms: 1_000_000,
            active_timeout_ms: 1000,
            max_entries: 100,
        });
        let mut slices: Vec<FlowRecord> = Vec::new();
        for i in 0..50 {
            slices.extend(c.observe(&meta(1, 5000, i * 100, 60)));
        }
        assert!(
            slices.len() >= 4,
            "a 5 s flow must slice every ~1 s: {}",
            slices.len()
        );
        // No packet is lost: slices plus the residual account for all 50.
        let sliced: u64 = slices.iter().map(|r| r.packets).sum();
        let residual: u64 = c.drain().iter().map(|r| r.packets).sum();
        assert_eq!(sliced + residual, 50);
    }

    #[test]
    fn capacity_eviction_flushes_oldest() {
        let mut c = FlowCache::new(FlowCacheConfig {
            idle_timeout_ms: u64::MAX,
            active_timeout_ms: u64::MAX,
            max_entries: 3,
        });
        let mut out = Vec::new();
        for i in 0..5u16 {
            out.extend(c.observe(&meta(i as u8, 1000 + i, i as u64, 60)));
        }
        assert_eq!(c.len(), 3);
        assert_eq!(out.len(), 2);
        // The evicted flows are the earliest two.
        assert!(out.iter().any(|r| r.sport == 1000));
        assert!(out.iter().any(|r| r.sport == 1001));
    }

    #[test]
    fn drain_is_deterministic_and_counts() {
        let mut c = FlowCache::new(FlowCacheConfig::default());
        for i in 0..20u16 {
            c.observe(&meta((i % 5) as u8, 1000 + (i % 5), i as u64, 10));
        }
        let a = c.drain();
        assert_eq!(a.len(), 5);
        assert!(a.windows(2).all(|w| w[0].first_ms <= w[1].first_ms));
        assert_eq!(c.emitted(), 5);
        assert!(c.is_empty());
    }
}
