//! Ethernet II frames (zero-copy view).

use crate::ParseError;
use core::fmt;

/// Minimum Ethernet header length (dst + src + ethertype).
pub const HEADER_LEN: usize = 14;

/// EtherType values this crate understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// IPv6 (0x86DD).
    Ipv6,
    /// ARP (0x0806) — recognized but not parsed further.
    Arp,
    /// Anything else.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x86DD => EtherType::Ipv6,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(v: EtherType) -> u16 {
        match v {
            EtherType::Ipv4 => 0x0800,
            EtherType::Ipv6 => 0x86DD,
            EtherType::Arp => 0x0806,
            EtherType::Other(o) => o,
        }
    }
}

/// A zero-copy view of an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wraps `buffer` after verifying it is long enough for the header.
    pub fn new_checked(buffer: T) -> Result<Self, ParseError> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        Ok(EthernetFrame { buffer })
    }

    /// Destination MAC address.
    pub fn dst_mac(&self) -> [u8; 6] {
        self.buffer.as_ref()[0..6].try_into().expect("checked len")
    }

    /// Source MAC address.
    pub fn src_mac(&self) -> [u8; 6] {
        self.buffer.as_ref()[6..12].try_into().expect("checked len")
    }

    /// EtherType field.
    pub fn ethertype(&self) -> EtherType {
        let b = self.buffer.as_ref();
        EtherType::from(u16::from_be_bytes([b[12], b[13]]))
    }

    /// The L3 payload.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }

    /// Consumes the view, returning the buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Sets the destination MAC.
    pub fn set_dst_mac(&mut self, mac: [u8; 6]) {
        self.buffer.as_mut()[0..6].copy_from_slice(&mac);
    }

    /// Sets the source MAC.
    pub fn set_src_mac(&mut self, mac: [u8; 6]) {
        self.buffer.as_mut()[6..12].copy_from_slice(&mac);
    }

    /// Sets the EtherType.
    pub fn set_ethertype(&mut self, ty: EtherType) {
        self.buffer.as_mut()[12..14].copy_from_slice(&u16::from(ty).to_be_bytes());
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

impl<T: AsRef<[u8]>> fmt::Display for EthernetFrame<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.src_mac();
        let d = self.dst_mac();
        write!(
            f,
            "eth {:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x} > {:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x} {:?}",
            s[0], s[1], s[2], s[3], s[4], s[5], d[0], d[1], d[2], d[3], d[4], d[5],
            self.ethertype()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut f = vec![0u8; HEADER_LEN + 4];
        f[0..6].copy_from_slice(&[0xff; 6]);
        f[6..12].copy_from_slice(&[2, 0, 0, 0, 0, 1]);
        f[12..14].copy_from_slice(&0x0800u16.to_be_bytes());
        f[14..18].copy_from_slice(b"data");
        f
    }

    #[test]
    fn parses_fields() {
        let frame = EthernetFrame::new_checked(sample()).unwrap();
        assert_eq!(frame.dst_mac(), [0xff; 6]);
        assert_eq!(frame.src_mac(), [2, 0, 0, 0, 0, 1]);
        assert_eq!(frame.ethertype(), EtherType::Ipv4);
        assert_eq!(frame.payload(), b"data");
    }

    #[test]
    fn rejects_short_frames() {
        for n in 0..HEADER_LEN {
            assert_eq!(
                EthernetFrame::new_checked(vec![0u8; n]).unwrap_err(),
                ParseError::Truncated
            );
        }
    }

    #[test]
    fn setters_roundtrip() {
        let mut frame = EthernetFrame::new_checked(vec![0u8; 18]).unwrap();
        frame.set_dst_mac([1; 6]);
        frame.set_src_mac([2; 6]);
        frame.set_ethertype(EtherType::Ipv6);
        frame.payload_mut().copy_from_slice(b"abcd");
        assert_eq!(frame.dst_mac(), [1; 6]);
        assert_eq!(frame.src_mac(), [2; 6]);
        assert_eq!(frame.ethertype(), EtherType::Ipv6);
        assert_eq!(frame.payload(), b"abcd");
    }

    #[test]
    fn ethertype_mapping() {
        assert_eq!(EtherType::from(0x0806), EtherType::Arp);
        assert_eq!(u16::from(EtherType::Other(0x1234)), 0x1234);
    }
}
