//! Normalized flow records — the unit a Flowtree daemon consumes.

use flowkey::{FlowKey, IpNet, PortRange, Proto};
use std::net::{IpAddr, Ipv4Addr};

/// A flow record as produced by a router's export engine (NetFlow/IPFIX)
/// or by our own [`FlowCache`](crate::exporter::FlowCache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FlowRecord {
    /// Source address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// Source port (0 when not applicable).
    pub sport: u16,
    /// Destination port (0 when not applicable).
    pub dport: u16,
    /// IP protocol number.
    pub proto: u8,
    /// Packets in the flow.
    pub packets: u64,
    /// Bytes in the flow.
    pub bytes: u64,
    /// Flow start, milliseconds since the Unix epoch.
    pub first_ms: u64,
    /// Flow end, milliseconds since the Unix epoch.
    pub last_ms: u64,
}

impl FlowRecord {
    /// A minimal IPv4 record (timestamps zero) — test/bench helper.
    pub fn v4(
        src: [u8; 4],
        dst: [u8; 4],
        sport: u16,
        dport: u16,
        proto: u8,
        packets: u64,
        bytes: u64,
    ) -> FlowRecord {
        FlowRecord {
            src: IpAddr::V4(Ipv4Addr::from(src)),
            dst: IpAddr::V4(Ipv4Addr::from(dst)),
            sport,
            dport,
            proto,
            packets,
            bytes,
            first_ms: 0,
            last_ms: 0,
        }
    }

    /// The fully-specified 5-tuple key of this record.
    pub fn flow_key(&self) -> FlowKey {
        let src = match self.src {
            IpAddr::V4(a) => IpNet::v4_host(a),
            IpAddr::V6(a) => IpNet::v6_host(a),
        };
        let dst = match self.dst {
            IpAddr::V4(a) => IpNet::v4_host(a),
            IpAddr::V6(a) => IpNet::v6_host(a),
        };
        FlowKey {
            src,
            dst,
            sport: PortRange::port(self.sport),
            dport: PortRange::port(self.dport),
            proto: Proto::Is(self.proto),
            ..FlowKey::ROOT
        }
    }

    /// Flow duration in milliseconds.
    pub fn duration_ms(&self) -> u64 {
        self.last_ms.saturating_sub(self.first_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_of_v4_record() {
        let r = FlowRecord::v4([10, 0, 0, 1], [192, 0, 2, 5], 1234, 80, 6, 10, 5000);
        assert_eq!(
            r.flow_key().to_string(),
            "src=10.0.0.1/32 dst=192.0.2.5/32 sport=1234 dport=80 proto=tcp"
        );
    }

    #[test]
    fn duration_saturates() {
        let mut r = FlowRecord::v4([1; 4], [2; 4], 1, 1, 17, 1, 1);
        r.first_ms = 100;
        r.last_ms = 50;
        assert_eq!(r.duration_ms(), 0);
        r.last_ms = 260;
        assert_eq!(r.duration_ms(), 160);
    }
}
