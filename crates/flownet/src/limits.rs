//! Decoder hardening: the bounds a public-facing collector must hold
//! against hostile or broken exporters.
//!
//! The template-based dialects (NetFlow v9, IPFIX) are stateful: a
//! decoder caches every template an exporter announces and keeps it
//! until withdrawn. An exporter that floods distinct template ids (or
//! distinct observation domains) therefore grows an unhardened cache
//! without bound, and a template claiming thousands of fields makes
//! every data record arbitrarily expensive. [`DecoderLimits`] names
//! the caps; [`TemplateCache`] enforces them for both dialects:
//!
//! * **per-domain and global count caps** — inserting past a cap
//!   evicts the least-recently-*used* template first (use = a data set
//!   decoded through it, or a refresh), so an id flood displaces idle
//!   state, never the template actively carrying records;
//! * **timeout eviction** — templates unused for
//!   [`DecoderLimits::template_timeout_ms`] of caller-supplied time
//!   are dropped, so a vanished exporter's state ages out;
//! * **withdrawal-safe accounting** — withdrawing a template the cache
//!   already evicted (or never had) is counted
//!   ([`TemplateCacheStats::withdrawn_unknown`]) and never corrupts
//!   the per-domain bookkeeping;
//! * **shape bounds** — templates over
//!   [`DecoderLimits::max_fields`] fields or
//!   [`DecoderLimits::max_record_bytes`] of fixed record width are
//!   rejected outright (counted, parse continues).
//!
//! Time is injected (`advance`), never read from a clock: hostile
//! input replays deterministically in tests, and the exporter's own
//! header timestamps — which it controls — are never trusted for
//! eviction.

use std::collections::HashMap;

/// Hard bounds a hostile exporter cannot push a template cache past.
/// A field set to 0 disables that bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecoderLimits {
    /// Max cached templates per observation domain / source id.
    pub max_templates_per_domain: usize,
    /// Max cached templates across all domains of one decoder.
    pub max_templates: usize,
    /// Evict templates unused for this many ms of injected time.
    pub template_timeout_ms: u64,
    /// Max fields one template may declare; beyond it, rejected.
    pub max_fields: usize,
    /// Max fixed record width (bytes) one template may span.
    pub max_record_bytes: usize,
}

impl Default for DecoderLimits {
    /// Production-safe defaults: generous for benign exporters (a real
    /// router announces tens of templates), hard walls for hostile
    /// ones.
    fn default() -> DecoderLimits {
        DecoderLimits {
            max_templates_per_domain: 256,
            max_templates: 4_096,
            template_timeout_ms: 1_800_000,
            max_fields: 128,
            max_record_bytes: 4_096,
        }
    }
}

impl DecoderLimits {
    /// No bounds at all — the pre-hardening behavior, for tools that
    /// decode trusted captures.
    pub fn unbounded() -> DecoderLimits {
        DecoderLimits {
            max_templates_per_domain: 0,
            max_templates: 0,
            template_timeout_ms: 0,
            max_fields: 0,
            max_record_bytes: 0,
        }
    }
}

/// What the cache did to stay within its limits (monotonic counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TemplateCacheStats {
    /// Templates inserted (including refreshes of a cached id).
    pub learned: u64,
    /// Templates rejected for violating shape bounds.
    pub rejected: u64,
    /// Templates evicted to honor a count cap.
    pub evicted_cap: u64,
    /// Templates evicted as unused past the timeout.
    pub evicted_timeout: u64,
    /// Withdrawals of a cached template (honored).
    pub withdrawn: u64,
    /// Withdrawals of a template not cached — already evicted,
    /// already withdrawn, or never learned. Counted, never fatal.
    pub withdrawn_unknown: u64,
}

impl TemplateCacheStats {
    /// Every eviction, regardless of reason.
    pub fn evicted(&self) -> u64 {
        self.evicted_cap + self.evicted_timeout
    }
}

#[derive(Debug)]
struct Entry<T> {
    value: T,
    /// Logical LRU clock (bumped on every touch).
    used_tick: u64,
    /// Injected time of the last touch (for timeout eviction).
    used_ms: u64,
}

/// A bounded, evicting template cache keyed by
/// `(observation domain, template id)` — see the module docs.
#[derive(Debug)]
pub struct TemplateCache<T> {
    limits: DecoderLimits,
    map: HashMap<(u32, u16), Entry<T>>,
    /// Live entries per domain (kept exact across evictions and
    /// withdrawals — the "withdrawal-safe accounting").
    per_domain: HashMap<u32, usize>,
    tick: u64,
    now_ms: u64,
    last_sweep_ms: u64,
    stats: TemplateCacheStats,
}

impl<T> Default for TemplateCache<T> {
    fn default() -> TemplateCache<T> {
        TemplateCache::new(DecoderLimits::default())
    }
}

impl<T> TemplateCache<T> {
    /// An empty cache honoring `limits`.
    pub fn new(limits: DecoderLimits) -> TemplateCache<T> {
        TemplateCache {
            limits,
            map: HashMap::new(),
            per_domain: HashMap::new(),
            tick: 0,
            now_ms: 0,
            last_sweep_ms: 0,
            stats: TemplateCacheStats::default(),
        }
    }

    /// The limits this cache enforces.
    pub fn limits(&self) -> DecoderLimits {
        self.limits
    }

    /// Advances injected time (monotonic: a regressing caller clock is
    /// clamped) and sweeps timed-out entries. Sweeps are amortized to
    /// every quarter-timeout so a packet flood does not pay a full
    /// scan per packet.
    pub fn advance(&mut self, now_ms: u64) {
        if now_ms <= self.now_ms {
            return;
        }
        self.now_ms = now_ms;
        let timeout = self.limits.template_timeout_ms;
        if timeout == 0 {
            return;
        }
        if self.now_ms - self.last_sweep_ms < (timeout / 4).max(1) {
            return;
        }
        self.last_sweep_ms = self.now_ms;
        let cutoff = self.now_ms.saturating_sub(timeout);
        let dead: Vec<(u32, u16)> = self
            .map
            .iter()
            .filter(|(_, e)| e.used_ms < cutoff)
            .map(|(k, _)| *k)
            .collect();
        for key in dead {
            self.evict(key);
            self.stats.evicted_timeout += 1;
        }
    }

    /// The injected time the cache currently holds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Looks a template up, marking it used (LRU + timeout).
    pub fn get(&mut self, domain: u32, tid: u16) -> Option<&T> {
        self.tick += 1;
        let (tick, now) = (self.tick, self.now_ms);
        self.map.get_mut(&(domain, tid)).map(|e| {
            e.used_tick = tick;
            e.used_ms = now;
            &e.value
        })
    }

    /// Inserts (or refreshes) a template, evicting LRU entries as the
    /// caps require. Shape bounds are the caller's to check (it knows
    /// the field layout) — see [`TemplateCache::reject`].
    pub fn insert(&mut self, domain: u32, tid: u16, value: T) {
        self.tick += 1;
        self.stats.learned += 1;
        let entry = Entry {
            value,
            used_tick: self.tick,
            used_ms: self.now_ms,
        };
        if let Some(slot) = self.map.get_mut(&(domain, tid)) {
            *slot = entry; // refresh: no count change
            return;
        }
        let per = self.limits.max_templates_per_domain;
        if per > 0 && self.per_domain.get(&domain).copied().unwrap_or(0) >= per {
            if let Some(key) = self.lru_key(Some(domain)) {
                self.evict(key);
                self.stats.evicted_cap += 1;
            }
        }
        let global = self.limits.max_templates;
        if global > 0 && self.map.len() >= global {
            if let Some(key) = self.lru_key(None) {
                self.evict(key);
                self.stats.evicted_cap += 1;
            }
        }
        self.map.insert((domain, tid), entry);
        *self.per_domain.entry(domain).or_insert(0) += 1;
    }

    /// Records a template rejected for violating shape bounds.
    pub fn reject(&mut self) {
        self.stats.rejected += 1;
    }

    /// Withdraws a template. Returns whether it was cached; a miss
    /// (already evicted or never learned) is counted, never an error.
    pub fn remove(&mut self, domain: u32, tid: u16) -> bool {
        if self.map.remove(&(domain, tid)).is_some() {
            self.drop_domain_count(domain);
            self.stats.withdrawn += 1;
            true
        } else {
            self.stats.withdrawn_unknown += 1;
            false
        }
    }

    /// Cached templates across all domains.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cached templates of one domain.
    pub fn domain_len(&self, domain: u32) -> usize {
        self.per_domain.get(&domain).copied().unwrap_or(0)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> TemplateCacheStats {
        self.stats
    }

    /// Least-recently-used key, within `domain` or globally. O(n) —
    /// only reached when a cap is already hit, and n is bounded by
    /// that same cap.
    fn lru_key(&self, domain: Option<u32>) -> Option<(u32, u16)> {
        self.map
            .iter()
            .filter(|((d, _), _)| domain.is_none_or(|want| *d == want))
            .min_by_key(|(_, e)| e.used_tick)
            .map(|(k, _)| *k)
    }

    fn evict(&mut self, key: (u32, u16)) {
        if self.map.remove(&key).is_some() {
            self.drop_domain_count(key.0);
        }
    }

    fn drop_domain_count(&mut self, domain: u32) {
        if let Some(n) = self.per_domain.get_mut(&domain) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.per_domain.remove(&domain);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(per: usize, global: usize, timeout: u64) -> TemplateCache<u32> {
        TemplateCache::new(DecoderLimits {
            max_templates_per_domain: per,
            max_templates: global,
            template_timeout_ms: timeout,
            max_fields: 0,
            max_record_bytes: 0,
        })
    }

    #[test]
    fn per_domain_cap_evicts_least_recently_used() {
        let mut c = cache(2, 0, 0);
        c.insert(1, 256, 0);
        c.insert(1, 257, 1);
        assert_eq!(c.get(1, 256), Some(&0)); // 256 is now fresher
        c.insert(1, 258, 2); // cap: 257 (LRU) goes
        assert_eq!(c.domain_len(1), 2);
        assert!(c.get(1, 257).is_none());
        assert_eq!(c.get(1, 256), Some(&0));
        assert_eq!(c.stats().evicted_cap, 1);
    }

    #[test]
    fn global_cap_holds_across_domains() {
        let mut c = cache(0, 3, 0);
        for d in 0..5u32 {
            c.insert(d, 256, d);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evicted_cap, 2);
        // The survivors are the most recent three.
        assert!(c.get(0, 256).is_none() && c.get(1, 256).is_none());
        assert!(c.get(4, 256).is_some());
    }

    #[test]
    fn refresh_does_not_double_count() {
        let mut c = cache(2, 0, 0);
        c.insert(7, 300, 1);
        c.insert(7, 300, 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.domain_len(7), 1);
        assert_eq!(c.get(7, 300), Some(&2));
        assert_eq!(c.stats().learned, 2);
        assert_eq!(c.stats().evicted_cap, 0);
    }

    #[test]
    fn timeout_evicts_only_idle_entries() {
        let mut c = cache(0, 0, 100);
        c.insert(1, 256, 0);
        c.insert(1, 257, 1);
        c.advance(90);
        assert!(c.get(1, 257).is_some()); // touched at 90
        c.advance(160); // 256 idle since 0 → out; 257 idle 70ms → stays
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evicted_timeout, 1);
        assert!(c.get(1, 256).is_none());
    }

    #[test]
    fn time_never_regresses() {
        let mut c = cache(0, 0, 100);
        c.advance(500);
        c.insert(1, 256, 0);
        c.advance(10); // hostile header clock going backwards
        assert_eq!(c.now_ms(), 500);
        assert!(c.get(1, 256).is_some());
    }

    #[test]
    fn withdrawal_of_missing_template_is_counted_not_corrupting() {
        let mut c = cache(1, 0, 0);
        c.insert(1, 256, 0);
        c.insert(1, 257, 1); // evicts 256 by cap
        assert!(!c.remove(1, 256), "already evicted");
        assert!(c.remove(1, 257));
        assert!(!c.remove(1, 257), "double withdrawal");
        assert_eq!(c.stats().withdrawn, 1);
        assert_eq!(c.stats().withdrawn_unknown, 2);
        assert_eq!(c.domain_len(1), 0);
        assert_eq!(c.len(), 0);
        // The accounting still admits new inserts up to the cap.
        c.insert(1, 300, 9);
        assert_eq!(c.domain_len(1), 1);
    }
}
