//! TCP segments (zero-copy view) — the fields flow summarization needs.

use crate::{internet_checksum, ParseError};

/// Minimum TCP header length.
pub const MIN_HEADER_LEN: usize = 20;

/// TCP flag bits (subset).
pub mod flags {
    /// FIN.
    pub const FIN: u8 = 0x01;
    /// SYN.
    pub const SYN: u8 = 0x02;
    /// RST.
    pub const RST: u8 = 0x04;
    /// PSH.
    pub const PSH: u8 = 0x08;
    /// ACK.
    pub const ACK: u8 = 0x10;
}

/// A zero-copy view of a TCP segment.
#[derive(Debug, Clone)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    /// Wraps `buffer`, validating the data offset.
    pub fn new_checked(buffer: T) -> Result<Self, ParseError> {
        let len = buffer.as_ref().len();
        if len < MIN_HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let seg = TcpSegment { buffer };
        let off = seg.header_len();
        if off < MIN_HEADER_LEN || off > len {
            return Err(ParseError::Malformed("TCP data offset"));
        }
        Ok(seg)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[4], b[5], b[6], b[7]])
    }

    /// Acknowledgment number.
    pub fn ack(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[8], b[9], b[10], b[11]])
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        ((self.buffer.as_ref()[12] >> 4) as usize) * 4
    }

    /// Flag byte (CWR/ECE excluded — low 6 bits).
    pub fn flags(&self) -> u8 {
        self.buffer.as_ref()[13] & 0x3f
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[14], b[15]])
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[16], b[17]])
    }

    /// The segment payload.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }

    /// Verifies the checksum given the pseudo-header partial sum.
    pub fn verify_checksum(&self, pseudo_sum: u32) -> bool {
        internet_checksum(self.buffer.as_ref(), pseudo_sum) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpSegment<T> {
    /// Initializes a minimal header (data offset 5).
    pub fn init(buffer: T) -> Result<Self, ParseError> {
        if buffer.as_ref().len() < MIN_HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let mut seg = TcpSegment { buffer };
        let b = seg.buffer.as_mut();
        b[..MIN_HEADER_LEN].fill(0);
        b[12] = 5 << 4;
        seg.buffer.as_mut()[14..16].copy_from_slice(&65535u16.to_be_bytes());
        Ok(seg)
    }

    /// Sets the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the sequence number.
    pub fn set_seq(&mut self, v: u32) {
        self.buffer.as_mut()[4..8].copy_from_slice(&v.to_be_bytes());
    }

    /// Sets the flag byte.
    pub fn set_flags(&mut self, f: u8) {
        self.buffer.as_mut()[13] = f & 0x3f;
    }

    /// Computes and writes the checksum given the pseudo-header sum.
    pub fn fill_checksum(&mut self, pseudo_sum: u32) {
        self.buffer.as_mut()[16..18].fill(0);
        let ck = internet_checksum(self.buffer.as_ref(), pseudo_sum);
        self.buffer.as_mut()[16..18].copy_from_slice(&ck.to_be_bytes());
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let off = self.header_len();
        &mut self.buffer.as_mut()[off..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_then_parse() {
        let mut buf = [0u8; MIN_HEADER_LEN + 3];
        let mut seg = TcpSegment::init(&mut buf[..]).unwrap();
        seg.set_src_port(443);
        seg.set_dst_port(51000);
        seg.set_seq(0xdeadbeef);
        seg.set_flags(flags::SYN | flags::ACK);
        seg.payload_mut().copy_from_slice(b"abc");
        seg.fill_checksum(0);
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(seg.src_port(), 443);
        assert_eq!(seg.dst_port(), 51000);
        assert_eq!(seg.seq(), 0xdeadbeef);
        assert_eq!(seg.flags(), flags::SYN | flags::ACK);
        assert_eq!(seg.payload(), b"abc");
        assert!(seg.verify_checksum(0));
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let mut buf = [0u8; MIN_HEADER_LEN + 4];
        let mut seg = TcpSegment::init(&mut buf[..]).unwrap();
        seg.payload_mut().copy_from_slice(b"data");
        seg.fill_checksum(1234);
        buf[MIN_HEADER_LEN] ^= 0x01;
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        assert!(!seg.verify_checksum(1234));
    }

    #[test]
    fn rejects_bad_data_offset() {
        let mut buf = [0u8; MIN_HEADER_LEN];
        buf[12] = 4 << 4; // 16 bytes < min
        assert!(TcpSegment::new_checked(&buf[..]).is_err());
        buf[12] = 15 << 4; // 60 bytes > buffer
        assert!(TcpSegment::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(
            TcpSegment::new_checked(&[0u8; 10][..]).unwrap_err(),
            ParseError::Truncated
        );
    }
}
