//! IPv4 packets (zero-copy view) with header checksum support.

use crate::{internet_checksum, ParseError};
use std::net::Ipv4Addr;

/// Minimum IPv4 header length.
pub const MIN_HEADER_LEN: usize = 20;

/// A zero-copy view of an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wraps `buffer`, validating version, header length, and total
    /// length against the buffer.
    pub fn new_checked(buffer: T) -> Result<Self, ParseError> {
        let len = buffer.as_ref().len();
        if len < MIN_HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let pkt = Ipv4Packet { buffer };
        let b = pkt.buffer.as_ref();
        if b[0] >> 4 != 4 {
            return Err(ParseError::Malformed("IPv4 version"));
        }
        let ihl = pkt.header_len();
        if ihl < MIN_HEADER_LEN || ihl > len {
            return Err(ParseError::Malformed("IPv4 IHL"));
        }
        let total = pkt.total_len() as usize;
        if total < ihl || total > len {
            return Err(ParseError::Malformed("IPv4 total length"));
        }
        Ok(pkt)
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        ((self.buffer.as_ref()[0] & 0x0f) as usize) * 4
    }

    /// Total length field.
    pub fn total_len(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// DSCP/ECN byte.
    pub fn tos(&self) -> u8 {
        self.buffer.as_ref()[1]
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Whether the More-Fragments flag is set or the fragment offset is
    /// non-zero (i.e. this is not a standalone datagram).
    pub fn is_fragment(&self) -> bool {
        let b = self.buffer.as_ref();
        let flags_frag = u16::from_be_bytes([b[6], b[7]]);
        (flags_frag & 0x2000) != 0 || (flags_frag & 0x1fff) != 0
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Protocol number (6 = TCP, 17 = UDP, …).
    pub fn protocol(&self) -> u8 {
        self.buffer.as_ref()[9]
    }

    /// Header checksum field.
    pub fn checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[10], b[11]])
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr::new(b[12], b[13], b[14], b[15])
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr::new(b[16], b[17], b[18], b[19])
    }

    /// Whether the header checksum verifies.
    pub fn verify_checksum(&self) -> bool {
        let hl = self.header_len();
        internet_checksum(&self.buffer.as_ref()[..hl], 0) == 0
    }

    /// The L4 payload (bounded by the total-length field).
    pub fn payload(&self) -> &[u8] {
        let b = self.buffer.as_ref();
        &b[self.header_len()..self.total_len() as usize]
    }

    /// Pseudo-header partial sum for TCP/UDP checksums.
    pub fn pseudo_header_sum(&self, l4_len: u16) -> u32 {
        let b = self.buffer.as_ref();
        let mut sum = 0u32;
        for chunk in b[12..20].chunks_exact(2) {
            sum += u16::from_be_bytes([chunk[0], chunk[1]]) as u32;
        }
        sum += self.protocol() as u32;
        sum += l4_len as u32;
        sum
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Initializes a minimal header (version 4, IHL 5, TTL 64) in place.
    /// The caller sets addresses/lengths afterwards and then
    /// [`fill_checksum`](Self::fill_checksum).
    pub fn init(buffer: T) -> Result<Self, ParseError> {
        if buffer.as_ref().len() < MIN_HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let mut pkt = Ipv4Packet { buffer };
        let len = pkt.buffer.as_ref().len().min(u16::MAX as usize) as u16;
        let b = pkt.buffer.as_mut();
        b[0] = 0x45;
        b[1] = 0;
        b[2..4].copy_from_slice(&len.to_be_bytes());
        b[4..8].fill(0);
        b[8] = 64;
        b[9] = 0;
        b[10..12].fill(0);
        Ok(pkt)
    }

    /// Sets the total length.
    pub fn set_total_len(&mut self, len: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&len.to_be_bytes());
    }

    /// Sets the protocol.
    pub fn set_protocol(&mut self, proto: u8) {
        self.buffer.as_mut()[9] = proto;
    }

    /// Sets the TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[8] = ttl;
    }

    /// Sets the source address.
    pub fn set_src_addr(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[12..16].copy_from_slice(&a.octets());
    }

    /// Sets the destination address.
    pub fn set_dst_addr(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[16..20].copy_from_slice(&a.octets());
    }

    /// Computes and writes the header checksum.
    pub fn fill_checksum(&mut self) {
        let hl = self.header_len();
        self.buffer.as_mut()[10..12].fill(0);
        let ck = internet_checksum(&self.buffer.as_ref()[..hl], 0);
        self.buffer.as_mut()[10..12].copy_from_slice(&ck.to_be_bytes());
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hl = self.header_len();
        let total = self.total_len() as usize;
        &mut self.buffer.as_mut()[hl..total]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(payload: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; MIN_HEADER_LEN + payload.len()];
        let mut pkt = Ipv4Packet::init(&mut buf[..]).unwrap();
        pkt.set_protocol(17);
        pkt.set_src_addr(Ipv4Addr::new(10, 0, 0, 1));
        pkt.set_dst_addr(Ipv4Addr::new(192, 0, 2, 7));
        pkt.payload_mut().copy_from_slice(payload);
        pkt.fill_checksum();
        buf
    }

    #[test]
    fn build_then_parse() {
        let buf = sample(b"hello");
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.src_addr(), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(pkt.dst_addr(), Ipv4Addr::new(192, 0, 2, 7));
        assert_eq!(pkt.protocol(), 17);
        assert_eq!(pkt.ttl(), 64);
        assert_eq!(pkt.payload(), b"hello");
        assert!(pkt.verify_checksum());
        assert!(!pkt.is_fragment());
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut buf = sample(b"hello");
        buf[12] ^= 0xff; // flip a source-address byte
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(!pkt.verify_checksum());
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = sample(b"");
        buf[0] = 0x65; // version 6
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            ParseError::Malformed("IPv4 version")
        );
    }

    #[test]
    fn rejects_bad_ihl() {
        let mut buf = sample(b"");
        buf[0] = 0x44; // IHL 4 → 16 bytes < minimum
        assert!(Ipv4Packet::new_checked(&buf[..]).is_err());
        let mut buf = sample(b"");
        buf[0] = 0x4f; // IHL 15 → 60 bytes > buffer
        assert!(Ipv4Packet::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn rejects_total_len_beyond_buffer() {
        let mut buf = sample(b"hi");
        buf[2..4].copy_from_slice(&100u16.to_be_bytes());
        assert!(Ipv4Packet::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn rejects_truncated() {
        for n in 0..MIN_HEADER_LEN {
            assert_eq!(
                Ipv4Packet::new_checked(vec![0u8; n]).unwrap_err(),
                ParseError::Truncated
            );
        }
    }

    #[test]
    fn payload_respects_total_len() {
        // Buffer longer than total_len (e.g. Ethernet padding).
        let mut buf = sample(b"abcdef");
        buf.extend_from_slice(&[0xAA; 10]); // trailing padding
        let total = (MIN_HEADER_LEN + 6) as u16;
        buf[2..4].copy_from_slice(&total.to_be_bytes());
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.payload(), b"abcdef");
    }

    #[test]
    fn fragment_detection() {
        let mut buf = sample(b"hi");
        buf[6] = 0x20; // more fragments
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(pkt.is_fragment());
        let mut buf = sample(b"hi");
        buf[7] = 0x08; // offset 8
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(pkt.is_fragment());
    }
}
