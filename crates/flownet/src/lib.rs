//! # flownet — packet formats, captures, and flow export
//!
//! The substrate the paper's system sits on: everything between raw
//! bytes on the wire and the normalized [`FlowRecord`]s a Flowtree
//! daemon consumes.
//!
//! * Zero-copy header views in the smoltcp idiom —
//!   [`EthernetFrame`], [`Ipv4Packet`], [`Ipv6Packet`], [`TcpSegment`],
//!   [`UdpDatagram`] — wrapping `&[u8]`/`&mut [u8]` with checked
//!   constructors (`new_checked`) and field accessors. Malformed input
//!   returns [`ParseError`]; it never panics.
//! * [`pcap`] — classic libpcap capture files (both byte orders,
//!   microsecond and nanosecond variants), reader and writer.
//! * [`netflow5`] — NetFlow version 5 export packets, the format the
//!   paper's Fig. 1 routers speak.
//! * [`netflow9`] — template-based NetFlow version 9 (RFC 3954), the
//!   other widely deployed export dialect.
//! * [`ipfix`] — an RFC 7011 subset: message/set framing, template
//!   records, and a template cache on the decode side.
//! * [`export`] — a unified [`decode_export_packet`] entry point over
//!   all three export dialects, holding the template caches the
//!   stateful ones need.
//! * [`limits`] — hostile-exporter hardening: [`DecoderLimits`] caps
//!   (template counts, timeouts, field/record bounds) enforced by a
//!   bounded LRU [`limits::TemplateCache`] in both stateful dialects.
//! * [`exporter`] — a router's flow cache: aggregates a packet stream
//!   into flow records with active/idle timeouts.
//!
//! ```
//! use flownet::{parse_ethernet, PacketMeta};
//!
//! // Parse a captured Ethernet frame into flow metadata:
//! let frame = flownet::testpkt::udp4([10, 0, 0, 1], [192, 0, 2, 7], 5353, 53, b"hi");
//! let meta = parse_ethernet(&frame, 1_700_000_000_000_000, frame.len() as u32).unwrap();
//! assert_eq!(meta.dport, 53);
//! let key = meta.flow_key();
//! assert_eq!(key.to_string(),
//!     "src=10.0.0.1/32 dst=192.0.2.7/32 sport=5353 dport=53 proto=udp");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ethernet;
pub mod export;
pub mod exporter;
pub mod ipfix;
pub mod ipv4;
pub mod ipv6;
pub mod limits;
pub mod netflow5;
pub mod netflow9;
pub mod pcap;
pub mod record;
pub mod tcp;
pub mod testpkt;
pub mod udp;

mod meta;

pub use ethernet::{EtherType, EthernetFrame};
pub use export::{
    decode_export_packet, decode_export_packet_at, DecoderStats, ExportDecoder, ExportFormat,
};
pub use exporter::{FlowCache, FlowCacheConfig};
pub use ipv4::Ipv4Packet;
pub use ipv6::Ipv6Packet;
pub use limits::DecoderLimits;
pub use meta::{parse_ethernet, parse_ip, PacketMeta};
pub use record::FlowRecord;
pub use tcp::TcpSegment;
pub use udp::UdpDatagram;

use core::fmt;

/// Errors raised while parsing wire formats. Parsing never panics on
/// malformed input; it returns one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer is shorter than the format requires.
    Truncated,
    /// A length/field value is inconsistent with the buffer.
    Malformed(&'static str),
    /// Valid but not supported by this implementation.
    Unsupported(&'static str),
    /// A checksum did not verify.
    BadChecksum,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated => f.write_str("truncated packet"),
            ParseError::Malformed(what) => write!(f, "malformed packet: {what}"),
            ParseError::Unsupported(what) => write!(f, "unsupported: {what}"),
            ParseError::BadChecksum => f.write_str("bad checksum"),
        }
    }
}

impl std::error::Error for ParseError {}

/// RFC 1071 Internet checksum over `data`, folded, starting from an
/// `initial` unfolded partial sum (use 0, or a pseudo-header sum).
pub fn internet_checksum(data: &[u8], initial: u32) -> u16 {
    let mut sum = initial;
    let mut chunks = data.chunks_exact(2);
    for c in chunks.by_ref() {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_of_zeroes_is_ffff() {
        assert_eq!(internet_checksum(&[0, 0, 0, 0], 0), 0xffff);
    }

    #[test]
    fn checksum_odd_length_pads_right() {
        let even = internet_checksum(&[0x12, 0x34, 0xab, 0x00], 0);
        let odd = internet_checksum(&[0x12, 0x34, 0xab], 0);
        assert_eq!(even, odd);
    }

    #[test]
    fn checksum_verifies_to_zero() {
        // A buffer containing its own checksum verifies (sum == 0).
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x00, 0x00];
        let ck = internet_checksum(&data, 0);
        data.extend_from_slice(&ck.to_be_bytes());
        assert_eq!(internet_checksum(&data, 0), 0);
    }

    #[test]
    fn checksum_known_value() {
        // Hand-computed: 0x0001 + 0x0203 = 0x0204 → !0x0204 = 0xfdfb.
        assert_eq!(internet_checksum(&[0x00, 0x01, 0x02, 0x03], 0), 0xfdfb);
    }
}
