//! IPv6 packets (zero-copy view). Extension headers beyond what flow
//! summarization needs are skipped, not interpreted.

use crate::ParseError;
use std::net::Ipv6Addr;

/// Fixed IPv6 header length.
pub const HEADER_LEN: usize = 40;

/// A zero-copy view of an IPv6 packet.
#[derive(Debug, Clone)]
pub struct Ipv6Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv6Packet<T> {
    /// Wraps `buffer`, validating version and payload length.
    pub fn new_checked(buffer: T) -> Result<Self, ParseError> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let pkt = Ipv6Packet { buffer };
        if pkt.buffer.as_ref()[0] >> 4 != 6 {
            return Err(ParseError::Malformed("IPv6 version"));
        }
        if HEADER_LEN + pkt.payload_len() as usize > len {
            return Err(ParseError::Malformed("IPv6 payload length"));
        }
        Ok(pkt)
    }

    /// Payload length field.
    pub fn payload_len(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Next-header field of the fixed header.
    pub fn next_header(&self) -> u8 {
        self.buffer.as_ref()[6]
    }

    /// Hop limit.
    pub fn hop_limit(&self) -> u8 {
        self.buffer.as_ref()[7]
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv6Addr {
        let b: [u8; 16] = self.buffer.as_ref()[8..24].try_into().expect("checked");
        Ipv6Addr::from(b)
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv6Addr {
        let b: [u8; 16] = self.buffer.as_ref()[24..40].try_into().expect("checked");
        Ipv6Addr::from(b)
    }

    /// The payload after the fixed header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..HEADER_LEN + self.payload_len() as usize]
    }

    /// Resolves the transport protocol by skipping the hop-by-hop,
    /// routing, and destination-options extension headers. Returns the
    /// final protocol number and its payload offset within
    /// [`payload`](Self::payload).
    pub fn upper_layer(&self) -> Result<(u8, usize), ParseError> {
        let mut next = self.next_header();
        let payload = self.payload();
        let mut off = 0usize;
        // 0 = hop-by-hop, 43 = routing, 60 = destination options.
        let mut guard = 0;
        while matches!(next, 0 | 43 | 60) {
            guard += 1;
            if guard > 8 {
                return Err(ParseError::Malformed("IPv6 extension chain too long"));
            }
            if payload.len() < off + 2 {
                return Err(ParseError::Truncated);
            }
            let hdr_len = 8 + payload[off + 1] as usize * 8;
            next = payload[off];
            if payload.len() < off + hdr_len {
                return Err(ParseError::Truncated);
            }
            off += hdr_len;
        }
        Ok((next, off))
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv6Packet<T> {
    /// Initializes a minimal fixed header (version 6, hop limit 64).
    pub fn init(buffer: T) -> Result<Self, ParseError> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let mut pkt = Ipv6Packet { buffer };
        let payload = (pkt.buffer.as_ref().len() - HEADER_LEN).min(u16::MAX as usize) as u16;
        let b = pkt.buffer.as_mut();
        b[..HEADER_LEN].fill(0);
        b[0] = 0x60;
        b[4..6].copy_from_slice(&payload.to_be_bytes());
        b[7] = 64;
        Ok(pkt)
    }

    /// Sets the next-header protocol.
    pub fn set_next_header(&mut self, proto: u8) {
        self.buffer.as_mut()[6] = proto;
    }

    /// Sets the source address.
    pub fn set_src_addr(&mut self, a: Ipv6Addr) {
        self.buffer.as_mut()[8..24].copy_from_slice(&a.octets());
    }

    /// Sets the destination address.
    pub fn set_dst_addr(&mut self, a: Ipv6Addr) {
        self.buffer.as_mut()[24..40].copy_from_slice(&a.octets());
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let n = self.payload_len() as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..HEADER_LEN + n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u16) -> Ipv6Addr {
        Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, n)
    }

    fn sample(payload: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        let mut pkt = Ipv6Packet::init(&mut buf[..]).unwrap();
        pkt.set_next_header(17);
        pkt.set_src_addr(addr(1));
        pkt.set_dst_addr(addr(2));
        pkt.payload_mut().copy_from_slice(payload);
        buf
    }

    #[test]
    fn build_then_parse() {
        let buf = sample(b"payload");
        let pkt = Ipv6Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.src_addr(), addr(1));
        assert_eq!(pkt.dst_addr(), addr(2));
        assert_eq!(pkt.next_header(), 17);
        assert_eq!(pkt.hop_limit(), 64);
        assert_eq!(pkt.payload(), b"payload");
        assert_eq!(pkt.upper_layer().unwrap(), (17, 0));
    }

    #[test]
    fn rejects_bad_version_and_truncation() {
        let mut buf = sample(b"");
        buf[0] = 0x40;
        assert!(Ipv6Packet::new_checked(&buf[..]).is_err());
        for n in 0..HEADER_LEN {
            assert!(Ipv6Packet::new_checked(vec![0u8; n]).is_err());
        }
    }

    #[test]
    fn skips_extension_headers() {
        // hop-by-hop (8 bytes) then UDP.
        let mut inner = vec![0u8; 8 + 4];
        inner[0] = 17; // next header after hop-by-hop = UDP
        inner[1] = 0; // length 0 → 8 bytes
        let mut buf = sample(&inner);
        let hbh = 0u8;
        buf[6] = hbh;
        let pkt = Ipv6Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.upper_layer().unwrap(), (17, 8));
    }

    #[test]
    fn extension_loop_bounded() {
        // A self-referencing hop-by-hop chain must error, not spin.
        let mut inner = vec![0u8; 64];
        for i in (0..64).step_by(8) {
            inner[i] = 0; // next = hop-by-hop again
            inner[i + 1] = 0;
        }
        let mut buf = sample(&inner);
        buf[6] = 0;
        let pkt = Ipv6Packet::new_checked(&buf[..]).unwrap();
        assert!(pkt.upper_layer().is_err());
    }

    #[test]
    fn truncated_extension_errors() {
        let mut buf = sample(&[17u8, 3]); // claims 8+24 bytes, has 2
        buf[6] = 0;
        let pkt = Ipv6Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.upper_layer().unwrap_err(), ParseError::Truncated);
    }
}
