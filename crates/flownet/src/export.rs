//! Unified decoding of router export packets — NetFlow v5, NetFlow v9,
//! and IPFIX behind one entry point.
//!
//! The paper's Fig. 1 routers "export … using APIs such as NetFlow";
//! in the field that means a UDP socket receiving a mix of dialects,
//! distinguishable by the version word every export packet leads with
//! (v5 = 5, v9 = 9, IPFIX = 10). [`ExportDecoder`] owns the template
//! caches the stateful dialects need; [`decode_export_packet`]
//! dispatches each payload to the right decoder through it, so an
//! ingest pipeline can treat "bytes from a router" as one stream
//! regardless of format.

use crate::limits::DecoderLimits;
use crate::record::FlowRecord;
use crate::{ipfix, netflow5, netflow9, ParseError};

/// The export dialect a packet was decoded from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExportFormat {
    /// Fixed-format NetFlow version 5.
    NetflowV5,
    /// Template-based NetFlow version 9 (RFC 3954).
    NetflowV9,
    /// IPFIX (RFC 7011).
    Ipfix,
}

impl ExportFormat {
    /// Short lowercase name (`"netflow5"`, `"netflow9"`, `"ipfix"`).
    pub fn name(self) -> &'static str {
        match self {
            ExportFormat::NetflowV5 => "netflow5",
            ExportFormat::NetflowV9 => "netflow9",
            ExportFormat::Ipfix => "ipfix",
        }
    }
}

impl core::fmt::Display for ExportFormat {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Aggregated hardening counters across an [`ExportDecoder`]'s
/// template caches, plus the running record-drop count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecoderStats {
    /// Templates currently cached (v9 + IPFIX).
    pub templates: usize,
    /// Templates learned (including refreshes).
    pub templates_learned: u64,
    /// Templates rejected for violating shape bounds
    /// ([`DecoderLimits::max_fields`] / `max_record_bytes`).
    pub templates_rejected: u64,
    /// Templates evicted to honor a count cap.
    pub templates_evicted_cap: u64,
    /// Templates evicted as unused past the timeout.
    pub templates_evicted_timeout: u64,
    /// Template withdrawals honored (IPFIX, RFC 7011 §8.1).
    pub templates_withdrawn: u64,
    /// Withdrawals of templates not cached (already evicted or never
    /// learned) — counted, never fatal.
    pub withdrawals_unknown: u64,
    /// Data records/sets dropped for lack of a template or usable
    /// addresses (`drop_events_without_templates` semantics: counted
    /// and dropped, never buffered).
    pub records_skipped: u64,
}

/// A format-agnostic export-packet decoder: the state (v9 and IPFIX
/// template caches) for one exporter-facing socket.
#[derive(Debug, Default)]
pub struct ExportDecoder {
    v9: netflow9::Decoder,
    ipfix: ipfix::Decoder,
    records_skipped: u64,
}

impl ExportDecoder {
    /// Creates a decoder with empty template caches and default
    /// [`DecoderLimits`].
    pub fn new() -> ExportDecoder {
        ExportDecoder::default()
    }

    /// Creates a decoder whose template caches enforce `limits`.
    pub fn with_limits(limits: DecoderLimits) -> ExportDecoder {
        ExportDecoder {
            v9: netflow9::Decoder::with_limits(limits),
            ipfix: ipfix::Decoder::with_limits(limits),
            records_skipped: 0,
        }
    }

    /// Templates currently cached across the stateful dialects.
    pub fn template_count(&self) -> usize {
        self.v9.template_count() + self.ipfix.template_count()
    }

    /// Hardening counters summed over both template caches. Every
    /// template a hostile exporter flooded at this decoder is either
    /// live (`templates`), `templates_rejected`, withdrawn, or in one
    /// of the two eviction counters — nothing disappears unaccounted.
    pub fn stats(&self) -> DecoderStats {
        let v9 = self.v9.template_stats();
        let ipfix = self.ipfix.template_stats();
        DecoderStats {
            templates: self.template_count(),
            templates_learned: v9.learned + ipfix.learned,
            templates_rejected: v9.rejected + ipfix.rejected,
            templates_evicted_cap: v9.evicted_cap + ipfix.evicted_cap,
            templates_evicted_timeout: v9.evicted_timeout + ipfix.evicted_timeout,
            templates_withdrawn: v9.withdrawn + ipfix.withdrawn,
            withdrawals_unknown: v9.withdrawn_unknown + ipfix.withdrawn_unknown,
            records_skipped: self.records_skipped,
        }
    }
}

/// Decodes one export packet of any supported dialect through
/// `decoder`'s template caches, dispatching on the leading version
/// word. Records carried by templates not yet learned degrade
/// gracefully (skipped, not fatal), exactly as in the per-dialect
/// decoders. This is the single entry point ingest loops use —
/// [`ExportDecoder`] itself only carries the state.
pub fn decode_export_packet(
    decoder: &mut ExportDecoder,
    payload: &[u8],
) -> Result<(ExportFormat, Vec<FlowRecord>), ParseError> {
    decode_export_packet_at(decoder, payload, 0)
}

/// Like [`decode_export_packet`], advancing the template caches'
/// injected clock to `now_ms` first so idle templates age out
/// ([`DecoderLimits::template_timeout_ms`]). A regressing clock is
/// clamped; passing 0 leaves time unchanged.
pub fn decode_export_packet_at(
    decoder: &mut ExportDecoder,
    payload: &[u8],
    now_ms: u64,
) -> Result<(ExportFormat, Vec<FlowRecord>), ParseError> {
    if payload.len() < 2 {
        return Err(ParseError::Truncated);
    }
    match u16::from_be_bytes([payload[0], payload[1]]) {
        netflow5::VERSION => netflow5::decode(payload).map(|(_, r)| (ExportFormat::NetflowV5, r)),
        netflow9::VERSION => decoder.v9.decode_at(payload, now_ms).map(|(r, info)| {
            decoder.records_skipped += info.records_skipped as u64;
            (ExportFormat::NetflowV9, r)
        }),
        ipfix::VERSION => decoder
            .ipfix
            .decode_message_at(payload, now_ms)
            .map(|(r, info)| {
                decoder.records_skipped += info.records_skipped as u64;
                (ExportFormat::Ipfix, r)
            }),
        _ => Err(ParseError::Unsupported("unknown export version")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records(n: usize) -> Vec<FlowRecord> {
        (0..n)
            .map(|i| {
                let mut r = FlowRecord::v4(
                    [10, 1, 0, (i % 200) as u8],
                    [192, 0, 2, 9],
                    2000 + i as u16,
                    443,
                    6,
                    4 + i as u64,
                    400,
                );
                r.first_ms = 1_700_000_000_000;
                r.last_ms = r.first_ms + 250;
                r
            })
            .collect()
    }

    #[test]
    fn dispatches_all_three_dialects_through_one_decoder() {
        let records = sample_records(5);
        let base_ms = 1_700_000_001_000;
        let mut dec = ExportDecoder::new();

        let v5 = netflow5::encode(&records, base_ms, 1);
        let (fmt, got) = decode_export_packet(&mut dec, &v5).unwrap();
        assert_eq!(fmt, ExportFormat::NetflowV5);
        assert_eq!(got.len(), 5);

        let v9 = netflow9::encode(&records, base_ms, 2, 7);
        let (fmt, got) = decode_export_packet(&mut dec, &v9).unwrap();
        assert_eq!(fmt, ExportFormat::NetflowV9);
        assert_eq!(got.len(), 5);

        let fix = ipfix::encode_message(&records, 1_700_000_001, 3, 7, true);
        let (fmt, got) = decode_export_packet(&mut dec, &fix).unwrap();
        assert_eq!(fmt, ExportFormat::Ipfix);
        assert_eq!(got.len(), 5);

        assert!(dec.template_count() >= 2, "v9 + ipfix templates cached");
    }

    #[test]
    fn template_state_persists_across_packets() {
        let records = sample_records(3);
        let mut dec = ExportDecoder::new();
        // v9 data before its template: skipped, not fatal.
        let pkt = netflow9::encode(&records, 1_700_000_001_000, 1, 5);
        let tset_len =
            u16::from_be_bytes([pkt[netflow9::HEADER_LEN + 2], pkt[netflow9::HEADER_LEN + 3]])
                as usize;
        let mut data_only = pkt[..netflow9::HEADER_LEN].to_vec();
        data_only.extend_from_slice(&pkt[netflow9::HEADER_LEN + tset_len..]);
        let (_, got) = decode_export_packet(&mut dec, &data_only).unwrap();
        assert!(got.is_empty());
        // Learn the template, then the bare data set decodes.
        decode_export_packet(&mut dec, &pkt).unwrap();
        let (_, got) = decode_export_packet(&mut dec, &data_only).unwrap();
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn rejects_unknown_versions_and_stubs() {
        let mut dec = ExportDecoder::new();
        assert_eq!(
            decode_export_packet(&mut dec, &[]),
            Err(ParseError::Truncated)
        );
        assert_eq!(
            decode_export_packet(&mut dec, &[0x00]),
            Err(ParseError::Truncated)
        );
        assert!(matches!(
            decode_export_packet(&mut dec, &[0x00, 0x07, 0xaa, 0xbb]),
            Err(ParseError::Unsupported(_))
        ));
    }
}
