//! Well-formed packet builders.
//!
//! Used by unit tests, the synthetic trace generator, and the examples
//! to produce byte-accurate frames (correct lengths and checksums) so
//! the parsing path is exercised exactly as it would be on a real
//! capture.

use crate::ethernet::{self, EtherType, EthernetFrame};
use crate::ipv4::{self, Ipv4Packet};
use crate::ipv6::{self, Ipv6Packet};
use crate::tcp::{self, TcpSegment};
use crate::udp::{self, UdpDatagram};
use std::net::{Ipv4Addr, Ipv6Addr};

const SRC_MAC: [u8; 6] = [0x02, 0, 0, 0, 0, 0x01];
const DST_MAC: [u8; 6] = [0x02, 0, 0, 0, 0, 0x02];

fn eth_frame(ethertype: EtherType, l3_len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; ethernet::HEADER_LEN + l3_len];
    let mut eth = EthernetFrame::new_checked(&mut buf[..]).expect("sized");
    eth.set_src_mac(SRC_MAC);
    eth.set_dst_mac(DST_MAC);
    eth.set_ethertype(ethertype);
    buf
}

/// A UDP-over-IPv4 Ethernet frame with valid checksums.
pub fn udp4(src: [u8; 4], dst: [u8; 4], sport: u16, dport: u16, payload: &[u8]) -> Vec<u8> {
    let l4_len = udp::HEADER_LEN + payload.len();
    let l3_len = ipv4::MIN_HEADER_LEN + l4_len;
    let mut buf = eth_frame(EtherType::Ipv4, l3_len);
    let mut ip = Ipv4Packet::init(&mut buf[ethernet::HEADER_LEN..]).expect("sized");
    ip.set_protocol(17);
    ip.set_src_addr(Ipv4Addr::from(src));
    ip.set_dst_addr(Ipv4Addr::from(dst));
    let pseudo = ip.pseudo_header_sum(l4_len as u16);
    {
        let mut u = UdpDatagram::init(ip.payload_mut()).expect("sized");
        u.set_src_port(sport);
        u.set_dst_port(dport);
        u.payload_mut().copy_from_slice(payload);
        u.fill_checksum(pseudo);
    }
    ip.fill_checksum();
    buf
}

/// A TCP-over-IPv4 Ethernet frame with valid checksums.
pub fn tcp4(src: [u8; 4], dst: [u8; 4], sport: u16, dport: u16, payload: &[u8]) -> Vec<u8> {
    let l4_len = tcp::MIN_HEADER_LEN + payload.len();
    let l3_len = ipv4::MIN_HEADER_LEN + l4_len;
    let mut buf = eth_frame(EtherType::Ipv4, l3_len);
    let mut ip = Ipv4Packet::init(&mut buf[ethernet::HEADER_LEN..]).expect("sized");
    ip.set_protocol(6);
    ip.set_src_addr(Ipv4Addr::from(src));
    ip.set_dst_addr(Ipv4Addr::from(dst));
    let pseudo = ip.pseudo_header_sum(l4_len as u16);
    {
        let mut t = TcpSegment::init(ip.payload_mut()).expect("sized");
        t.set_src_port(sport);
        t.set_dst_port(dport);
        t.set_flags(tcp::flags::ACK);
        t.payload_mut().copy_from_slice(payload);
        t.fill_checksum(pseudo);
    }
    ip.fill_checksum();
    buf
}

/// An IPv4 Ethernet frame with an arbitrary protocol payload
/// (e.g. ICMP), valid IP checksum.
pub fn ipv4_proto(src: [u8; 4], dst: [u8; 4], proto: u8, payload: &[u8]) -> Vec<u8> {
    let l3_len = ipv4::MIN_HEADER_LEN + payload.len();
    let mut buf = eth_frame(EtherType::Ipv4, l3_len);
    let mut ip = Ipv4Packet::init(&mut buf[ethernet::HEADER_LEN..]).expect("sized");
    ip.set_protocol(proto);
    ip.set_src_addr(Ipv4Addr::from(src));
    ip.set_dst_addr(Ipv4Addr::from(dst));
    ip.payload_mut().copy_from_slice(payload);
    ip.fill_checksum();
    buf
}

/// A UDP-over-IPv6 Ethernet frame (addresses `2001:db8::<n>`).
pub fn udp6(src_low: u16, dst_low: u16, sport: u16, dport: u16, payload: &[u8]) -> Vec<u8> {
    let l4_len = udp::HEADER_LEN + payload.len();
    let l3_len = ipv6::HEADER_LEN + l4_len;
    let mut buf = eth_frame(EtherType::Ipv6, l3_len);
    let mut ip = Ipv6Packet::init(&mut buf[ethernet::HEADER_LEN..]).expect("sized");
    ip.set_next_header(17);
    ip.set_src_addr(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, src_low));
    ip.set_dst_addr(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, dst_low));
    {
        let mut u = UdpDatagram::init(ip.payload_mut()).expect("sized");
        u.set_src_port(sport);
        u.set_dst_port(dport);
        u.payload_mut().copy_from_slice(payload);
        u.fill_checksum(0); // pseudo-header sum elided for test frames
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Ipv4Packet;

    #[test]
    fn udp4_frames_are_internally_consistent() {
        let frame = udp4([1, 2, 3, 4], [5, 6, 7, 8], 1000, 2000, b"abcdef");
        let eth = EthernetFrame::new_checked(&frame[..]).unwrap();
        assert_eq!(eth.ethertype(), EtherType::Ipv4);
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        let pseudo = ip.pseudo_header_sum(ip.payload().len() as u16);
        let u = UdpDatagram::new_checked(ip.payload()).unwrap();
        assert!(u.verify_checksum(pseudo));
        assert_eq!(u.payload(), b"abcdef");
    }

    #[test]
    fn tcp4_frames_verify() {
        let frame = tcp4([9, 9, 9, 9], [8, 8, 8, 8], 80, 50123, b"response");
        let eth = EthernetFrame::new_checked(&frame[..]).unwrap();
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        let pseudo = ip.pseudo_header_sum(ip.payload().len() as u16);
        let t = TcpSegment::new_checked(ip.payload()).unwrap();
        assert!(t.verify_checksum(pseudo));
        assert_eq!(t.payload(), b"response");
    }
}
