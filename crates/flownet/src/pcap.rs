//! Classic libpcap capture files.
//!
//! Supports both byte orders and both timestamp resolutions
//! (`0xA1B2C3D4` microseconds, `0xA1B23C4D` nanoseconds), link types
//! Ethernet (1) and raw IP (101). This is the on-disk format the paper's
//! "existing captures" come in.

use crate::ParseError;
use std::io::{self, Read, Write};

/// Classic pcap magic, microsecond timestamps.
pub const MAGIC_MICROS: u32 = 0xA1B2_C3D4;
/// Classic pcap magic, nanosecond timestamps.
pub const MAGIC_NANOS: u32 = 0xA1B2_3C4D;

/// Link type: Ethernet.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Link type: raw IPv4/IPv6.
pub const LINKTYPE_RAW: u32 = 101;

/// Errors from reading a capture file.
#[derive(Debug)]
pub enum PcapError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The global header is not a known pcap format.
    BadMagic(u32),
    /// A structural problem in the file.
    Malformed(&'static str),
}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

impl core::fmt::Display for PcapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap i/o: {e}"),
            PcapError::BadMagic(m) => write!(f, "not a pcap file (magic {m:#010x})"),
            PcapError::Malformed(w) => write!(f, "malformed pcap: {w}"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<PcapError> for ParseError {
    fn from(_: PcapError) -> Self {
        ParseError::Malformed("pcap")
    }
}

/// One captured packet: capture timestamp plus the captured bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapPacket {
    /// Timestamp in microseconds since the Unix epoch.
    pub ts_micros: u64,
    /// Original length on the wire.
    pub orig_len: u32,
    /// Captured data (may be shorter than `orig_len` if snapped).
    pub data: Vec<u8>,
}

/// Streaming pcap reader.
#[derive(Debug)]
pub struct PcapReader<R: Read> {
    inner: R,
    swapped: bool,
    nanos: bool,
    linktype: u32,
    snaplen: u32,
}

impl<R: Read> PcapReader<R> {
    /// Reads and validates the global header.
    pub fn new(mut inner: R) -> Result<Self, PcapError> {
        let mut hdr = [0u8; 24];
        inner.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes(hdr[0..4].try_into().expect("4 bytes"));
        let (swapped, nanos) = match magic {
            MAGIC_MICROS => (false, false),
            MAGIC_NANOS => (false, true),
            m if m.swap_bytes() == MAGIC_MICROS => (true, false),
            m if m.swap_bytes() == MAGIC_NANOS => (true, true),
            m => return Err(PcapError::BadMagic(m)),
        };
        let rd32 = |b: &[u8]| {
            let v = u32::from_le_bytes(b.try_into().expect("4 bytes"));
            if swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let snaplen = rd32(&hdr[16..20]);
        let linktype = rd32(&hdr[20..24]);
        if snaplen == 0 || snaplen > 256 * 1024 * 1024 {
            return Err(PcapError::Malformed("snaplen"));
        }
        Ok(PcapReader {
            inner,
            swapped,
            nanos,
            linktype,
            snaplen,
        })
    }

    /// The capture's link type (1 = Ethernet, 101 = raw IP).
    pub fn linktype(&self) -> u32 {
        self.linktype
    }

    /// The capture's snap length.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Reads the next packet; `Ok(None)` at a clean end of file.
    pub fn next_packet(&mut self) -> Result<Option<PcapPacket>, PcapError> {
        let mut hdr = [0u8; 16];
        match self.inner.read_exact(&mut hdr) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let rd32 = |b: &[u8]| {
            let v = u32::from_le_bytes(b.try_into().expect("4 bytes"));
            if self.swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let ts_sec = rd32(&hdr[0..4]) as u64;
        let ts_frac = rd32(&hdr[4..8]) as u64;
        let incl_len = rd32(&hdr[8..12]);
        let orig_len = rd32(&hdr[12..16]);
        if incl_len > self.snaplen.max(65_535) {
            return Err(PcapError::Malformed("incl_len exceeds snaplen"));
        }
        let mut data = vec![0u8; incl_len as usize];
        self.inner.read_exact(&mut data)?;
        let ts_micros = if self.nanos {
            ts_sec * 1_000_000 + ts_frac / 1_000
        } else {
            ts_sec * 1_000_000 + ts_frac
        };
        Ok(Some(PcapPacket {
            ts_micros,
            orig_len,
            data,
        }))
    }

    /// Iterator over all remaining packets.
    pub fn packets(self) -> PcapIter<R> {
        PcapIter { reader: self }
    }
}

/// Iterator adapter for [`PcapReader`].
#[derive(Debug)]
pub struct PcapIter<R: Read> {
    reader: PcapReader<R>,
}

impl<R: Read> Iterator for PcapIter<R> {
    type Item = Result<PcapPacket, PcapError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.reader.next_packet().transpose()
    }
}

/// Streaming pcap writer (classic microsecond format, native byte order
/// = little-endian as written by this implementation).
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    inner: W,
    snaplen: u32,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the global header for the given link type.
    pub fn new(mut inner: W, linktype: u32) -> Result<Self, PcapError> {
        let snaplen: u32 = 65_535;
        inner.write_all(&MAGIC_MICROS.to_le_bytes())?;
        inner.write_all(&2u16.to_le_bytes())?; // version major
        inner.write_all(&4u16.to_le_bytes())?; // version minor
        inner.write_all(&0i32.to_le_bytes())?; // thiszone
        inner.write_all(&0u32.to_le_bytes())?; // sigfigs
        inner.write_all(&snaplen.to_le_bytes())?;
        inner.write_all(&linktype.to_le_bytes())?;
        Ok(PcapWriter { inner, snaplen })
    }

    /// Appends one packet, snapping to the writer's snap length.
    pub fn write_packet(&mut self, ts_micros: u64, data: &[u8]) -> Result<(), PcapError> {
        let incl = data.len().min(self.snaplen as usize);
        self.inner
            .write_all(&((ts_micros / 1_000_000) as u32).to_le_bytes())?;
        self.inner
            .write_all(&((ts_micros % 1_000_000) as u32).to_le_bytes())?;
        self.inner.write_all(&(incl as u32).to_le_bytes())?;
        self.inner.write_all(&(data.len() as u32).to_le_bytes())?;
        self.inner.write_all(&data[..incl])?;
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> Result<W, PcapError> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testpkt;

    fn roundtrip_packets() -> Vec<Vec<u8>> {
        vec![
            testpkt::udp4([10, 0, 0, 1], [10, 0, 0, 2], 1000, 53, b"a"),
            testpkt::tcp4([10, 0, 0, 3], [10, 0, 0, 4], 2000, 80, b"bb"),
            testpkt::udp6(1, 2, 3000, 443, b"ccc"),
        ]
    }

    #[test]
    fn write_then_read_back() {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, LINKTYPE_ETHERNET).unwrap();
            for (i, p) in roundtrip_packets().iter().enumerate() {
                w.write_packet(1_700_000_000_000_000 + i as u64, p).unwrap();
            }
            w.finish().unwrap();
        }
        let r = PcapReader::new(&buf[..]).unwrap();
        assert_eq!(r.linktype(), LINKTYPE_ETHERNET);
        let got: Vec<_> = r.packets().map(|p| p.unwrap()).collect();
        assert_eq!(got.len(), 3);
        for (i, (g, want)) in got.iter().zip(roundtrip_packets()).enumerate() {
            assert_eq!(g.data, want, "packet {i}");
            assert_eq!(g.ts_micros, 1_700_000_000_000_000 + i as u64);
            assert_eq!(g.orig_len as usize, want.len());
        }
    }

    #[test]
    fn reads_big_endian_captures() {
        // Hand-build a big-endian capture with one raw-IP packet.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_MICROS.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&65535u32.to_be_bytes());
        buf.extend_from_slice(&LINKTYPE_RAW.to_be_bytes());
        let payload = [0x45u8, 0, 0, 20];
        buf.extend_from_slice(&7u32.to_be_bytes()); // ts_sec
        buf.extend_from_slice(&500_000u32.to_be_bytes()); // ts_usec
        buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(&payload);
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert_eq!(r.linktype(), LINKTYPE_RAW);
        let p = r.next_packet().unwrap().unwrap();
        assert_eq!(p.ts_micros, 7_500_000);
        assert_eq!(p.data, payload);
        assert!(r.next_packet().unwrap().is_none());
    }

    #[test]
    fn nanosecond_magic_scales_timestamps() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_NANOS.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&65535u32.to_le_bytes());
        buf.extend_from_slice(&LINKTYPE_RAW.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&999_999_000u32.to_le_bytes()); // ns
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(0x45);
        let mut r = PcapReader::new(&buf[..]).unwrap();
        let p = r.next_packet().unwrap().unwrap();
        assert_eq!(p.ts_micros, 1_999_999);
    }

    #[test]
    fn rejects_non_pcap() {
        assert!(matches!(
            PcapReader::new(&b"not a pcap file at all...."[..]),
            Err(PcapError::BadMagic(_))
        ));
        // Truncated global header is an I/O error.
        assert!(PcapReader::new(&[0u8; 10][..]).is_err());
    }

    #[test]
    fn truncated_record_is_an_error_not_a_packet() {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, LINKTYPE_ETHERNET).unwrap();
            w.write_packet(0, &roundtrip_packets()[0]).unwrap();
            w.finish().unwrap();
        }
        buf.truncate(buf.len() - 5);
        let r = PcapReader::new(&buf[..]).unwrap();
        let results: Vec<_> = r.packets().collect();
        assert_eq!(results.len(), 1);
        assert!(results[0].is_err());
    }

    #[test]
    fn hostile_incl_len_rejected() {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, LINKTYPE_ETHERNET).unwrap();
            w.write_packet(0, b"x").unwrap();
            w.finish().unwrap();
        }
        // Overwrite incl_len with something absurd.
        let off = 24 + 8;
        buf[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert!(matches!(r.next_packet(), Err(PcapError::Malformed(_))));
    }
}
