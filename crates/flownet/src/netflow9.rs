//! NetFlow version 9 (RFC 3954) — the template-based predecessor of
//! IPFIX that a large share of deployed routers still speak.
//!
//! v9 shares IPFIX's template/data-set shape but differs in the header
//! (20 bytes, with a sysuptime field and a *record* count instead of a
//! byte length) and in set framing details (template flowset id 0,
//! options 1, data ≥ 256). Field type numbers below 128 coincide with
//! IPFIX information elements, so the record decoding logic is shared
//! in spirit with [`crate::ipfix`] but implemented against v9 framing.

use crate::limits::{DecoderLimits, TemplateCache, TemplateCacheStats};
use crate::record::FlowRecord;
use crate::ParseError;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// NetFlow v9 version number.
pub const VERSION: u16 = 9;
/// v9 packet header length.
pub const HEADER_LEN: usize = 20;

/// v9 field types this implementation understands (== low IPFIX IEs).
pub mod field {
    /// IN_BYTES.
    pub const IN_BYTES: u16 = 1;
    /// IN_PKTS.
    pub const IN_PKTS: u16 = 2;
    /// PROTOCOL.
    pub const PROTOCOL: u16 = 4;
    /// L4_SRC_PORT.
    pub const L4_SRC_PORT: u16 = 7;
    /// IPV4_SRC_ADDR.
    pub const IPV4_SRC_ADDR: u16 = 8;
    /// L4_DST_PORT.
    pub const L4_DST_PORT: u16 = 11;
    /// IPV4_DST_ADDR.
    pub const IPV4_DST_ADDR: u16 = 12;
    /// LAST_SWITCHED (sysuptime ms).
    pub const LAST_SWITCHED: u16 = 21;
    /// FIRST_SWITCHED (sysuptime ms).
    pub const FIRST_SWITCHED: u16 = 22;
    /// IPV6_SRC_ADDR.
    pub const IPV6_SRC_ADDR: u16 = 27;
    /// IPV6_DST_ADDR.
    pub const IPV6_DST_ADDR: u16 = 28;
}

/// Template id used by our v4 encoder.
pub const TEMPLATE_V4: u16 = 260;

const FIELDS_V4: &[(u16, u16)] = &[
    (field::IPV4_SRC_ADDR, 4),
    (field::IPV4_DST_ADDR, 4),
    (field::L4_SRC_PORT, 2),
    (field::L4_DST_PORT, 2),
    (field::PROTOCOL, 1),
    (field::IN_PKTS, 4),
    (field::IN_BYTES, 4),
    (field::FIRST_SWITCHED, 4),
    (field::LAST_SWITCHED, 4),
];

/// A learned v9 template.
#[derive(Debug, Clone)]
struct Template {
    fields: Vec<(u16, u16)>,
    record_len: usize,
}

/// Summary of one decoded v9 packet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PacketInfo {
    /// sysuptime at export (ms).
    pub sys_uptime_ms: u32,
    /// Export time (seconds since epoch).
    pub unix_secs: u32,
    /// Packet sequence number.
    pub sequence: u32,
    /// Source id (like an IPFIX observation domain).
    pub source_id: u32,
    /// Templates learned from this packet.
    pub templates_learned: usize,
    /// Records skipped (unknown template).
    pub records_skipped: usize,
}

/// Encodes `records` as one v9 packet with the template flowset
/// included. `base_ms` is the epoch time of export; timestamps are
/// carried as sysuptime offsets like real routers do.
pub fn encode(records: &[FlowRecord], base_ms: u64, sequence: u32, source_id: u32) -> Vec<u8> {
    let uptime_ms: u32 = 3_600_000;
    let mut body = Vec::new();

    // Template flowset (id 0).
    let mut tset = Vec::new();
    tset.extend_from_slice(&TEMPLATE_V4.to_be_bytes());
    tset.extend_from_slice(&(FIELDS_V4.len() as u16).to_be_bytes());
    for (id, len) in FIELDS_V4 {
        tset.extend_from_slice(&id.to_be_bytes());
        tset.extend_from_slice(&len.to_be_bytes());
    }
    push_set(&mut body, 0, &tset);

    // Data flowset.
    let mut data = Vec::new();
    let mut count = 0u16;
    let rel = |t_ms: u64| -> u32 {
        (uptime_ms as u64).saturating_sub(base_ms.saturating_sub(t_ms)) as u32
    };
    for r in records {
        let (IpAddr::V4(src), IpAddr::V4(dst)) = (r.src, r.dst) else {
            continue; // our v9 template is IPv4; v6 travels via IPFIX
        };
        data.extend_from_slice(&src.octets());
        data.extend_from_slice(&dst.octets());
        data.extend_from_slice(&r.sport.to_be_bytes());
        data.extend_from_slice(&r.dport.to_be_bytes());
        data.push(r.proto);
        data.extend_from_slice(&(r.packets.min(u32::MAX as u64) as u32).to_be_bytes());
        data.extend_from_slice(&(r.bytes.min(u32::MAX as u64) as u32).to_be_bytes());
        data.extend_from_slice(&rel(r.first_ms).to_be_bytes());
        data.extend_from_slice(&rel(r.last_ms).to_be_bytes());
        count += 1;
    }
    if !data.is_empty() {
        push_set(&mut body, TEMPLATE_V4, &data);
    }

    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&VERSION.to_be_bytes());
    out.extend_from_slice(&(count + 1).to_be_bytes()); // records + template
    out.extend_from_slice(&uptime_ms.to_be_bytes());
    out.extend_from_slice(&((base_ms / 1000) as u32).to_be_bytes());
    out.extend_from_slice(&sequence.to_be_bytes());
    out.extend_from_slice(&source_id.to_be_bytes());
    out.extend_from_slice(&body);
    out
}

fn push_set(body: &mut Vec<u8>, id: u16, content: &[u8]) {
    // v9 flowsets are padded to 4-byte alignment.
    let pad = (4 - (content.len() + 4) % 4) % 4;
    body.extend_from_slice(&id.to_be_bytes());
    body.extend_from_slice(&((content.len() + 4 + pad) as u16).to_be_bytes());
    body.extend_from_slice(content);
    body.extend(std::iter::repeat_n(0u8, pad));
}

/// Stateful v9 decoder with a bounded per-source template cache (see
/// [`crate::limits`]).
#[derive(Debug, Default)]
pub struct Decoder {
    templates: TemplateCache<Template>,
}

impl Decoder {
    /// Creates an empty decoder with default [`DecoderLimits`].
    pub fn new() -> Decoder {
        Decoder::default()
    }

    /// Creates an empty decoder enforcing `limits`.
    pub fn with_limits(limits: DecoderLimits) -> Decoder {
        Decoder {
            templates: TemplateCache::new(limits),
        }
    }

    /// Cached template count.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Cached template count for one source id.
    pub fn template_count_for(&self, source: u32) -> usize {
        self.templates.domain_len(source)
    }

    /// Template-cache limit counters (evictions, rejections, ...).
    pub fn template_stats(&self) -> TemplateCacheStats {
        self.templates.stats()
    }

    /// Decodes one packet into records plus packet info.
    pub fn decode(&mut self, bytes: &[u8]) -> Result<(Vec<FlowRecord>, PacketInfo), ParseError> {
        self.decode_at(bytes, 0)
    }

    /// Like [`Decoder::decode`], advancing the cache's injected clock
    /// to `now_ms` first (drives template timeout eviction; a
    /// regressing clock is clamped).
    pub fn decode_at(
        &mut self,
        bytes: &[u8],
        now_ms: u64,
    ) -> Result<(Vec<FlowRecord>, PacketInfo), ParseError> {
        self.templates.advance(now_ms);
        if bytes.len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let rd16 = |o: usize| u16::from_be_bytes([bytes[o], bytes[o + 1]]);
        let rd32 =
            |o: usize| u32::from_be_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]);
        if rd16(0) != VERSION {
            return Err(ParseError::Malformed("netflow9 version"));
        }
        let mut info = PacketInfo {
            sys_uptime_ms: rd32(4),
            unix_secs: rd32(8),
            sequence: rd32(12),
            source_id: rd32(16),
            ..PacketInfo::default()
        };
        let base_ms = info.unix_secs as u64 * 1000;
        let uptime = info.sys_uptime_ms as u64;
        let mut records = Vec::new();
        let mut pos = HEADER_LEN;
        while pos + 4 <= bytes.len() {
            let set_id = rd16(pos);
            let set_len = rd16(pos + 2) as usize;
            if set_len < 4 || pos + set_len > bytes.len() {
                return Err(ParseError::Malformed("netflow9 flowset length"));
            }
            let content = &bytes[pos + 4..pos + set_len];
            match set_id {
                0 => info.templates_learned += self.learn(info.source_id, content)?,
                1 => { /* options templates: ignored */ }
                2..=255 => return Err(ParseError::Malformed("reserved flowset id")),
                tid => self.decode_data(
                    info.source_id,
                    tid,
                    content,
                    base_ms,
                    uptime,
                    &mut records,
                    &mut info,
                ),
            }
            pos += set_len;
        }
        Ok((records, info))
    }

    fn learn(&mut self, source: u32, mut content: &[u8]) -> Result<usize, ParseError> {
        let mut learned = 0;
        let limits = self.templates.limits();
        while content.len() >= 4 {
            let tid = u16::from_be_bytes([content[0], content[1]]);
            let count = u16::from_be_bytes([content[2], content[3]]) as usize;
            if tid < 256 {
                return Err(ParseError::Malformed("template id < 256"));
            }
            if count == 0 {
                // Padding reached (templates always have fields in v9).
                break;
            }
            if content.len() < 4 + count * 4 {
                return Err(ParseError::Truncated);
            }
            if limits.max_fields > 0 && count > limits.max_fields {
                // Oversized template: reject it, keep parsing — the
                // field list is length-delimited so we can step over.
                self.templates.reject();
                content = &content[4 + count * 4..];
                continue;
            }
            let mut fields = Vec::with_capacity(count);
            let mut record_len = 0usize;
            for i in 0..count {
                let o = 4 + i * 4;
                let id = u16::from_be_bytes([content[o], content[o + 1]]);
                let len = u16::from_be_bytes([content[o + 2], content[o + 3]]);
                fields.push((id, len));
                record_len += len as usize;
            }
            if record_len == 0 {
                return Err(ParseError::Malformed("empty template record"));
            }
            if limits.max_record_bytes > 0 && record_len > limits.max_record_bytes {
                self.templates.reject();
                content = &content[4 + count * 4..];
                continue;
            }
            self.templates
                .insert(source, tid, Template { fields, record_len });
            learned += 1;
            content = &content[4 + count * 4..];
        }
        Ok(learned)
    }

    #[allow(clippy::too_many_arguments)]
    fn decode_data(
        &mut self,
        source: u32,
        tid: u16,
        mut content: &[u8],
        base_ms: u64,
        uptime: u64,
        records: &mut Vec<FlowRecord>,
        info: &mut PacketInfo,
    ) {
        let Some(template) = self.templates.get(source, tid) else {
            info.records_skipped += 1;
            return;
        };
        let to_epoch = |up: u64| base_ms.saturating_sub(uptime.saturating_sub(up));
        while content.len() >= template.record_len {
            let mut pos = 0usize;
            let mut src: Option<IpAddr> = None;
            let mut dst: Option<IpAddr> = None;
            let mut rec = FlowRecord {
                src: IpAddr::V4(Ipv4Addr::UNSPECIFIED),
                dst: IpAddr::V4(Ipv4Addr::UNSPECIFIED),
                sport: 0,
                dport: 0,
                proto: 0,
                packets: 0,
                bytes: 0,
                first_ms: 0,
                last_ms: 0,
            };
            for &(id, len) in &template.fields {
                let f = &content[pos..pos + len as usize];
                pos += len as usize;
                match (id, len) {
                    (field::IPV4_SRC_ADDR, 4) => {
                        src = Some(IpAddr::V4(Ipv4Addr::new(f[0], f[1], f[2], f[3])))
                    }
                    (field::IPV4_DST_ADDR, 4) => {
                        dst = Some(IpAddr::V4(Ipv4Addr::new(f[0], f[1], f[2], f[3])))
                    }
                    (field::IPV6_SRC_ADDR, 16) => {
                        let o: [u8; 16] = f.try_into().expect("len 16");
                        src = Some(IpAddr::V6(Ipv6Addr::from(o)));
                    }
                    (field::IPV6_DST_ADDR, 16) => {
                        let o: [u8; 16] = f.try_into().expect("len 16");
                        dst = Some(IpAddr::V6(Ipv6Addr::from(o)));
                    }
                    (field::L4_SRC_PORT, _) => rec.sport = be(f) as u16,
                    (field::L4_DST_PORT, _) => rec.dport = be(f) as u16,
                    (field::PROTOCOL, _) => rec.proto = be(f) as u8,
                    (field::IN_PKTS, _) => rec.packets = be(f),
                    (field::IN_BYTES, _) => rec.bytes = be(f),
                    (field::FIRST_SWITCHED, _) => rec.first_ms = to_epoch(be(f)),
                    (field::LAST_SWITCHED, _) => rec.last_ms = to_epoch(be(f)),
                    _ => { /* unknown field: skipped by length */ }
                }
            }
            content = &content[template.record_len..];
            match (src, dst) {
                (Some(s), Some(d)) => {
                    rec.src = s;
                    rec.dst = d;
                    records.push(rec);
                }
                _ => info.records_skipped += 1,
            }
        }
    }
}

fn be(f: &[u8]) -> u64 {
    let mut v = 0u64;
    for &b in f.iter().take(8) {
        v = (v << 8) | b as u64;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records(n: usize) -> Vec<FlowRecord> {
        (0..n)
            .map(|i| {
                let mut r = FlowRecord::v4(
                    [10, 0, 0, (i % 250) as u8],
                    [192, 0, 2, (i % 100) as u8],
                    1024 + i as u16,
                    443,
                    6,
                    5 + i as u64,
                    700,
                );
                r.first_ms = 1_700_000_000_000 + i as u64;
                r.last_ms = r.first_ms + 100;
                r
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        let records = sample_records(7);
        let pkt = encode(&records, 1_700_000_001_000, 42, 9);
        let mut dec = Decoder::new();
        let (got, info) = dec.decode(&pkt).unwrap();
        assert_eq!(info.sequence, 42);
        assert_eq!(info.source_id, 9);
        assert_eq!(info.templates_learned, 1);
        assert_eq!(got.len(), 7);
        for (a, b) in records.iter().zip(&got) {
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert_eq!((a.sport, a.dport, a.proto), (b.sport, b.dport, b.proto));
            assert_eq!((a.packets, a.bytes), (b.packets, b.bytes));
            // v9 carries seconds-resolution export time; ms offsets
            // survive within the uptime horizon to second precision.
            assert!(
                a.first_ms.abs_diff(b.first_ms) < 1_000,
                "{} vs {}",
                a.first_ms,
                b.first_ms
            );
        }
    }

    #[test]
    fn data_before_template_is_skipped() {
        let records = sample_records(3);
        let pkt = encode(&records, 1_700_000_001_000, 1, 5);
        // Strip the template flowset: header + first set.
        let tset_len = u16::from_be_bytes([pkt[HEADER_LEN + 2], pkt[HEADER_LEN + 3]]) as usize;
        let mut data_only = pkt[..HEADER_LEN].to_vec();
        data_only.extend_from_slice(&pkt[HEADER_LEN + tset_len..]);
        let mut dec = Decoder::new();
        let (got, info) = dec.decode(&data_only).unwrap();
        assert!(got.is_empty());
        assert!(info.records_skipped > 0);
        // After learning the template, the same data decodes.
        dec.decode(&pkt).unwrap();
        let (got, _) = dec.decode(&data_only).unwrap();
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn rejects_structural_garbage() {
        let pkt = encode(&sample_records(1), 0, 0, 0);
        let mut bad = pkt.clone();
        bad[1] = 5; // version 5 ≠ 9
        assert!(Decoder::new().decode(&bad).is_err());
        let mut bad = pkt.clone();
        bad[HEADER_LEN + 2..HEADER_LEN + 4].copy_from_slice(&3u16.to_be_bytes());
        assert!(Decoder::new().decode(&bad).is_err());
        assert!(Decoder::new().decode(&pkt[..10]).is_err());
    }

    #[test]
    fn fuzz_never_panics() {
        let pkt = encode(&sample_records(4), 123_456_789, 7, 7);
        let mut dec = Decoder::new();
        for i in 0..pkt.len() {
            let mut m = pkt.clone();
            m[i] ^= 0xA5;
            let _ = dec.decode(&m);
            let _ = dec.decode(&m[..i]);
        }
    }

    #[test]
    fn v6_records_are_not_encoded_by_the_v4_template() {
        let mut records = sample_records(2);
        records.push(FlowRecord {
            src: "2001:db8::1".parse().unwrap(),
            dst: "2001:db8::2".parse().unwrap(),
            sport: 1,
            dport: 2,
            proto: 17,
            packets: 1,
            bytes: 1,
            first_ms: 0,
            last_ms: 0,
        });
        let pkt = encode(&records, 1_700_000_001_000, 0, 0);
        let mut dec = Decoder::new();
        let (got, _) = dec.decode(&pkt).unwrap();
        assert_eq!(got.len(), 2, "the v6 record is skipped, not mangled");
    }
}
