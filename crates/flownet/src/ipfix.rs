//! IPFIX (RFC 7011) — message framing, templates, and flow data sets.
//!
//! Implemented subset, enough to interoperate with a standard exporter
//! sending 5-tuple + counter records:
//!
//! * message header, template sets (id 2), data sets (id ≥ 256);
//! * a decode-side **template cache** keyed by (observation domain,
//!   template id) — data sets arriving before their template are
//!   counted, not crashed on;
//! * the standard information elements for the 5-tuple
//!   (IPv4 *and* IPv6), packet/octet delta counts, and
//!   flowStart/EndMilliseconds; unknown fixed-length elements are
//!   skipped by length, variable-length elements are skipped per
//!   RFC 7011 §7;
//! * options template sets (id 3) are skipped gracefully.

use crate::limits::{DecoderLimits, TemplateCache, TemplateCacheStats};
use crate::record::FlowRecord;
use crate::ParseError;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// IPFIX protocol version.
pub const VERSION: u16 = 10;
/// Message header length.
pub const HEADER_LEN: usize = 16;

/// Standard information element ids used by this implementation.
pub mod ie {
    /// octetDeltaCount (unsigned64).
    pub const OCTET_DELTA_COUNT: u16 = 1;
    /// packetDeltaCount (unsigned64).
    pub const PACKET_DELTA_COUNT: u16 = 2;
    /// protocolIdentifier (unsigned8).
    pub const PROTOCOL_IDENTIFIER: u16 = 4;
    /// sourceTransportPort (unsigned16).
    pub const SOURCE_TRANSPORT_PORT: u16 = 7;
    /// sourceIPv4Address.
    pub const SOURCE_IPV4_ADDRESS: u16 = 8;
    /// destinationTransportPort (unsigned16).
    pub const DESTINATION_TRANSPORT_PORT: u16 = 11;
    /// destinationIPv4Address.
    pub const DESTINATION_IPV4_ADDRESS: u16 = 12;
    /// sourceIPv6Address.
    pub const SOURCE_IPV6_ADDRESS: u16 = 27;
    /// destinationIPv6Address.
    pub const DESTINATION_IPV6_ADDRESS: u16 = 28;
    /// flowStartMilliseconds (dateTimeMilliseconds).
    pub const FLOW_START_MILLISECONDS: u16 = 152;
    /// flowEndMilliseconds (dateTimeMilliseconds).
    pub const FLOW_END_MILLISECONDS: u16 = 153;
}

/// Template id used by our IPv4 encoder.
pub const TEMPLATE_V4: u16 = 256;
/// Template id used by our IPv6 encoder.
pub const TEMPLATE_V6: u16 = 257;

const FIELDS_V4: &[(u16, u16)] = &[
    (ie::SOURCE_IPV4_ADDRESS, 4),
    (ie::DESTINATION_IPV4_ADDRESS, 4),
    (ie::SOURCE_TRANSPORT_PORT, 2),
    (ie::DESTINATION_TRANSPORT_PORT, 2),
    (ie::PROTOCOL_IDENTIFIER, 1),
    (ie::PACKET_DELTA_COUNT, 8),
    (ie::OCTET_DELTA_COUNT, 8),
    (ie::FLOW_START_MILLISECONDS, 8),
    (ie::FLOW_END_MILLISECONDS, 8),
];

const FIELDS_V6: &[(u16, u16)] = &[
    (ie::SOURCE_IPV6_ADDRESS, 16),
    (ie::DESTINATION_IPV6_ADDRESS, 16),
    (ie::SOURCE_TRANSPORT_PORT, 2),
    (ie::DESTINATION_TRANSPORT_PORT, 2),
    (ie::PROTOCOL_IDENTIFIER, 1),
    (ie::PACKET_DELTA_COUNT, 8),
    (ie::OCTET_DELTA_COUNT, 8),
    (ie::FLOW_START_MILLISECONDS, 8),
    (ie::FLOW_END_MILLISECONDS, 8),
];

/// A parsed template: field (ie, length) pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    fields: Vec<(u16, u16)>,
    record_len: usize,
    has_varlen: bool,
}

/// Summary of one decoded message.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageInfo {
    /// Export time (seconds since the epoch) from the header.
    pub export_time: u32,
    /// Sequence number from the header.
    pub sequence: u32,
    /// Observation domain id.
    pub domain: u32,
    /// Templates learned from this message.
    pub templates_learned: usize,
    /// Data records decoded into flow records.
    pub records_decoded: usize,
    /// Data records skipped (unknown template / missing addresses).
    pub records_skipped: usize,
}

/// Encodes flow records as one IPFIX message.
///
/// When `with_templates` is set the message leads with the template set
/// (send it on the first message and periodically, like a real
/// exporter). Records are split into v4/v6 data sets automatically.
pub fn encode_message(
    records: &[FlowRecord],
    export_time: u32,
    sequence: u32,
    domain: u32,
    with_templates: bool,
) -> Vec<u8> {
    let mut body = Vec::new();
    if with_templates {
        let mut tset = Vec::new();
        for (tid, fields) in [(TEMPLATE_V4, FIELDS_V4), (TEMPLATE_V6, FIELDS_V6)] {
            tset.extend_from_slice(&tid.to_be_bytes());
            tset.extend_from_slice(&(fields.len() as u16).to_be_bytes());
            for (id, len) in fields {
                tset.extend_from_slice(&id.to_be_bytes());
                tset.extend_from_slice(&len.to_be_bytes());
            }
        }
        push_set(&mut body, 2, &tset);
    }
    let mut v4 = Vec::new();
    let mut v6 = Vec::new();
    for r in records {
        match (r.src, r.dst) {
            (IpAddr::V4(s), IpAddr::V4(d)) => {
                v4.extend_from_slice(&s.octets());
                v4.extend_from_slice(&d.octets());
                push_common(&mut v4, r);
            }
            (IpAddr::V6(s), IpAddr::V6(d)) => {
                v6.extend_from_slice(&s.octets());
                v6.extend_from_slice(&d.octets());
                push_common(&mut v6, r);
            }
            _ => {
                // Mixed-family records cannot exist on the wire; encode
                // as v6-mapped would be misleading, so skip.
            }
        }
    }
    if !v4.is_empty() {
        push_set(&mut body, TEMPLATE_V4, &v4);
    }
    if !v6.is_empty() {
        push_set(&mut body, TEMPLATE_V6, &v6);
    }
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&VERSION.to_be_bytes());
    out.extend_from_slice(&((HEADER_LEN + body.len()) as u16).to_be_bytes());
    out.extend_from_slice(&export_time.to_be_bytes());
    out.extend_from_slice(&sequence.to_be_bytes());
    out.extend_from_slice(&domain.to_be_bytes());
    out.extend_from_slice(&body);
    out
}

fn push_common(buf: &mut Vec<u8>, r: &FlowRecord) {
    buf.extend_from_slice(&r.sport.to_be_bytes());
    buf.extend_from_slice(&r.dport.to_be_bytes());
    buf.push(r.proto);
    buf.extend_from_slice(&r.packets.to_be_bytes());
    buf.extend_from_slice(&r.bytes.to_be_bytes());
    buf.extend_from_slice(&r.first_ms.to_be_bytes());
    buf.extend_from_slice(&r.last_ms.to_be_bytes());
}

fn push_set(body: &mut Vec<u8>, set_id: u16, content: &[u8]) {
    body.extend_from_slice(&set_id.to_be_bytes());
    body.extend_from_slice(&((content.len() + 4) as u16).to_be_bytes());
    body.extend_from_slice(content);
}

/// A stateful IPFIX decoder with a bounded template cache (see
/// [`crate::limits`]).
#[derive(Debug, Default)]
pub struct Decoder {
    templates: TemplateCache<Template>,
}

impl Decoder {
    /// Creates an empty decoder with default [`DecoderLimits`].
    pub fn new() -> Decoder {
        Decoder::default()
    }

    /// Creates an empty decoder enforcing `limits`.
    pub fn with_limits(limits: DecoderLimits) -> Decoder {
        Decoder {
            templates: TemplateCache::new(limits),
        }
    }

    /// Number of cached templates.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Cached template count for one observation domain.
    pub fn template_count_for(&self, domain: u32) -> usize {
        self.templates.domain_len(domain)
    }

    /// Template-cache limit counters (evictions, withdrawals, ...).
    pub fn template_stats(&self) -> TemplateCacheStats {
        self.templates.stats()
    }

    /// Decodes one message, learning templates and extracting flow
    /// records. Unknown templates and elements degrade gracefully into
    /// `records_skipped`; structural violations return errors.
    pub fn decode_message(
        &mut self,
        bytes: &[u8],
    ) -> Result<(Vec<FlowRecord>, MessageInfo), ParseError> {
        self.decode_message_at(bytes, 0)
    }

    /// Like [`Decoder::decode_message`], advancing the cache's injected
    /// clock to `now_ms` first (drives template timeout eviction; a
    /// regressing clock is clamped).
    pub fn decode_message_at(
        &mut self,
        bytes: &[u8],
        now_ms: u64,
    ) -> Result<(Vec<FlowRecord>, MessageInfo), ParseError> {
        self.templates.advance(now_ms);
        if bytes.len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let rd16 = |o: usize| u16::from_be_bytes([bytes[o], bytes[o + 1]]);
        let rd32 =
            |o: usize| u32::from_be_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]);
        if rd16(0) != VERSION {
            return Err(ParseError::Malformed("ipfix version"));
        }
        let msg_len = rd16(2) as usize;
        if msg_len < HEADER_LEN || msg_len > bytes.len() {
            return Err(ParseError::Malformed("ipfix message length"));
        }
        let mut info = MessageInfo {
            export_time: rd32(4),
            sequence: rd32(8),
            domain: rd32(12),
            ..MessageInfo::default()
        };
        let mut records = Vec::new();
        let mut pos = HEADER_LEN;
        while pos < msg_len {
            if msg_len - pos < 4 {
                return Err(ParseError::Malformed("ipfix set header"));
            }
            let set_id = rd16(pos);
            let set_len = rd16(pos + 2) as usize;
            if set_len < 4 || pos + set_len > msg_len {
                return Err(ParseError::Malformed("ipfix set length"));
            }
            let content = &bytes[pos + 4..pos + set_len];
            match set_id {
                2 => info.templates_learned += self.learn_templates(info.domain, content)?,
                3 => { /* options templates: valid, ignored */ }
                0 | 1 | 4..=255 => return Err(ParseError::Malformed("reserved set id")),
                tid => self.decode_data_set(info.domain, tid, content, &mut records, &mut info),
            }
            pos += set_len;
        }
        info.records_decoded = records.len();
        Ok((records, info))
    }

    fn learn_templates(&mut self, domain: u32, mut content: &[u8]) -> Result<usize, ParseError> {
        let mut learned = 0;
        let limits = self.templates.limits();
        // Trailing padding shorter than a template header is legal.
        while content.len() >= 4 {
            let tid = u16::from_be_bytes([content[0], content[1]]);
            let field_count = u16::from_be_bytes([content[2], content[3]]) as usize;
            if tid < 256 {
                return Err(ParseError::Malformed("template id < 256"));
            }
            if field_count == 0 {
                // Template withdrawal (RFC 7011 §8.1). Withdrawing a
                // template we already evicted (or never had) is
                // counted by the cache, never an error.
                self.templates.remove(domain, tid);
                content = &content[4..];
                continue;
            }
            if limits.max_fields > 0 && field_count > limits.max_fields {
                // Oversized template: walk its field list (lengths are
                // self-delimiting) without caching it.
                let mut off = 4;
                for _ in 0..field_count {
                    if content.len() < off + 4 {
                        return Err(ParseError::Truncated);
                    }
                    let raw_id = u16::from_be_bytes([content[off], content[off + 1]]);
                    off += 4;
                    if raw_id & 0x8000 != 0 {
                        if content.len() < off + 4 {
                            return Err(ParseError::Truncated);
                        }
                        off += 4;
                    }
                }
                self.templates.reject();
                content = &content[off..];
                continue;
            }
            let mut fields = Vec::with_capacity(field_count);
            let mut off = 4;
            let mut record_len = 0usize;
            let mut has_varlen = false;
            for _ in 0..field_count {
                if content.len() < off + 4 {
                    return Err(ParseError::Truncated);
                }
                let raw_id = u16::from_be_bytes([content[off], content[off + 1]]);
                let len = u16::from_be_bytes([content[off + 2], content[off + 3]]);
                off += 4;
                if raw_id & 0x8000 != 0 {
                    // Enterprise element: 4 more bytes of enterprise id;
                    // we skip its semantics but honor its length.
                    if content.len() < off + 4 {
                        return Err(ParseError::Truncated);
                    }
                    off += 4;
                    fields.push((0xffff, len)); // opaque
                } else {
                    fields.push((raw_id, len));
                }
                if len == 0xffff {
                    has_varlen = true;
                } else {
                    record_len += len as usize;
                }
            }
            if limits.max_record_bytes > 0 && record_len > limits.max_record_bytes {
                self.templates.reject();
                content = &content[off..];
                continue;
            }
            self.templates.insert(
                domain,
                tid,
                Template {
                    fields,
                    record_len,
                    has_varlen,
                },
            );
            learned += 1;
            content = &content[off..];
        }
        Ok(learned)
    }

    fn decode_data_set(
        &mut self,
        domain: u32,
        tid: u16,
        mut content: &[u8],
        records: &mut Vec<FlowRecord>,
        info: &mut MessageInfo,
    ) {
        let Some(template) = self.templates.get(domain, tid) else {
            // Data before its template: count every byte as skipped work.
            info.records_skipped += 1;
            return;
        };
        let min_len = if template.has_varlen {
            template.record_len + 1
        } else {
            template.record_len
        };
        while content.len() >= min_len && min_len > 0 {
            match decode_record(template, content) {
                Some((rec, used)) => {
                    if let Some(r) = rec {
                        records.push(r);
                    } else {
                        info.records_skipped += 1;
                    }
                    content = &content[used..];
                }
                None => {
                    info.records_skipped += 1;
                    return; // malformed varlen tail: stop this set
                }
            }
        }
    }
}

/// Decodes one record; returns (record-or-skip, bytes consumed), or
/// `None` when the buffer cannot hold the record.
fn decode_record(template: &Template, buf: &[u8]) -> Option<(Option<FlowRecord>, usize)> {
    let mut pos = 0usize;
    let mut src: Option<IpAddr> = None;
    let mut dst: Option<IpAddr> = None;
    let mut rec = FlowRecord {
        src: IpAddr::V4(Ipv4Addr::UNSPECIFIED),
        dst: IpAddr::V4(Ipv4Addr::UNSPECIFIED),
        sport: 0,
        dport: 0,
        proto: 0,
        packets: 0,
        bytes: 0,
        first_ms: 0,
        last_ms: 0,
    };
    for &(id, len) in &template.fields {
        let flen = if len == 0xffff {
            // RFC 7011 §7: variable length, 1-byte (or 3-byte) prefix.
            let first = *buf.get(pos)? as usize;
            if first < 255 {
                pos += 1;
                first
            } else {
                let hi = *buf.get(pos + 1)? as usize;
                let lo = *buf.get(pos + 2)? as usize;
                pos += 3;
                (hi << 8) | lo
            }
        } else {
            len as usize
        };
        let field = buf.get(pos..pos + flen)?;
        pos += flen;
        match (id, flen) {
            (ie::SOURCE_IPV4_ADDRESS, 4) => {
                src = Some(IpAddr::V4(Ipv4Addr::new(
                    field[0], field[1], field[2], field[3],
                )));
            }
            (ie::DESTINATION_IPV4_ADDRESS, 4) => {
                dst = Some(IpAddr::V4(Ipv4Addr::new(
                    field[0], field[1], field[2], field[3],
                )));
            }
            (ie::SOURCE_IPV6_ADDRESS, 16) => {
                let o: [u8; 16] = field.try_into().ok()?;
                src = Some(IpAddr::V6(Ipv6Addr::from(o)));
            }
            (ie::DESTINATION_IPV6_ADDRESS, 16) => {
                let o: [u8; 16] = field.try_into().ok()?;
                dst = Some(IpAddr::V6(Ipv6Addr::from(o)));
            }
            (ie::SOURCE_TRANSPORT_PORT, _) => rec.sport = be_uint(field) as u16,
            (ie::DESTINATION_TRANSPORT_PORT, _) => rec.dport = be_uint(field) as u16,
            (ie::PROTOCOL_IDENTIFIER, _) => rec.proto = be_uint(field) as u8,
            (ie::PACKET_DELTA_COUNT, _) => rec.packets = be_uint(field),
            (ie::OCTET_DELTA_COUNT, _) => rec.bytes = be_uint(field),
            (ie::FLOW_START_MILLISECONDS, _) => rec.first_ms = be_uint(field),
            (ie::FLOW_END_MILLISECONDS, _) => rec.last_ms = be_uint(field),
            _ => { /* unknown or opaque: skipped by length */ }
        }
    }
    match (src, dst) {
        (Some(s), Some(d)) => {
            rec.src = s;
            rec.dst = d;
            Some((Some(rec), pos))
        }
        _ => Some((None, pos)), // a record without addresses is not a flow
    }
}

/// Big-endian unsigned integer of 1..=8 bytes (RFC 7011 reduced-size).
fn be_uint(field: &[u8]) -> u64 {
    let mut v = 0u64;
    for &b in field.iter().take(8) {
        v = (v << 8) | b as u64;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<FlowRecord> {
        let mut v4 = FlowRecord::v4([10, 1, 2, 3], [192, 0, 2, 9], 5000, 443, 6, 12, 3400);
        v4.first_ms = 1_700_000_000_123;
        v4.last_ms = 1_700_000_005_456;
        let v6 = FlowRecord {
            src: "2001:db8::1".parse().unwrap(),
            dst: "2001:db8::2".parse().unwrap(),
            sport: 1234,
            dport: 53,
            proto: 17,
            packets: 2,
            bytes: 300,
            first_ms: 5,
            last_ms: 6,
        };
        vec![v4, v6]
    }

    #[test]
    fn roundtrip_v4_and_v6() {
        let records = sample_records();
        let msg = encode_message(&records, 1_700_000_000, 7, 99, true);
        let mut dec = Decoder::new();
        let (got, info) = dec.decode_message(&msg).unwrap();
        assert_eq!(info.templates_learned, 2);
        assert_eq!(info.domain, 99);
        assert_eq!(info.sequence, 7);
        assert_eq!(got, records);
        assert_eq!(info.records_decoded, 2);
        assert_eq!(info.records_skipped, 0);
    }

    #[test]
    fn data_before_template_is_skipped_then_recovers() {
        let records = sample_records();
        let with_t = encode_message(&records, 0, 0, 5, true);
        let without_t = encode_message(&records, 0, 1, 5, false);
        let mut dec = Decoder::new();
        // Data-only message first: nothing decodable.
        let (got, info) = dec.decode_message(&without_t).unwrap();
        assert!(got.is_empty());
        assert!(info.records_skipped > 0);
        // Template message: learns and decodes.
        let (got, _) = dec.decode_message(&with_t).unwrap();
        assert_eq!(got.len(), 2);
        // Subsequent data-only messages decode fine.
        let (got, info) = dec.decode_message(&without_t).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(info.records_skipped, 0);
    }

    #[test]
    fn template_withdrawal_forgets() {
        let mut dec = Decoder::new();
        let msg = encode_message(&sample_records(), 0, 0, 5, true);
        dec.decode_message(&msg).unwrap();
        assert_eq!(dec.template_count(), 2);
        // Hand-build a withdrawal for TEMPLATE_V4 (field count 0).
        let mut body = Vec::new();
        let mut tset = Vec::new();
        tset.extend_from_slice(&TEMPLATE_V4.to_be_bytes());
        tset.extend_from_slice(&0u16.to_be_bytes());
        push_set(&mut body, 2, &tset);
        let mut msg = Vec::new();
        msg.extend_from_slice(&VERSION.to_be_bytes());
        msg.extend_from_slice(&((HEADER_LEN + body.len()) as u16).to_be_bytes());
        msg.extend_from_slice(&[0; 12]);
        // Fix domain = 5 (bytes 12..16).
        msg[12..16].copy_from_slice(&5u32.to_be_bytes());
        msg.extend_from_slice(&body);
        dec.decode_message(&msg).unwrap();
        assert_eq!(dec.template_count(), 1);
    }

    #[test]
    fn unknown_elements_are_skipped_by_length() {
        // Template with an unknown IE in the middle.
        let mut tset = Vec::new();
        tset.extend_from_slice(&300u16.to_be_bytes());
        tset.extend_from_slice(&4u16.to_be_bytes());
        for (id, len) in [
            (ie::SOURCE_IPV4_ADDRESS, 4u16),
            (9999u16, 6), // unknown, 6 bytes
            (ie::DESTINATION_IPV4_ADDRESS, 4),
            (ie::PACKET_DELTA_COUNT, 4), // reduced-size counter
        ] {
            tset.extend_from_slice(&id.to_be_bytes());
            tset.extend_from_slice(&len.to_be_bytes());
        }
        let mut data = Vec::new();
        data.extend_from_slice(&[10, 0, 0, 1]);
        data.extend_from_slice(&[0xAA; 6]);
        data.extend_from_slice(&[192, 0, 2, 1]);
        data.extend_from_slice(&77u32.to_be_bytes());
        let mut body = Vec::new();
        push_set(&mut body, 2, &tset);
        push_set(&mut body, 300, &data);
        let mut msg = Vec::new();
        msg.extend_from_slice(&VERSION.to_be_bytes());
        msg.extend_from_slice(&((HEADER_LEN + body.len()) as u16).to_be_bytes());
        msg.extend_from_slice(&[0; 12]);
        msg.extend_from_slice(&body);
        let mut dec = Decoder::new();
        let (got, _) = dec.decode_message(&msg).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].src, "10.0.0.1".parse::<IpAddr>().unwrap());
        assert_eq!(got[0].packets, 77);
    }

    #[test]
    fn structural_garbage_is_rejected() {
        let msg = encode_message(&sample_records(), 0, 0, 0, true);
        // Wrong version (0x000A → 0x0009).
        let mut bad = msg.clone();
        bad[1] = 9;
        assert!(Decoder::new().decode_message(&bad).is_err());
        // Message length beyond buffer.
        let mut bad = msg.clone();
        bad[2..4].copy_from_slice(&(msg.len() as u16 + 50).to_be_bytes());
        assert!(Decoder::new().decode_message(&bad).is_err());
        // Set length overflow.
        let mut bad = msg.clone();
        bad[HEADER_LEN + 2..HEADER_LEN + 4].copy_from_slice(&0xffffu16.to_be_bytes());
        assert!(Decoder::new().decode_message(&bad).is_err());
        // Reserved set id.
        let mut bad = msg;
        bad[HEADER_LEN..HEADER_LEN + 2].copy_from_slice(&9u16.to_be_bytes());
        assert!(Decoder::new().decode_message(&bad).is_err());
        // Truncated header.
        assert!(Decoder::new().decode_message(&[0u8; 4]).is_err());
    }

    #[test]
    fn fuzz_decoder_never_panics() {
        let msg = encode_message(&sample_records(), 1, 2, 3, true);
        let mut dec = Decoder::new();
        for i in 0..msg.len() {
            let mut m = msg.clone();
            m[i] ^= 0xff;
            let _ = dec.decode_message(&m);
            let _ = dec.decode_message(&m[..i]);
        }
    }
}
