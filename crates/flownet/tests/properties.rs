//! Property tests for the wire formats: arbitrary records and packets
//! must round-trip exactly, and arbitrary bytes must never panic a
//! decoder.

use flownet::pcap::{PcapReader, PcapWriter, LINKTYPE_ETHERNET};
use flownet::{ipfix, netflow5, parse_ethernet, testpkt, FlowRecord};
use proptest::prelude::*;
use std::net::IpAddr;

fn arb_v4_record() -> impl Strategy<Value = FlowRecord> {
    (
        any::<[u8; 4]>(),
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
        1u64..u32::MAX as u64,
        1u64..u32::MAX as u64,
        0u64..4_000_000_000_000,
        0u64..3_600_000,
    )
        .prop_map(
            |(src, dst, sport, dport, proto, packets, bytes, first, dur)| {
                let mut r = FlowRecord::v4(src, dst, sport, dport, proto, packets, bytes);
                r.first_ms = first;
                r.last_ms = first + dur;
                r
            },
        )
}

fn arb_record() -> impl Strategy<Value = FlowRecord> {
    prop_oneof![
        4 => arb_v4_record(),
        1 => (arb_v4_record(), any::<u128>(), any::<u128>()).prop_map(|(mut r, s, d)| {
            r.src = IpAddr::V6(s.into());
            r.dst = IpAddr::V6(d.into());
            r
        }),
    ]
}

proptest! {
    /// NetFlow v5 encode/decode round-trips every IPv4 record field the
    /// format can carry.
    #[test]
    fn netflow5_roundtrip(
        records in proptest::collection::vec(arb_v4_record(), 1..=30),
        base_extra in 0u64..1_000_000,
        seq in any::<u32>(),
    ) {
        // v5 expresses timestamps relative to export time via sysuptime;
        // records can't be (much) newer than the export moment.
        let newest = records.iter().map(|r| r.last_ms).max().unwrap_or(0);
        let base_ms = newest + base_extra % 3_000_000;
        let bytes = netflow5::encode(&records, base_ms, seq);
        let (hdr, back) = netflow5::decode(&bytes).unwrap();
        prop_assert_eq!(hdr.count as usize, records.len());
        prop_assert_eq!(hdr.flow_sequence, seq);
        for (a, b) in records.iter().zip(&back) {
            prop_assert_eq!(a.src, b.src);
            prop_assert_eq!(a.dst, b.dst);
            prop_assert_eq!((a.sport, a.dport, a.proto), (b.sport, b.dport, b.proto));
            prop_assert_eq!((a.packets, a.bytes), (b.packets, b.bytes));
            // Timestamps survive when within the uptime horizon.
            if base_ms.saturating_sub(a.first_ms) < 3_600_000 {
                prop_assert_eq!(a.first_ms, b.first_ms);
                prop_assert_eq!(a.last_ms, b.last_ms);
            }
        }
    }

    /// NetFlow decode never panics on mutated bytes.
    #[test]
    fn netflow5_decode_fuzz(
        records in proptest::collection::vec(arb_v4_record(), 1..=5),
        flips in proptest::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 0..8),
    ) {
        let mut bytes = netflow5::encode(&records, 4_000_000_000_000, 0);
        for (idx, x) in flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= x;
        }
        let _ = netflow5::decode(&bytes);
    }

    /// IPFIX round-trips arbitrary v4/v6 record mixes.
    #[test]
    fn ipfix_roundtrip(
        records in proptest::collection::vec(arb_record(), 0..40),
        export_time in any::<u32>(),
        domain in any::<u32>(),
    ) {
        let msg = ipfix::encode_message(&records, export_time, 1, domain, true);
        let mut dec = ipfix::Decoder::new();
        let (mut got, info) = dec.decode_message(&msg).unwrap();
        // v4 and v6 records travel in separate sets, so compare as
        // multisets rather than sequences.
        let key = |r: &FlowRecord| format!("{r:?}");
        got.sort_by_key(key);
        let mut want = records.clone();
        want.sort_by_key(key);
        prop_assert_eq!(got, want);
        prop_assert_eq!(info.export_time, export_time);
        prop_assert_eq!(info.domain, domain);
        prop_assert_eq!(info.records_skipped, 0);
    }

    /// IPFIX decoder never panics on mutated bytes (stateful decoder,
    /// templates cached across messages).
    #[test]
    fn ipfix_decode_fuzz(
        records in proptest::collection::vec(arb_record(), 1..8),
        flips in proptest::collection::vec((any::<prop::sample::Index>(), 1u8..=255), 0..8),
    ) {
        let mut msg = ipfix::encode_message(&records, 0, 0, 7, true);
        let mut dec = ipfix::Decoder::new();
        let _ = dec.decode_message(&msg);
        for (idx, x) in flips {
            let i = idx.index(msg.len());
            msg[i] ^= x;
        }
        let _ = dec.decode_message(&msg);
    }

    /// pcap write→read returns identical packets in order.
    #[test]
    fn pcap_roundtrip(
        specs in proptest::collection::vec(
            (any::<[u8; 4]>(), any::<[u8; 4]>(), any::<u16>(), any::<u16>(),
             proptest::collection::vec(any::<u8>(), 0..64), any::<bool>()),
            0..20,
        ),
        base_ts in 0u64..4_000_000_000_000_000,
    ) {
        let frames: Vec<Vec<u8>> = specs
            .iter()
            .map(|(s, d, sp, dp, pay, tcp)| {
                if *tcp {
                    testpkt::tcp4(*s, *d, *sp, *dp, pay)
                } else {
                    testpkt::udp4(*s, *d, *sp, *dp, pay)
                }
            })
            .collect();
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, LINKTYPE_ETHERNET).unwrap();
            for (i, f) in frames.iter().enumerate() {
                w.write_packet(base_ts + i as u64, f).unwrap();
            }
            w.finish().unwrap();
        }
        let r = PcapReader::new(&buf[..]).unwrap();
        let got: Vec<_> = r.packets().map(|p| p.unwrap()).collect();
        prop_assert_eq!(got.len(), frames.len());
        for (i, (g, want)) in got.iter().zip(&frames).enumerate() {
            prop_assert_eq!(&g.data, want);
            prop_assert_eq!(g.ts_micros, base_ts + i as u64);
            // And every frame parses back to meta without panic.
            let meta = parse_ethernet(&g.data, g.ts_micros, g.orig_len).unwrap();
            prop_assert_eq!(meta.sport, specs[i].2);
        }
    }

    /// The packet parser never panics on arbitrary bytes.
    #[test]
    fn parser_fuzz(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = parse_ethernet(&bytes, 0, bytes.len() as u32);
        let _ = flownet::parse_ip(&bytes, 0, bytes.len() as u32);
    }

    /// Mutating one byte of a valid frame either still parses or errors
    /// — never panics, and checksum verification catches IP header
    /// corruptions.
    #[test]
    fn frame_mutation_fuzz(
        payload in proptest::collection::vec(any::<u8>(), 0..32),
        pos in any::<prop::sample::Index>(),
        x in 1u8..=255,
    ) {
        let mut frame = testpkt::udp4([10, 0, 0, 1], [10, 0, 0, 2], 100, 200, &payload);
        let i = pos.index(frame.len());
        frame[i] ^= x;
        let _ = parse_ethernet(&frame, 0, frame.len() as u32);
    }
}
