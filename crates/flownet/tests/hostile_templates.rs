//! Hostile-exporter hardening at the decoder layer: bounded template
//! caches under floods, eviction/withdrawal edges (RFC 7011 §8.1),
//! timeout eviction, and conservation of the template accounting.

use flownet::export::{decode_export_packet_at, ExportDecoder};
use flownet::{ipfix, netflow9, DecoderLimits};

/// Builds an IPFIX message with the given raw sets for `domain`.
fn ipfix_msg(domain: u32, sets: &[(u16, Vec<u8>)]) -> Vec<u8> {
    let mut body = Vec::new();
    for (id, content) in sets {
        body.extend_from_slice(&id.to_be_bytes());
        body.extend_from_slice(&((content.len() + 4) as u16).to_be_bytes());
        body.extend_from_slice(content);
    }
    let mut msg = Vec::new();
    msg.extend_from_slice(&ipfix::VERSION.to_be_bytes());
    msg.extend_from_slice(&((ipfix::HEADER_LEN + body.len()) as u16).to_be_bytes());
    msg.extend_from_slice(&0u32.to_be_bytes()); // export time
    msg.extend_from_slice(&0u32.to_be_bytes()); // sequence
    msg.extend_from_slice(&domain.to_be_bytes());
    msg.extend_from_slice(&body);
    msg
}

/// Template-set content: one template record.
fn tpl(tid: u16, fields: &[(u16, u16)]) -> Vec<u8> {
    let mut t = Vec::new();
    t.extend_from_slice(&tid.to_be_bytes());
    t.extend_from_slice(&(fields.len() as u16).to_be_bytes());
    for (id, len) in fields {
        t.extend_from_slice(&id.to_be_bytes());
        t.extend_from_slice(&len.to_be_bytes());
    }
    t
}

/// Template-withdrawal content (field count 0, RFC 7011 §8.1).
fn withdrawal(tid: u16) -> Vec<u8> {
    let mut t = Vec::new();
    t.extend_from_slice(&tid.to_be_bytes());
    t.extend_from_slice(&0u16.to_be_bytes());
    t
}

/// An src/dst-only template: 8-byte records any tid can carry.
const ADDR_FIELDS: &[(u16, u16)] = &[
    (ipfix::ie::SOURCE_IPV4_ADDRESS, 4),
    (ipfix::ie::DESTINATION_IPV4_ADDRESS, 4),
];

fn addr_record(i: u8) -> Vec<u8> {
    vec![10, 0, 0, i, 192, 0, 2, i]
}

/// Builds a v9 packet with the given raw flowsets for `source`.
fn v9_pkt(source: u32, sets: &[(u16, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&netflow9::VERSION.to_be_bytes());
    out.extend_from_slice(&0u16.to_be_bytes()); // record count (unused)
    out.extend_from_slice(&0u32.to_be_bytes()); // sysuptime
    out.extend_from_slice(&0u32.to_be_bytes()); // unix secs
    out.extend_from_slice(&0u32.to_be_bytes()); // sequence
    out.extend_from_slice(&source.to_be_bytes());
    for (id, content) in sets {
        out.extend_from_slice(&id.to_be_bytes());
        out.extend_from_slice(&((content.len() + 4) as u16).to_be_bytes());
        out.extend_from_slice(content);
    }
    out
}

fn tight(per: usize, global: usize, timeout_ms: u64) -> DecoderLimits {
    DecoderLimits {
        max_templates_per_domain: per,
        max_templates: global,
        template_timeout_ms: timeout_ms,
        max_fields: 8,
        max_record_bytes: 256,
    }
}

#[test]
fn withdrawal_of_an_already_evicted_template_is_counted_not_fatal() {
    let mut dec = ipfix::Decoder::with_limits(tight(1, 0, 0));
    dec.decode_message(&ipfix_msg(7, &[(2, tpl(256, ADDR_FIELDS))]))
        .unwrap();
    // Learning 257 evicts 256 (per-domain cap 1).
    dec.decode_message(&ipfix_msg(7, &[(2, tpl(257, ADDR_FIELDS))]))
        .unwrap();
    assert_eq!(dec.template_count(), 1);
    assert_eq!(dec.template_stats().evicted_cap, 1);
    // The exporter withdraws 256 — which the cache already dropped.
    dec.decode_message(&ipfix_msg(7, &[(2, withdrawal(256))]))
        .unwrap();
    let stats = dec.template_stats();
    assert_eq!(stats.withdrawn_unknown, 1);
    assert_eq!(stats.withdrawn, 0);
    // The honored withdrawal still works and the accounting stays
    // exact: the domain can learn fresh templates up to its cap.
    dec.decode_message(&ipfix_msg(7, &[(2, withdrawal(257))]))
        .unwrap();
    assert_eq!(dec.template_stats().withdrawn, 1);
    assert_eq!(dec.template_count(), 0);
    dec.decode_message(&ipfix_msg(7, &[(2, tpl(300, ADDR_FIELDS))]))
        .unwrap();
    assert_eq!(dec.template_count_for(7), 1);
}

#[test]
fn cap_eviction_racing_a_data_set_in_the_same_message() {
    let mut dec = ipfix::Decoder::with_limits(tight(1, 0, 0));
    // One message: learn 256, learn 257 (evicting 256 by cap), then a
    // data set still referencing 256 — its records must be dropped and
    // counted, while 257's data set in the same message decodes.
    let msg = ipfix_msg(
        9,
        &[
            (2, tpl(256, ADDR_FIELDS)),
            (2, tpl(257, ADDR_FIELDS)),
            (256, addr_record(1)),
            (257, addr_record(2)),
        ],
    );
    let (records, info) = dec.decode_message(&msg).unwrap();
    assert_eq!(records.len(), 1, "only 257's record survives");
    assert_eq!(
        records[0].src,
        "10.0.0.2".parse::<std::net::IpAddr>().unwrap()
    );
    assert_eq!(info.records_skipped, 1, "256's data set counted as dropped");
    assert_eq!(dec.template_stats().evicted_cap, 1);
}

#[test]
fn timeout_eviction_then_relearn_resumes_decode_ipfix() {
    let mut dec = ipfix::Decoder::with_limits(tight(0, 0, 1_000));
    let learn = ipfix_msg(3, &[(2, tpl(256, ADDR_FIELDS))]);
    let data = ipfix_msg(3, &[(256, addr_record(5))]);
    dec.decode_message_at(&learn, 1_000).unwrap();
    let (records, _) = dec.decode_message_at(&data, 1_200).unwrap();
    assert_eq!(records.len(), 1);
    // Idle past the timeout: the template ages out before the data
    // set in this very message is reached.
    let (records, info) = dec.decode_message_at(&data, 5_000).unwrap();
    assert!(records.is_empty());
    assert_eq!(info.records_skipped, 1);
    assert_eq!(dec.template_stats().evicted_timeout, 1);
    // Re-learning the template resumes decode.
    dec.decode_message_at(&learn, 5_000).unwrap();
    let (records, _) = dec.decode_message_at(&data, 5_001).unwrap();
    assert_eq!(records.len(), 1);
}

#[test]
fn timeout_eviction_then_relearn_resumes_decode_v9() {
    let v9_fields: &[(u16, u16)] = &[
        (netflow9::field::IPV4_SRC_ADDR, 4),
        (netflow9::field::IPV4_DST_ADDR, 4),
    ];
    let mut dec = netflow9::Decoder::with_limits(tight(0, 0, 1_000));
    let learn = v9_pkt(3, &[(0, tpl(300, v9_fields))]);
    let data = v9_pkt(3, &[(300, addr_record(6))]);
    dec.decode_at(&learn, 1_000).unwrap();
    let (records, _) = dec.decode_at(&data, 1_200).unwrap();
    assert_eq!(records.len(), 1);
    let (records, info) = dec.decode_at(&data, 5_000).unwrap();
    assert!(records.is_empty());
    assert_eq!(info.records_skipped, 1);
    assert_eq!(dec.template_stats().evicted_timeout, 1);
    dec.decode_at(&learn, 5_000).unwrap();
    let (records, _) = dec.decode_at(&data, 5_001).unwrap();
    assert_eq!(records.len(), 1);
}

#[test]
fn oversized_templates_are_rejected_and_parsing_continues() {
    // v9: a 9-field template when max_fields is 8 is rejected; the
    // next template in the same flowset still learns.
    let wide: Vec<(u16, u16)> = (0..9).map(|i| (100 + i as u16, 4)).collect();
    let mut content = tpl(300, &wide);
    content.extend_from_slice(&tpl(
        301,
        &[
            (netflow9::field::IPV4_SRC_ADDR, 4),
            (netflow9::field::IPV4_DST_ADDR, 4),
        ],
    ));
    let mut dec = netflow9::Decoder::with_limits(tight(0, 0, 0));
    let (_, info) = dec.decode(&v9_pkt(1, &[(0, content)])).unwrap();
    assert_eq!(info.templates_learned, 1);
    assert_eq!(dec.template_stats().rejected, 1);
    assert_eq!(dec.template_count(), 1);

    // IPFIX: a template spanning more than max_record_bytes is
    // rejected the same way.
    let fat: &[(u16, u16)] = &[(100, 200), (101, 200)]; // 400 > 256
    let mut dec = ipfix::Decoder::with_limits(tight(0, 0, 0));
    let mut content = tpl(256, fat);
    content.extend_from_slice(&tpl(257, ADDR_FIELDS));
    let (_, info) = dec.decode_message(&ipfix_msg(1, &[(2, content)])).unwrap();
    assert_eq!(info.templates_learned, 1);
    assert_eq!(dec.template_stats().rejected, 1);
    assert_eq!(dec.template_count(), 1);
}

#[test]
fn template_flood_cannot_grow_past_caps_and_is_fully_accounted() {
    let mut dec = ExportDecoder::with_limits(DecoderLimits {
        max_templates_per_domain: 4,
        max_templates: 16,
        template_timeout_ms: 0,
        max_fields: 8,
        max_record_bytes: 256,
    });
    // Flood distinct (domain, tid) pairs across both stateful
    // dialects — far more than the caps allow.
    for domain in 0..10u32 {
        for tid in 0..20u16 {
            let msg = ipfix_msg(domain, &[(2, tpl(256 + tid, ADDR_FIELDS))]);
            decode_export_packet_at(&mut dec, &msg, 0).unwrap();
            let pkt = v9_pkt(domain, &[(0, tpl(256 + tid, ADDR_FIELDS))]);
            decode_export_packet_at(&mut dec, &pkt, 0).unwrap();
            assert!(dec.template_count() <= 32, "16 per dialect cache");
        }
    }
    let stats = dec.stats();
    // Conservation: every distinct template learned is either still
    // live or in exactly one drop counter (no tid was refreshed, so
    // learned counts distinct inserts; nothing was withdrawn).
    assert_eq!(stats.templates_learned, 400);
    assert_eq!(
        stats.templates_learned,
        stats.templates as u64 + stats.templates_evicted_cap + stats.templates_evicted_timeout,
    );
    assert_eq!(stats.templates_rejected, 0);
}

#[test]
fn seeded_mutation_fuzz_never_panics_with_tight_limits() {
    // Deterministic splitmix64 mutations over valid v9/IPFIX packets,
    // decoded with tight limits and advancing time: no panic, cache
    // never exceeds the caps.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut dec = ExportDecoder::with_limits(DecoderLimits {
        max_templates_per_domain: 2,
        max_templates: 8,
        template_timeout_ms: 500,
        max_fields: 4,
        max_record_bytes: 64,
    });
    let seeds = [
        ipfix_msg(5, &[(2, tpl(256, ADDR_FIELDS)), (256, addr_record(1))]),
        v9_pkt(5, &[(0, tpl(300, ADDR_FIELDS)), (300, addr_record(2))]),
    ];
    for round in 0..4_000u64 {
        let mut pkt = seeds[(next() % 2) as usize].clone();
        for _ in 0..(next() % 4) {
            let i = (next() as usize) % pkt.len();
            pkt[i] ^= next() as u8;
        }
        if next() % 5 == 0 {
            pkt.truncate((next() as usize) % (pkt.len() + 1));
        }
        let _ = decode_export_packet_at(&mut dec, &pkt, round * 7);
        assert!(dec.template_count() <= 16, "caps hold under mutation");
    }
}
