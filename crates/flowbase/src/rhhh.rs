//! RHHH — Randomized constant-time hierarchical heavy hitters
//! (Ben Basat, Einziger, Friedman, Luizelli, Waisbard — SIGCOMM 2017).
//!
//! The insight: instead of updating every hierarchy level per packet
//! (O(h)), update **one uniformly random level** (O(1)) and scale
//! estimates by h at query time. Each level keeps its own Space-Saving
//! instance. Reference \[1\] of the Flowtree paper.

use crate::spacesaving::SpaceSaving;
use crate::{HhhSummary, LevelSet, StreamSummary};
use flowkey::FlowKey;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The RHHH summary.
#[derive(Debug, Clone)]
pub struct Rhhh {
    levels: LevelSet,
    per_level: Vec<SpaceSaving>,
    rng: SmallRng,
    total: u64,
}

impl Rhhh {
    /// Creates the summary with `counters_per_level` Space-Saving
    /// counters at each ladder level.
    pub fn new(levels: LevelSet, counters_per_level: usize, seed: u64) -> Rhhh {
        let per_level = (0..levels.len())
            .map(|_| SpaceSaving::new(counters_per_level))
            .collect();
        Rhhh {
            levels,
            per_level,
            rng: SmallRng::seed_from_u64(seed),
            total: 0,
        }
    }

    /// The level ladder.
    pub fn levels(&self) -> &LevelSet {
        &self.levels
    }

    /// Total weight observed (all levels combined, unscaled).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Scaled estimate of a ladder-level pattern.
    fn level_estimate(&self, level: usize, key: &FlowKey) -> f64 {
        let h = self.levels.len() as f64;
        self.per_level[level].estimate(key) * h
    }
}

impl StreamSummary for Rhhh {
    fn name(&self) -> &'static str {
        "rhhh"
    }

    /// O(1): one random level gets the update.
    fn update(&mut self, key: &FlowKey, w: u64) {
        self.total += w;
        let level = self.rng.gen_range(0..self.levels.len());
        let anc = self.levels.ancestor(key, level);
        self.per_level[level].update(&anc, w);
    }

    fn estimate(&self, pattern: &FlowKey) -> f64 {
        let depth = self.levels.schema().depth(pattern);
        let level = self.levels.level_at_or_above(depth);
        self.level_estimate(level, pattern)
    }

    fn memory_bytes(&self) -> usize {
        self.per_level.iter().map(|s| s.memory_bytes()).sum()
    }
}

impl HhhSummary for Rhhh {
    /// Bottom-up conditioned output: a candidate's estimate is reduced
    /// by the (scaled) mass of already-output descendants before being
    /// compared to φ·N.
    fn hhh(&self, phi: f64) -> Vec<(FlowKey, f64)> {
        let threshold = phi * self.total as f64;
        if threshold <= 0.0 {
            return Vec::new();
        }
        let mut out: Vec<(FlowKey, f64)> = Vec::new();
        for level in (0..self.levels.len()).rev() {
            for (key, count, _err) in self.per_level[level].items() {
                let h = self.levels.len() as f64;
                let scaled = count as f64 * h;
                let discounted: f64 = scaled
                    - out
                        .iter()
                        .filter(|(k, _)| key.contains(k) && k != key)
                        .map(|(_, w)| *w)
                        .sum::<f64>();
                if discounted >= threshold {
                    out.push((*key, discounted));
                }
            }
        }
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkey::Schema;

    fn key(s: &str) -> FlowKey {
        s.parse().unwrap()
    }

    fn ladder() -> LevelSet {
        LevelSet::byte_boundaries(Schema::one_feature_src())
    }

    #[test]
    fn update_touches_exactly_one_level() {
        let mut r = Rhhh::new(ladder(), 64, 1);
        r.update(&key("src=10.0.0.1/32"), 1);
        let occupied: usize = r.per_level.iter().map(|s| s.len()).sum();
        assert_eq!(occupied, 1);
    }

    #[test]
    fn estimates_converge_with_samples() {
        let mut r = Rhhh::new(ladder(), 512, 7);
        // 60k updates of one heavy host among 40k noise updates.
        for i in 0..40_000u32 {
            r.update(&key(&format!("src=172.16.{}.{}/32", i % 128, i % 250)), 1);
            if i < 30_000 {
                r.update(&key("src=10.0.0.1/32"), 2);
            }
        }
        let est = r.estimate(&key("src=10.0.0.1/32"));
        let truth = 60_000.0;
        assert!(
            (est - truth).abs() / truth < 0.25,
            "estimate {est} vs truth {truth}"
        );
        // The /8 aggregate is also answerable (level exists).
        let agg = r.estimate(&key("src=10.0.0.0/7")); // depth 8 = ladder level
        assert!(agg >= est * 0.7, "aggregate {agg} ≥ host share");
    }

    #[test]
    fn hhh_finds_heavy_host_and_heavy_prefix() {
        let mut r = Rhhh::new(ladder(), 256, 3);
        for _ in 0..50_000 {
            r.update(&key("src=60.0.0.1/32"), 1);
        }
        for i in 0..50u32 {
            for _ in 0..600 {
                r.update(&key(&format!("src=10.0.0.{i}/32")), 1);
            }
        }
        let hhh = r.hhh(0.25);
        assert!(
            hhh.iter().any(|(k, _)| *k == key("src=60.0.0.1/32")),
            "{hhh:?}"
        );
        // The 30k packets under 10.0.0.0/24 only qualify via a prefix.
        assert!(
            hhh.iter()
                .any(|(k, _)| k.src.depth() < 33 && k.contains(&key("src=10.0.0.7/32"))),
            "{hhh:?}"
        );
    }

    #[test]
    fn memory_is_levels_times_counters() {
        let a = Rhhh::new(ladder(), 64, 1);
        let b = Rhhh::new(ladder(), 128, 1);
        assert_eq!(b.memory_bytes(), a.memory_bytes() * 2);
    }
}
