//! Space-Saving (Metwally, Agrawal, El Abbadi 2005).
//!
//! The canonical bounded heavy-hitter summary: `k` counters; a miss when
//! full replaces the minimum counter, inheriting its count as error.
//! Flat — it knows nothing about hierarchies — which is exactly why the
//! paper argues it is insufficient ("keeping summaries of only the most
//! popular flows misses information on less popular ones").

use crate::{HhhSummary, StreamSummary};
use flowkey::FlowKey;
use std::collections::{BTreeSet, HashMap};

/// The Space-Saving summary with `capacity` counters.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    /// key → (count, error)
    counters: HashMap<FlowKey, (u64, u64)>,
    /// (count, key) ordered set for O(log k) minimum maintenance.
    order: BTreeSet<(u64, FlowKey)>,
    total: u64,
}

impl SpaceSaving {
    /// Creates a summary with `capacity ≥ 1` counters.
    pub fn new(capacity: usize) -> SpaceSaving {
        assert!(capacity >= 1);
        SpaceSaving {
            capacity,
            counters: HashMap::with_capacity(capacity + 1),
            order: BTreeSet::new(),
            total: 0,
        }
    }

    /// Total weight observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of occupied counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether no counters are occupied.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// The tracked items as `(key, count, error)`; `count − error` is a
    /// guaranteed lower bound on the true frequency.
    pub fn items(&self) -> impl Iterator<Item = (&FlowKey, u64, u64)> {
        self.counters.iter().map(|(k, (c, e))| (k, *c, *e))
    }

    fn bump(&mut self, key: FlowKey, add: u64, err: u64) {
        let entry = self.counters.entry(key).or_insert((0, 0));
        if entry.0 > 0 || err > 0 || add > 0 {
            self.order.remove(&(entry.0, key));
        }
        entry.0 += add;
        entry.1 += err;
        self.order.insert((entry.0, key));
    }
}

impl StreamSummary for SpaceSaving {
    fn name(&self) -> &'static str {
        "space-saving"
    }

    fn update(&mut self, key: &FlowKey, w: u64) {
        self.total += w;
        if self.counters.contains_key(key) {
            self.bump(*key, w, 0);
            return;
        }
        if self.counters.len() < self.capacity {
            self.bump(*key, w, 0);
            return;
        }
        // Replace the minimum counter: the newcomer inherits its count
        // as potential error.
        let &(min_count, min_key) = self.order.iter().next().expect("non-empty at capacity");
        self.order.remove(&(min_count, min_key));
        self.counters.remove(&min_key);
        self.counters.insert(*key, (min_count + w, min_count));
        self.order.insert((min_count + w, *key));
    }

    fn estimate(&self, pattern: &FlowKey) -> f64 {
        // Exact-key estimate when tracked; aggregate over tracked keys
        // for coarser patterns (anything untracked estimates 0 — the
        // blind spot the paper calls out).
        if let Some((c, _)) = self.counters.get(pattern) {
            return *c as f64;
        }
        self.counters
            .iter()
            .filter(|(k, _)| pattern.contains(k))
            .map(|(_, (c, _))| *c)
            .sum::<u64>() as f64
    }

    fn memory_bytes(&self) -> usize {
        self.capacity * (std::mem::size_of::<FlowKey>() * 2 + 16 + 32)
    }
}

impl HhhSummary for SpaceSaving {
    /// Space-Saving has no hierarchy; its "HHH" answer is simply its
    /// heavy hitters — included to make the recall gap measurable.
    fn hhh(&self, phi: f64) -> Vec<(FlowKey, f64)> {
        let threshold = phi * self.total as f64;
        let mut out: Vec<(FlowKey, f64)> = self
            .counters
            .iter()
            .filter(|(_, (c, _))| *c as f64 >= threshold)
            .map(|(k, (c, _))| (*k, *c as f64))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> FlowKey {
        format!("src=10.{}.{}.{}/32", i >> 16 & 255, i >> 8 & 255, i & 255)
            .parse()
            .unwrap()
    }

    #[test]
    fn exact_when_under_capacity() {
        let mut ss = SpaceSaving::new(10);
        for i in 0..5 {
            for _ in 0..=i {
                ss.update(&key(i), 1);
            }
        }
        for i in 0..5 {
            assert_eq!(ss.estimate(&key(i)), (i + 1) as f64);
        }
        assert_eq!(ss.len(), 5);
    }

    #[test]
    fn overestimates_but_never_underestimates_heavy_keys() {
        let mut ss = SpaceSaving::new(8);
        // A heavy key among a stream of singletons.
        for round in 0..200u32 {
            ss.update(&key(0), 5);
            ss.update(&key(1000 + round), 1);
        }
        let est = ss.estimate(&key(0));
        assert!(est >= 1000.0, "count lower bound violated: {est}");
        // Classic Space-Saving guarantee: error ≤ N / k.
        assert!(est <= 1000.0 + ss.total() as f64 / 8.0);
    }

    #[test]
    fn capacity_is_respected() {
        let mut ss = SpaceSaving::new(16);
        for i in 0..10_000 {
            ss.update(&key(i), 1);
        }
        assert_eq!(ss.len(), 16);
        assert_eq!(ss.total(), 10_000);
    }

    #[test]
    fn min_replacement_inherits_error() {
        let mut ss = SpaceSaving::new(2);
        ss.update(&key(1), 10);
        ss.update(&key(2), 20);
        ss.update(&key(3), 1); // replaces key(1): count 11, error 10
        let items: Vec<_> = ss.items().map(|(k, c, e)| (*k, c, e)).collect();
        assert!(items.contains(&(key(3), 11, 10)));
        assert!(items.contains(&(key(2), 20, 0)));
    }

    #[test]
    fn hhh_is_flat_heavy_hitters() {
        let mut ss = SpaceSaving::new(8);
        for _ in 0..90 {
            ss.update(&key(1), 1);
        }
        for i in 0..10 {
            ss.update(&key(100 + i), 1);
        }
        let hhh = ss.hhh(0.5);
        assert_eq!(hhh.len(), 1);
        assert_eq!(hhh[0].0, key(1));
    }
}
