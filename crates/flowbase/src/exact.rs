//! The unbounded exact oracle.

use crate::{HhhSummary, StreamSummary};
use flowkey::{FlowKey, Schema};
use std::collections::HashMap;

/// Exact aggregation with no space bound: the accuracy oracle every
/// bounded summary is measured against.
#[derive(Debug, Clone)]
pub struct ExactAggregator {
    schema: Schema,
    counts: HashMap<FlowKey, u64>,
    total: u64,
}

impl ExactAggregator {
    /// Creates an empty aggregator.
    pub fn new(schema: Schema) -> ExactAggregator {
        ExactAggregator {
            schema,
            counts: HashMap::new(),
            total: 0,
        }
    }

    /// Total weight observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Distinct full keys observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Iterates over `(flow, exact count)`.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowKey, u64)> {
        self.counts.iter().map(|(k, w)| (k, *w))
    }
}

impl StreamSummary for ExactAggregator {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn update(&mut self, key: &FlowKey, w: u64) {
        let key = self.schema.canonicalize(key);
        *self.counts.entry(key).or_insert(0) += w;
        self.total += w;
    }

    fn estimate(&self, pattern: &FlowKey) -> f64 {
        self.counts
            .iter()
            .filter(|(k, _)| pattern.contains(k))
            .map(|(_, w)| *w)
            .sum::<u64>() as f64
    }

    fn memory_bytes(&self) -> usize {
        self.counts.len() * (std::mem::size_of::<FlowKey>() + 8 + 16)
    }
}

impl HhhSummary for ExactAggregator {
    /// Exact hierarchical heavy hitters over the canonical chain, by
    /// exhaustive bottom-up discounting. O(#flows × depth) — an oracle,
    /// not a streaming algorithm.
    fn hhh(&self, phi: f64) -> Vec<(FlowKey, f64)> {
        let threshold = phi * self.total as f64;
        if threshold <= 0.0 {
            return Vec::new();
        }
        // Aggregate counts at every chain depth, bottom-up; at each
        // level, keys reaching the threshold are emitted and their mass
        // removed before aggregating further up.
        let mut current: HashMap<FlowKey, u64> = self.counts.clone();
        let mut out = Vec::new();
        let mut depth = current
            .keys()
            .map(|k| self.schema.depth(k))
            .max()
            .unwrap_or(0);
        loop {
            // Emit heavy keys at this depth.
            let mut next: HashMap<FlowKey, u64> = HashMap::new();
            for (k, w) in &current {
                if self.schema.depth(k) == depth {
                    if *w as f64 >= threshold {
                        out.push((*k, *w as f64));
                        continue; // discounted: do not propagate
                    }
                    if let Some(p) = self.schema.parent(k) {
                        *next.entry(p).or_insert(0) += w;
                        continue;
                    }
                }
                *next.entry(*k).or_insert(0) += w;
            }
            current = next;
            if depth == 0 {
                break;
            }
            depth -= 1;
        }
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> FlowKey {
        s.parse().unwrap()
    }

    #[test]
    fn estimate_is_exact() {
        let mut e = ExactAggregator::new(Schema::one_feature_src());
        e.update(&key("src=10.0.0.1/32"), 5);
        e.update(&key("src=10.0.0.2/32"), 7);
        e.update(&key("src=10.0.0.1/32"), 1);
        assert_eq!(e.estimate(&key("src=10.0.0.1/32")), 6.0);
        assert_eq!(e.estimate(&key("src=10.0.0.0/24")), 13.0);
        assert_eq!(e.estimate(&FlowKey::ROOT), 13.0);
        assert_eq!(e.total(), 13);
        assert_eq!(e.distinct(), 2);
    }

    #[test]
    fn hhh_discounts_covered_mass() {
        let mut e = ExactAggregator::new(Schema::one_feature_src());
        // One heavy host, nine light hosts under one /24.
        e.update(&key("src=60.0.0.1/32"), 600);
        for i in 0..9 {
            e.update(&key(&format!("src=10.0.0.{i}/32")), 100);
        }
        let hhh = e.hhh(0.3); // threshold 450
        let keys: Vec<String> = hhh.iter().map(|(k, _)| k.to_string()).collect();
        assert!(keys.iter().any(|k| k.contains("60.0.0.1/32")), "{keys:?}");
        // The nine 100s only qualify via an ancestor.
        assert!(hhh.len() >= 2, "{keys:?}");
        assert!(
            hhh.iter().any(|(k, w)| *w >= 450.0
                && k.src.depth() < 33
                && !k.to_string().contains("60.0.0.1")),
            "{keys:?}"
        );
    }

    #[test]
    fn hhh_empty_on_zero_threshold() {
        let e = ExactAggregator::new(Schema::one_feature_src());
        assert!(e.hhh(0.1).is_empty());
    }
}
