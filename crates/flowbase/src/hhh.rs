//! Hierarchical heavy hitters à la Cormode, Korn, Muthukrishnan &
//! Srivastava (VLDB 2003 / SIGMOD 2004).
//!
//! Lossy-counting-style deterministic streaming HHH over a hierarchy
//! ladder ([`LevelSet`]). Two strategies from the papers:
//!
//! * [`FullAncestry`] — every tracked node's ladder ancestors are
//!   also tracked; compression rolls expired leaves into their parents.
//! * [`PartialAncestry`] — ancestors materialize only when a leaf is
//!   rolled up, using less space at slightly looser error bounds.
//!
//! Contrast with Flowtree (what the paper's §1 points out): these need
//! the hierarchy (and its memory) *fixed up front*, answer only
//! HHH-style questions, and are neither mergeable nor diffable.

use crate::{HhhSummary, LevelSet, StreamSummary};
use flowkey::FlowKey;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Node {
    g: u64,
    delta: u64,
}

/// Shared engine for both ancestry strategies.
#[derive(Debug, Clone)]
struct Engine {
    levels: LevelSet,
    bucket_width: u64,
    n: u64,
    nodes: HashMap<FlowKey, Node>,
    full_ancestry: bool,
}

impl Engine {
    fn new(levels: LevelSet, epsilon: f64, full_ancestry: bool) -> Engine {
        assert!(epsilon > 0.0 && epsilon < 1.0, "0 < ε < 1");
        Engine {
            levels,
            bucket_width: (1.0 / epsilon).ceil() as u64,
            n: 0,
            nodes: HashMap::new(),
            full_ancestry,
        }
    }

    fn bucket(&self) -> u64 {
        self.n / self.bucket_width + 1
    }

    /// The ladder parent of a ladder key (`None` at the root).
    fn parent(&self, key: &FlowKey) -> Option<FlowKey> {
        let depth = self.levels.schema().depth(key);
        let i = self.levels.level_at_or_above(depth);
        if i == 0 {
            return None;
        }
        Some(self.levels.ancestor(key, i - 1))
    }

    fn ensure_node(&mut self, key: FlowKey, g: u64, delta: u64) {
        if self.nodes.contains_key(&key) {
            if g > 0 {
                self.nodes.get_mut(&key).expect("present").g += g;
            }
            return;
        }
        self.nodes.insert(key, Node { g, delta });
        if self.full_ancestry {
            if let Some(p) = self.parent(&key) {
                let b = self.bucket();
                self.ensure_node(p, 0, b.saturating_sub(1));
            }
        }
    }

    fn update(&mut self, key: &FlowKey, w: u64) {
        let full = self.levels.ancestor(key, self.levels.len() - 1);
        let before = self.bucket();
        self.n += w;
        let b = self.bucket();
        let delta = b.saturating_sub(1);
        self.ensure_node(
            full,
            w,
            if self.nodes.contains_key(&full) {
                0
            } else {
                delta
            },
        );
        if self.bucket() != before {
            self.compress();
        }
    }

    /// Whether any tracked node has `key` as its nearest tracked ladder
    /// ancestor (i.e. `key` is an internal node of the tracked forest).
    fn leaves(&self) -> Vec<FlowKey> {
        let mut internal: std::collections::HashSet<FlowKey> = std::collections::HashSet::new();
        for key in self.nodes.keys() {
            let mut cur = *key;
            while let Some(p) = self.parent(&cur) {
                if self.nodes.contains_key(&p) {
                    internal.insert(p);
                    break;
                }
                cur = p;
            }
        }
        self.nodes
            .keys()
            .filter(|k| !internal.contains(*k) && !k.is_root())
            .copied()
            .collect()
    }

    /// Rolls up every leaf whose upper bound has expired.
    fn compress(&mut self) {
        let b = self.bucket();
        loop {
            let victims: Vec<FlowKey> = self
                .leaves()
                .into_iter()
                .filter(|k| {
                    let n = &self.nodes[k];
                    n.g + n.delta <= b
                })
                .collect();
            if victims.is_empty() {
                return;
            }
            for v in victims {
                let Some(node) = self.nodes.remove(&v) else {
                    continue;
                };
                let Some(p) = self.parent(&v) else {
                    continue;
                };
                if self.nodes.contains_key(&p) {
                    self.nodes.get_mut(&p).expect("present").g += node.g;
                } else {
                    debug_assert!(!self.full_ancestry, "full ancestry keeps parents");
                    // Partial ancestry: the parent materializes at
                    // roll-up time, inheriting the child's mass.
                    self.ensure_node(p, node.g, node.delta.min(b.saturating_sub(1)));
                }
            }
        }
    }

    /// HHH output with the (φ − ε)-style lower threshold: bottom-up
    /// discounted counts, a node qualifies when its discounted count
    /// plus uncertainty reaches φ·N.
    fn hhh(&self, phi: f64) -> Vec<(FlowKey, f64)> {
        let threshold = phi * self.n as f64;
        if threshold <= 0.0 || self.nodes.is_empty() {
            return Vec::new();
        }
        // Order nodes deepest-first.
        let mut order: Vec<FlowKey> = self.nodes.keys().copied().collect();
        let schema = *self.levels.schema();
        order.sort_by_key(|k| std::cmp::Reverse(schema.depth(k)));
        let mut carry: HashMap<FlowKey, u64> = HashMap::new();
        let mut out = Vec::new();
        for key in order {
            let node = &self.nodes[&key];
            let disc = node.g + carry.get(&key).copied().unwrap_or(0);
            if (disc + node.delta) as f64 >= threshold {
                out.push((key, disc as f64));
            } else if let Some(p) = self.parent(&key) {
                // Propagate toward the nearest *tracked* ancestor.
                let mut cur = p;
                loop {
                    if self.nodes.contains_key(&cur) {
                        *carry.entry(cur).or_insert(0) += disc;
                        break;
                    }
                    match self.parent(&cur) {
                        Some(next) => cur = next,
                        None => break,
                    }
                }
            }
        }
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        out
    }

    fn estimate(&self, pattern: &FlowKey) -> f64 {
        // Sum of tracked mass inside the pattern (a lower-bound flavored
        // answer; HHH structures are not general estimators).
        self.nodes
            .iter()
            .filter(|(k, _)| pattern.contains(k))
            .map(|(_, n)| n.g)
            .sum::<u64>() as f64
    }

    fn memory_bytes(&self) -> usize {
        self.nodes.len() * (std::mem::size_of::<FlowKey>() + std::mem::size_of::<Node>() + 16)
    }
}

/// Cormode et al. full-ancestry streaming HHH.
#[derive(Debug, Clone)]
pub struct FullAncestry {
    engine: Engine,
}

impl FullAncestry {
    /// Creates the summary over `levels` with error target `epsilon`.
    pub fn new(levels: LevelSet, epsilon: f64) -> FullAncestry {
        FullAncestry {
            engine: Engine::new(levels, epsilon, true),
        }
    }

    /// Tracked node count.
    pub fn len(&self) -> usize {
        self.engine.nodes.len()
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.engine.nodes.is_empty()
    }

    /// Total weight observed.
    pub fn total(&self) -> u64 {
        self.engine.n
    }
}

impl StreamSummary for FullAncestry {
    fn name(&self) -> &'static str {
        "hhh-full-ancestry"
    }

    fn update(&mut self, key: &FlowKey, w: u64) {
        self.engine.update(key, w);
    }

    fn estimate(&self, pattern: &FlowKey) -> f64 {
        self.engine.estimate(pattern)
    }

    fn memory_bytes(&self) -> usize {
        self.engine.memory_bytes()
    }
}

impl HhhSummary for FullAncestry {
    fn hhh(&self, phi: f64) -> Vec<(FlowKey, f64)> {
        self.engine.hhh(phi)
    }
}

/// Cormode et al. partial-ancestry streaming HHH.
#[derive(Debug, Clone)]
pub struct PartialAncestry {
    engine: Engine,
}

impl PartialAncestry {
    /// Creates the summary over `levels` with error target `epsilon`.
    pub fn new(levels: LevelSet, epsilon: f64) -> PartialAncestry {
        PartialAncestry {
            engine: Engine::new(levels, epsilon, false),
        }
    }

    /// Tracked node count.
    pub fn len(&self) -> usize {
        self.engine.nodes.len()
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.engine.nodes.is_empty()
    }

    /// Total weight observed.
    pub fn total(&self) -> u64 {
        self.engine.n
    }
}

impl StreamSummary for PartialAncestry {
    fn name(&self) -> &'static str {
        "hhh-partial-ancestry"
    }

    fn update(&mut self, key: &FlowKey, w: u64) {
        self.engine.update(key, w);
    }

    fn estimate(&self, pattern: &FlowKey) -> f64 {
        self.engine.estimate(pattern)
    }

    fn memory_bytes(&self) -> usize {
        self.engine.memory_bytes()
    }
}

impl HhhSummary for PartialAncestry {
    fn hhh(&self, phi: f64) -> Vec<(FlowKey, f64)> {
        self.engine.hhh(phi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactAggregator;
    use flowkey::Schema;

    fn key(s: &str) -> FlowKey {
        s.parse().unwrap()
    }

    fn skewed_stream() -> Vec<(FlowKey, u64)> {
        let mut out = Vec::new();
        // Heavy host, heavy /24 of light hosts, background noise.
        for _ in 0..400 {
            out.push((key("src=60.0.0.1/32"), 1));
        }
        for i in 0..40u32 {
            for _ in 0..10 {
                out.push((key(&format!("src=10.0.0.{i}/32")), 1));
            }
        }
        for i in 0..200u32 {
            out.push((key(&format!("src=172.16.{}.{}/32", i / 100, i % 100)), 1));
        }
        out
    }

    fn recall_against_exact(summary_hhh: &[(FlowKey, f64)], exact_hhh: &[(FlowKey, f64)]) -> f64 {
        if exact_hhh.is_empty() {
            return 1.0;
        }
        let found = exact_hhh
            .iter()
            .filter(|(k, _)| summary_hhh.iter().any(|(s, _)| s == k))
            .count();
        found as f64 / exact_hhh.len() as f64
    }

    #[test]
    fn full_ancestry_has_perfect_recall() {
        let schema = Schema::one_feature_src();
        let levels = LevelSet::byte_boundaries(schema);
        let mut fa = FullAncestry::new(levels.clone(), 0.01);
        let mut exact = ExactAggregator::new(schema);
        for (k, w) in skewed_stream() {
            fa.update(&k, w);
            exact.update(&k, w);
        }
        // Exact HHH restricted to the same ladder granularity.
        let phi = 0.3;
        let got = fa.hhh(phi);
        // The heavy host must be found.
        assert!(
            got.iter().any(|(k, _)| *k == key("src=60.0.0.1/32")),
            "heavy host missing: {got:?}"
        );
        let ex: Vec<(FlowKey, f64)> = exact
            .hhh(phi)
            .into_iter()
            .filter(|(k, _)| levels.contains_depth(schema.depth(k)))
            .collect();
        let recall = recall_against_exact(&got, &ex);
        assert!(recall >= 0.99, "recall {recall}: got {got:?} vs {ex:?}");
    }

    #[test]
    fn partial_ancestry_finds_the_heavy_host_with_less_state() {
        let schema = Schema::one_feature_src();
        let levels = LevelSet::byte_boundaries(schema);
        let mut fa = FullAncestry::new(levels.clone(), 0.02);
        let mut pa = PartialAncestry::new(levels, 0.02);
        for (k, w) in skewed_stream() {
            fa.update(&k, w);
            pa.update(&k, w);
        }
        assert!(
            pa.hhh(0.3)
                .iter()
                .any(|(k, _)| *k == key("src=60.0.0.1/32")),
            "{:?}",
            pa.hhh(0.3)
        );
        assert!(
            pa.len() <= fa.len(),
            "partial ({}) should not track more than full ({})",
            pa.len(),
            fa.len()
        );
    }

    #[test]
    fn space_stays_bounded_on_uniform_noise() {
        let schema = Schema::one_feature_src();
        let mut fa = FullAncestry::new(LevelSet::byte_boundaries(schema), 0.02);
        for i in 0..50_000u32 {
            let k = key(&format!(
                "src={}.{}.{}.{}/32",
                1 + (i % 64),
                (i / 7) % 251,
                (i / 3) % 251,
                i % 251
            ));
            fa.update(&k, 1);
        }
        // Lossy counting bound: O(h/ε · log(εN)) nodes — loose check.
        assert!(
            fa.len() < 6_000,
            "tracked nodes should stay bounded, got {}",
            fa.len()
        );
        assert_eq!(fa.total(), 50_000);
    }

    #[test]
    fn counts_never_lost_to_compression() {
        // Everything rolled up must surface at the root estimate.
        let schema = Schema::one_feature_src();
        let mut fa = FullAncestry::new(LevelSet::byte_boundaries(schema), 0.1);
        for i in 0..5_000u32 {
            fa.update(
                &key(&format!(
                    "src=10.{}.{}.{}/32",
                    i % 32,
                    (i / 32) % 64,
                    i % 250
                )),
                1,
            );
        }
        assert_eq!(fa.estimate(&FlowKey::ROOT), 5_000.0);
    }
}
