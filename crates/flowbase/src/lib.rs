//! # flowbase — baseline stream summaries
//!
//! The related work the paper positions Flowtree against ([1–3, 5] in
//! its bibliography), implemented from scratch so the comparison
//! benchmarks (experiment E11 in DESIGN.md) run against real algorithms
//! rather than straw men:
//!
//! * [`ExactAggregator`] — the unbounded oracle.
//! * [`SpaceSaving`] — Metwally et al.'s heavy-hitter summary
//!   (flat, no hierarchy).
//! * [`CountMin`] — the Cormode–Muthukrishnan sketch, with per-level
//!   sketches ([`DyadicCountMin`]) for hierarchical point queries.
//! * [`hhh::FullAncestry`] / [`hhh::PartialAncestry`] — Cormode et al.
//!   2003 hierarchical heavy hitters over the canonical chain hierarchy.
//! * [`Rhhh`] — Ben Basat et al. 2017 randomized constant-time HHH.
//!
//! All baselines speak the same [`StreamSummary`] interface and operate
//! on [`FlowKey`]s over a [`flowkey::Schema`]'s canonical chain, so every summary
//! sees exactly the same hierarchy Flowtree does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod countmin;
pub mod exact;
pub mod hhh;
pub mod levels;
pub mod rhhh;
pub mod spacesaving;

pub use countmin::{CountMin, DyadicCountMin};
pub use exact::ExactAggregator;
pub use levels::LevelSet;
pub use rhhh::Rhhh;
pub use spacesaving::SpaceSaving;

use flowkey::FlowKey;

/// A stream summary that can be updated with weighted flow keys and
/// queried for (estimated) popularity.
pub trait StreamSummary {
    /// Human-readable algorithm name (used in benchmark tables).
    fn name(&self) -> &'static str;

    /// Feeds one fully-specified flow key with weight `w` (packets).
    fn update(&mut self, key: &FlowKey, w: u64);

    /// Estimated popularity of `pattern` (a key at any supported
    /// hierarchy level; summaries without hierarchy support answer only
    /// full keys and return 0 elsewhere — see each implementation).
    fn estimate(&self, pattern: &FlowKey) -> f64;

    /// Approximate memory footprint in bytes (for equal-memory
    /// comparisons).
    fn memory_bytes(&self) -> usize;
}

/// A summary that can enumerate hierarchical heavy hitters.
pub trait HhhSummary {
    /// Flows (generalized) whose discounted popularity is at least
    /// `phi × total`, as `(key, estimated discounted count)`.
    fn hhh(&self, phi: f64) -> Vec<(FlowKey, f64)>;
}
