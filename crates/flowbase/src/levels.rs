//! Hierarchy level sets.
//!
//! The classic HHH literature works on hierarchies of modest height
//! (e.g. byte-granularity IPv4 → 5 levels), not the bit-granularity
//! chains Flowtree uses internally. A [`LevelSet`] picks a ladder of
//! chain depths — root to full key — that the baseline algorithms
//! treat as *their* hierarchy, which both matches the related work
//! faithfully and keeps their per-update costs comparable to the
//! published versions.

use flowkey::{FlowKey, Schema};

/// A ladder of chain depths, always starting at 0 (root) and ending at
/// the full IPv4 key depth of the schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSet {
    schema: Schema,
    depths: Vec<u32>,
}

impl LevelSet {
    /// Builds a ladder with roughly `count` evenly spaced levels
    /// (count ≥ 2; the root and the full depth are always included).
    pub fn evenly_spaced(schema: Schema, count: usize) -> LevelSet {
        let full = schema.full_depth_v4();
        let count = count.max(2).min(full as usize + 1);
        let mut depths: Vec<u32> = (0..count)
            .map(|i| (i as u64 * full as u64 / (count as u64 - 1)) as u32)
            .collect();
        depths.dedup();
        LevelSet { schema, depths }
    }

    /// The byte-boundary ladder used by the published HHH evaluations
    /// (every 8 chain steps).
    pub fn byte_boundaries(schema: Schema) -> LevelSet {
        let full = schema.full_depth_v4();
        let mut depths: Vec<u32> = (0..=full).step_by(8).collect();
        if *depths.last().expect("non-empty") != full {
            depths.push(full);
        }
        LevelSet { schema, depths }
    }

    /// The schema this ladder belongs to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.depths.len()
    }

    /// Whether the ladder is trivial (root only) — never true for
    /// ladders built by the constructors.
    pub fn is_empty(&self) -> bool {
        self.depths.is_empty()
    }

    /// The chain depths, ascending (0 = root first).
    pub fn depths(&self) -> &[u32] {
        &self.depths
    }

    /// The ancestor of `key` at level `i` (0 = root).
    pub fn ancestor(&self, key: &FlowKey, i: usize) -> FlowKey {
        let d = self.depths[i].min(self.schema.depth(key));
        self.schema.chain_ancestor(key, d)
    }

    /// The index of the deepest level whose depth is ≤ `depth`.
    pub fn level_at_or_above(&self, depth: u32) -> usize {
        match self.depths.binary_search(&depth) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Whether `depth` is exactly one of the ladder's levels.
    pub fn contains_depth(&self, depth: u32) -> bool {
        self.depths.binary_search(&depth).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evenly_spaced_covers_root_to_full() {
        let schema = Schema::one_feature_src();
        let l = LevelSet::evenly_spaced(schema, 5);
        assert_eq!(l.depths().first(), Some(&0));
        assert_eq!(l.depths().last(), Some(&33));
        assert!(l.len() >= 2);
        assert!(l.depths().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn byte_boundaries_of_src_hierarchy() {
        let schema = Schema::one_feature_src();
        let l = LevelSet::byte_boundaries(schema);
        assert_eq!(l.depths(), &[0, 8, 16, 24, 32, 33]);
    }

    #[test]
    fn ancestor_returns_ladder_keys() {
        let schema = Schema::one_feature_src();
        let l = LevelSet::byte_boundaries(schema);
        let key: FlowKey = "src=1.2.3.4/32".parse().unwrap();
        assert_eq!(l.ancestor(&key, 0), FlowKey::ROOT);
        // Depth 25 = /24 in chain terms (len + 1)... depth 24 = /23.
        let a = l.ancestor(&key, 3);
        assert_eq!(schema.depth(&a), 24);
        assert!(a.contains(&key));
        assert_eq!(l.ancestor(&key, 5), key);
    }

    #[test]
    fn level_lookup() {
        let schema = Schema::one_feature_src();
        let l = LevelSet::byte_boundaries(schema);
        assert_eq!(l.level_at_or_above(0), 0);
        assert_eq!(l.level_at_or_above(8), 1);
        assert_eq!(l.level_at_or_above(9), 1);
        assert_eq!(l.level_at_or_above(33), 5);
        assert!(l.contains_depth(16));
        assert!(!l.contains_depth(17));
    }
}
