//! Count-Min sketch (Cormode & Muthukrishnan 2005) and its dyadic
//! extension for hierarchical point queries.

use crate::{LevelSet, StreamSummary};
use flowkey::FlowKey;
use flowtree_core::fxhash;

/// A Count-Min sketch: `depth` rows of `width` counters; point estimates
/// are the row-wise minimum (never an underestimate).
#[derive(Debug, Clone)]
pub struct CountMin {
    width: usize,
    depth: usize,
    rows: Vec<u64>,
    total: u64,
}

impl CountMin {
    /// Creates a sketch with explicit dimensions.
    pub fn new(width: usize, depth: usize) -> CountMin {
        assert!(width >= 1 && depth >= 1);
        CountMin {
            width,
            depth,
            rows: vec![0; width * depth],
            total: 0,
        }
    }

    /// Creates a sketch sized for error `ε` (relative to the stream
    /// total) with failure probability `δ`: width = ⌈e/ε⌉,
    /// depth = ⌈ln(1/δ)⌉.
    pub fn with_error(epsilon: f64, delta: f64) -> CountMin {
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        CountMin::new(width.max(2), depth)
    }

    /// Total weight observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    #[inline]
    fn slot(&self, row: usize, key: &FlowKey) -> usize {
        // Row-salted Fx hash; rows are independent enough for the CM
        // guarantee in practice.
        let h = fxhash(&(row as u64 ^ 0x9E37_79B9, key));
        row * self.width + (h as usize % self.width)
    }

    /// Adds weight for a key.
    pub fn add(&mut self, key: &FlowKey, w: u64) {
        self.total += w;
        for row in 0..self.depth {
            let s = self.slot(row, key);
            self.rows[s] += w;
        }
    }

    /// Point estimate (row-wise minimum).
    pub fn query(&self, key: &FlowKey) -> u64 {
        (0..self.depth)
            .map(|row| self.rows[self.slot(row, key)])
            .min()
            .unwrap_or(0)
    }
}

impl StreamSummary for CountMin {
    fn name(&self) -> &'static str {
        "count-min"
    }

    fn update(&mut self, key: &FlowKey, w: u64) {
        self.add(key, w);
    }

    fn estimate(&self, pattern: &FlowKey) -> f64 {
        // A flat CM can only answer the exact keys it hashed.
        self.query(pattern) as f64
    }

    fn memory_bytes(&self) -> usize {
        self.rows.len() * 8
    }
}

/// Dyadic Count-Min: one sketch per hierarchy level, so point queries at
/// any ladder depth are answerable (each update feeds every level with
/// the key's ancestor — O(levels) per update).
#[derive(Debug, Clone)]
pub struct DyadicCountMin {
    levels: LevelSet,
    sketches: Vec<CountMin>,
}

impl DyadicCountMin {
    /// One `width × depth` sketch per ladder level.
    pub fn new(levels: LevelSet, width: usize, depth: usize) -> DyadicCountMin {
        let sketches = (0..levels.len())
            .map(|_| CountMin::new(width, depth))
            .collect();
        DyadicCountMin { levels, sketches }
    }

    /// The level ladder.
    pub fn levels(&self) -> &LevelSet {
        &self.levels
    }
}

impl StreamSummary for DyadicCountMin {
    fn name(&self) -> &'static str {
        "dyadic-count-min"
    }

    fn update(&mut self, key: &FlowKey, w: u64) {
        for i in 0..self.levels.len() {
            let anc = self.levels.ancestor(key, i);
            self.sketches[i].add(&anc, w);
        }
    }

    fn estimate(&self, pattern: &FlowKey) -> f64 {
        let depth = self.levels.schema().depth(pattern);
        if !self.levels.contains_depth(depth) {
            // Nearest shallower level upper-bounds the answer; that is
            // the documented behavior for off-ladder patterns.
            let i = self.levels.level_at_or_above(depth);
            let anc = self.levels.ancestor(pattern, i);
            return self.sketches[i].query(&anc) as f64;
        }
        let i = self.levels.level_at_or_above(depth);
        self.sketches[i].query(pattern) as f64
    }

    fn memory_bytes(&self) -> usize {
        self.sketches.iter().map(|s| s.memory_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkey::Schema;

    fn key(s: &str) -> FlowKey {
        s.parse().unwrap()
    }

    #[test]
    fn never_underestimates() {
        let mut cm = CountMin::new(64, 4);
        for i in 0..100u32 {
            let k = key(&format!("src=10.0.{}.{}/32", i / 16, i % 16));
            cm.add(&k, (i + 1) as u64);
        }
        for i in 0..100u32 {
            let k = key(&format!("src=10.0.{}.{}/32", i / 16, i % 16));
            assert!(cm.query(&k) >= (i + 1) as u64);
        }
    }

    #[test]
    fn error_bound_holds_on_average() {
        let mut cm = CountMin::with_error(0.01, 0.01);
        for i in 0..2_000u32 {
            cm.add(&key(&format!("src=10.{}.{}.1/32", i / 250, i % 250)), 1);
        }
        let mut total_err = 0u64;
        for i in 0..2_000u32 {
            let q = cm.query(&key(&format!("src=10.{}.{}.1/32", i / 250, i % 250)));
            total_err += q - 1;
        }
        // ε = 1 % of N = 20 per key worst case; the mean should be far
        // below that.
        assert!(
            (total_err as f64 / 2000.0) < 20.0,
            "mean overestimate {}",
            total_err as f64 / 2000.0
        );
    }

    #[test]
    fn dyadic_answers_prefix_levels() {
        let schema = Schema::one_feature_src();
        let mut d = DyadicCountMin::new(LevelSet::byte_boundaries(schema), 1024, 4);
        for i in 0..64u32 {
            d.update(&key(&format!("src=10.0.0.{i}/32")), 2);
        }
        for i in 0..64u32 {
            d.update(&key(&format!("src=20.0.{i}.1/32")), 1);
        }
        // /24-level question (depth 25 is not on the ladder; depth 24 is
        // the /23 — use the exact ladder key at depth 24? The ladder has
        // depth 24 = /23.) Query a ladder-resident /16-depth pattern:
        let q = key("src=10.0.0.0/15"); // depth 16 → on ladder
        assert!(d.estimate(&q) >= 128.0);
        let q2 = key("src=20.0.0.0/15");
        assert!(d.estimate(&q2) >= 64.0);
        // Full keys still answer.
        assert!(d.estimate(&key("src=10.0.0.7/32")) >= 2.0);
    }

    #[test]
    fn memory_accounting_scales() {
        let schema = Schema::one_feature_src();
        let a = DyadicCountMin::new(LevelSet::byte_boundaries(schema), 256, 2);
        let b = DyadicCountMin::new(LevelSet::byte_boundaries(schema), 512, 2);
        assert_eq!(b.memory_bytes(), a.memory_bytes() * 2);
    }
}
