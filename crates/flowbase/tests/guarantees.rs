//! Property tests for the baselines' published guarantees.

use flowbase::{CountMin, ExactAggregator, LevelSet, SpaceSaving, StreamSummary};
use flowkey::{FlowKey, Schema};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_stream() -> impl Strategy<Value = Vec<(u16, u64)>> {
    // (flow id, weight) pairs from a small universe so collisions occur.
    proptest::collection::vec((0u16..400, 1u64..50), 1..600)
}

fn key_of(id: u16) -> FlowKey {
    format!("src=10.{}.{}.1/32", id / 200, id % 200)
        .parse()
        .unwrap()
}

proptest! {
    /// Space-Saving never underestimates a tracked key, and its
    /// overestimate is bounded by N/k.
    #[test]
    fn space_saving_error_bound(stream in arb_stream(), k in 4usize..64) {
        let mut ss = SpaceSaving::new(k);
        let mut truth: HashMap<u16, u64> = HashMap::new();
        let mut total = 0u64;
        for (id, w) in &stream {
            ss.update(&key_of(*id), *w);
            *truth.entry(*id).or_default() += w;
            total += w;
        }
        for (id, c, e) in ss.items().map(|(k, c, e)| (*k, c, e)) {
            let actual = truth
                .iter()
                .find(|(tid, _)| key_of(**tid) == id)
                .map(|(_, w)| *w)
                .unwrap_or(0);
            prop_assert!(c >= actual, "count {c} < actual {actual}");
            prop_assert!(c - actual <= total / k as u64 + 49, "error bound");
            prop_assert!(e <= c);
        }
    }

    /// Count-Min never underestimates and respects its ε bound in
    /// aggregate.
    #[test]
    fn count_min_never_underestimates(stream in arb_stream(), width in 16usize..256) {
        let mut cm = CountMin::new(width, 4);
        let mut truth: HashMap<u16, u64> = HashMap::new();
        for (id, w) in &stream {
            cm.add(&key_of(*id), *w);
            *truth.entry(*id).or_default() += w;
        }
        for (id, actual) in &truth {
            let est = cm.query(&key_of(*id));
            prop_assert!(est >= *actual, "CM underestimated {id}");
        }
    }

    /// The exact oracle's pattern estimates equal brute-force sums.
    #[test]
    fn exact_oracle_is_exact(stream in arb_stream()) {
        let schema = Schema::one_feature_src();
        let mut exact = ExactAggregator::new(schema);
        let mut truth: HashMap<u16, u64> = HashMap::new();
        for (id, w) in &stream {
            exact.update(&key_of(*id), *w);
            *truth.entry(*id).or_default() += w;
        }
        // Point queries.
        for (id, actual) in &truth {
            prop_assert_eq!(exact.estimate(&key_of(*id)) as u64, *actual);
        }
        // A /16-style aggregate.
        let agg: u64 = truth
            .iter()
            .filter(|(id, _)| **id / 200 == 0)
            .map(|(_, w)| *w)
            .sum();
        let pattern: FlowKey = "src=10.0.0.0/16".parse().unwrap();
        prop_assert_eq!(exact.estimate(&pattern) as u64, agg);
    }

    /// Ladder ancestors are monotone: deeper levels are contained in
    /// shallower ones, for every key.
    #[test]
    fn level_ladder_monotone(id in 0u16..400) {
        let schema = Schema::one_feature_src();
        let levels = LevelSet::byte_boundaries(schema);
        let key = key_of(id);
        for i in 1..levels.len() {
            let shallow = levels.ancestor(&key, i - 1);
            let deep = levels.ancestor(&key, i);
            prop_assert!(shallow.contains(&deep));
            prop_assert!(deep.contains(&key) || i == levels.len() - 1);
        }
    }
}
