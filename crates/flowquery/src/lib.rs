//! # flowquery — drill-down queries over distributed summaries
//!
//! The query layer for the paper's motivating scenarios: a small text
//! language ([`parse()`]), an AST ([`Query`]), and a merge-based execution
//! engine ([`QueryEngine`]) over the [`flowdist::Collector`]'s stored
//! summaries.
//!
//! ```text
//! pop src=203.0.113.0/24 sites=* last=24h   # peer volume across sites
//! drill dst under dst=10.0.0.0/8            # which /16 under X/8 is hot?
//! top 10 dport under src=10.0.0.0/8 by bytes
//! hhh 0.01 by packets                       # flows above 1 % of traffic
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod engine;
pub mod parse;

pub use ast::{Query, Scope};
pub use engine::{run_on_tree, CoverageGap, QueryEngine, QueryOutput, Row};
pub use parse::{parse, QueryParseError};
