//! Query AST.
//!
//! The queries from the paper's introduction, as data:
//!
//! * "what is the total volume of traffic sent by one of its peers to
//!   all of five ISP sites in the last 24 hours" → [`Query::Pop`] with a
//!   source-prefix pattern, a site set, and a time range;
//! * "IP address range X/8 has received a lot of traffic … is it due to
//!   a specific IP, a specific /24, or what is happening" →
//!   [`Query::Drill`] / [`Query::TopK`];
//! * "flows above 1 % of the packets" → [`Query::Hhh`].

use flowkey::{Dim, FlowKey};
use flowtree_core::Metric;

/// Which sites and what time range a query covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scope {
    /// `None` = all sites.
    pub sites: Option<Vec<u16>>,
    /// Inclusive lower bound, epoch ms.
    pub from_ms: u64,
    /// Exclusive upper bound, epoch ms.
    pub to_ms: u64,
}

impl Default for Scope {
    fn default() -> Self {
        Scope {
            sites: None,
            from_ms: 0,
            to_ms: u64::MAX,
        }
    }
}

/// A drill-down query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Popularity of one hierarchical pattern.
    Pop {
        /// The pattern.
        pattern: FlowKey,
        /// Site/time scope.
        scope: Scope,
    },
    /// The `k` most popular refinements of `under` along `dim`.
    TopK {
        /// How many rows.
        k: usize,
        /// The pattern to refine (e.g. `src=10.0.0.0/8`).
        under: FlowKey,
        /// The dimension to refine along.
        dim: Dim,
        /// Ranking metric.
        metric: Metric,
        /// Site/time scope.
        scope: Scope,
    },
    /// One-level expansion of `under` along `dim` (all refinements at
    /// the next natural granularity with their shares).
    Drill {
        /// The pattern to expand.
        under: FlowKey,
        /// The dimension to expand along.
        dim: Dim,
        /// Site/time scope.
        scope: Scope,
    },
    /// Hierarchical heavy hitters at threshold `phi`.
    Hhh {
        /// Fraction of total mass (e.g. 0.01).
        phi: f64,
        /// Ranking metric.
        metric: Metric,
        /// Site/time scope.
        scope: Scope,
    },
    /// Per-site breakdown of one pattern (the intro's "volume sent by a
    /// peer to all of five ISP sites", as one query).
    BySite {
        /// The pattern.
        pattern: FlowKey,
        /// Site/time scope (the site set limits which sites appear).
        scope: Scope,
    },
}

impl Query {
    /// This query's scope.
    pub fn scope(&self) -> &Scope {
        match self {
            Query::Pop { scope, .. }
            | Query::TopK { scope, .. }
            | Query::Drill { scope, .. }
            | Query::Hhh { scope, .. }
            | Query::BySite { scope, .. } => scope,
        }
    }
}
