//! The textual query language.
//!
//! ```text
//! pop    <pattern…> [sites=…] [last=…|from=…ms to=…ms]
//! bysite <pattern…> [scope…]          # per-site breakdown
//! top   <k> <dim> under <pattern…> [by packets|bytes|flows] [scope…]
//! drill <dim> under <pattern…> [scope…]
//! hhh   <phi> [by packets|bytes|flows] [scope…]
//! ```
//!
//! Patterns use the `flowkey` component syntax (`src=10.0.0.0/8
//! dport=443`). Scopes: `sites=*` (default) or `sites=1,2,5`;
//! `last=24h` (relative to the `now_ms` given to the parser) or
//! absolute `from=<ms> to=<ms>`. Durations take `s`, `m`, `h`, `d`.
//!
//! Examples from the paper's introduction:
//!
//! ```text
//! pop src=203.0.113.0/24 sites=* last=24h      # peer volume, all sites
//! drill dst under dst=10.0.0.0/8 last=1h       # who inside X/8 is hot?
//! hhh 0.01 by packets                          # flows above 1 % of packets
//! ```

use crate::ast::{Query, Scope};
use flowkey::{Dim, FlowKey};
use flowtree_core::Metric;

/// Query parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError(pub String);

impl core::fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "query parse error: {}", self.0)
    }
}

impl std::error::Error for QueryParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, QueryParseError> {
    Err(QueryParseError(msg.into()))
}

/// Parses one query. `now_ms` anchors relative time ranges (`last=…`).
pub fn parse(input: &str, now_ms: u64) -> Result<Query, QueryParseError> {
    let mut tokens: Vec<&str> = input.split_whitespace().collect();
    if tokens.is_empty() {
        return err("empty query");
    }
    let head = tokens.remove(0);
    // Split off scope tokens from anywhere in the remainder.
    let (scope, rest) = take_scope(&tokens, now_ms)?;
    match head {
        "pop" => {
            let pattern = parse_pattern(&rest)?;
            Ok(Query::Pop { pattern, scope })
        }
        "bysite" => {
            let pattern = parse_pattern(&rest)?;
            Ok(Query::BySite { pattern, scope })
        }
        "top" => {
            if rest.len() < 2 {
                return err("top needs: top <k> <dim> under <pattern>");
            }
            let k: usize = rest[0]
                .parse()
                .map_err(|_| QueryParseError(format!("bad k: {}", rest[0])))?;
            let dim = parse_dim(&rest[1])?;
            let (metric, rest2) = take_metric(&rest[2..])?;
            let under = parse_under(&rest2)?;
            Ok(Query::TopK {
                k,
                under,
                dim,
                metric,
                scope,
            })
        }
        "drill" => {
            if rest.is_empty() {
                return err("drill needs: drill <dim> under <pattern>");
            }
            let dim = parse_dim(&rest[0])?;
            let under = parse_under(&rest[1..])?;
            Ok(Query::Drill { under, dim, scope })
        }
        "hhh" => {
            if rest.is_empty() {
                return err("hhh needs a threshold, e.g. hhh 0.01");
            }
            let phi: f64 = rest[0]
                .parse()
                .map_err(|_| QueryParseError(format!("bad phi: {}", rest[0])))?;
            if !(0.0..=1.0).contains(&phi) {
                return err("phi must be in [0, 1]");
            }
            let (metric, rest2) = take_metric(&rest[1..])?;
            if !rest2.is_empty() {
                return err(format!("unexpected tokens: {rest2:?}"));
            }
            Ok(Query::Hhh { phi, metric, scope })
        }
        other => err(format!("unknown query verb: {other}")),
    }
}

fn parse_dim(s: &str) -> Result<Dim, QueryParseError> {
    Dim::ALL
        .into_iter()
        .find(|d| d.name() == s)
        .ok_or_else(|| QueryParseError(format!("unknown dimension: {s}")))
}

fn parse_pattern(tokens: &[String]) -> Result<FlowKey, QueryParseError> {
    let joined = tokens.join(" ");
    joined
        .parse::<FlowKey>()
        .map_err(|e| QueryParseError(format!("bad pattern `{joined}`: {e}")))
}

/// `under <pattern…>` (the pattern may be empty = root).
fn parse_under(tokens: &[String]) -> Result<FlowKey, QueryParseError> {
    match tokens.first().map(String::as_str) {
        Some("under") => parse_pattern(&tokens[1..]),
        None => Ok(FlowKey::ROOT),
        Some(other) => err(format!("expected `under`, got `{other}`")),
    }
}

/// Optional `by <metric>` prefix.
fn take_metric(tokens: &[String]) -> Result<(Metric, Vec<String>), QueryParseError> {
    if tokens.first().map(String::as_str) == Some("by") {
        let m = match tokens.get(1).map(String::as_str) {
            Some("packets") => Metric::Packets,
            Some("bytes") => Metric::Bytes,
            Some("flows") => Metric::Flows,
            other => return err(format!("unknown metric: {other:?}")),
        };
        Ok((m, tokens[2..].to_vec()))
    } else {
        Ok((Metric::Packets, tokens.to_vec()))
    }
}

/// Extracts `sites=…`, `last=…`, `from=…`, `to=…` from anywhere in the
/// token list; returns the scope and the remaining tokens in order.
fn take_scope(tokens: &[&str], now_ms: u64) -> Result<(Scope, Vec<String>), QueryParseError> {
    let mut scope = Scope::default();
    let mut rest = Vec::new();
    let mut saw_last = false;
    for t in tokens {
        if let Some(v) = t.strip_prefix("sites=") {
            if v == "*" {
                scope.sites = None;
            } else {
                let sites: Result<Vec<u16>, _> = v.split(',').map(|s| s.parse::<u16>()).collect();
                scope.sites = Some(sites.map_err(|_| QueryParseError(format!("bad sites: {v}")))?);
            }
        } else if let Some(v) = t.strip_prefix("last=") {
            let dur = parse_duration_ms(v)?;
            scope.from_ms = now_ms.saturating_sub(dur);
            scope.to_ms = now_ms.saturating_add(1);
            saw_last = true;
        } else if let Some(v) = t.strip_prefix("from=") {
            if saw_last {
                return err("use either last= or from=/to=");
            }
            scope.from_ms = v
                .parse()
                .map_err(|_| QueryParseError(format!("bad from: {v}")))?;
        } else if let Some(v) = t.strip_prefix("to=") {
            if saw_last {
                return err("use either last= or from=/to=");
            }
            scope.to_ms = v
                .parse()
                .map_err(|_| QueryParseError(format!("bad to: {v}")))?;
        } else {
            rest.push((*t).to_string());
        }
    }
    if scope.from_ms >= scope.to_ms {
        return err("empty time range");
    }
    Ok((scope, rest))
}

fn parse_duration_ms(s: &str) -> Result<u64, QueryParseError> {
    let (num, unit) = s.split_at(s.len().saturating_sub(1));
    let n: u64 = num
        .parse()
        .map_err(|_| QueryParseError(format!("bad duration: {s}")))?;
    let ms = match unit {
        "s" => n * 1_000,
        "m" => n * 60_000,
        "h" => n * 3_600_000,
        "d" => n * 86_400_000,
        _ => return err(format!("bad duration unit in: {s}")),
    };
    Ok(ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    const NOW: u64 = 1_700_000_000_000;

    #[test]
    fn parses_the_paper_intro_queries() {
        let q = parse("pop src=203.0.113.0/24 sites=* last=24h", NOW).unwrap();
        match q {
            Query::Pop { pattern, scope } => {
                assert_eq!(pattern.to_string(), "src=203.0.113.0/24");
                assert_eq!(scope.sites, None);
                assert_eq!(scope.from_ms, NOW - 86_400_000);
            }
            other => panic!("{other:?}"),
        }

        let q = parse("drill dst under dst=10.0.0.0/8 last=1h", NOW).unwrap();
        match q {
            Query::Drill { under, dim, .. } => {
                assert_eq!(dim, Dim::DstIp);
                assert_eq!(under.to_string(), "dst=10.0.0.0/8");
            }
            other => panic!("{other:?}"),
        }

        let q = parse("hhh 0.01 by packets", NOW).unwrap();
        match q {
            Query::Hhh { phi, metric, .. } => {
                assert_eq!(phi, 0.01);
                assert_eq!(metric, Metric::Packets);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_topk_with_sites_and_metric() {
        let q = parse(
            "top 5 dst by bytes under src=10.0.0.0/8 dport=443 sites=1,3",
            NOW,
        )
        .unwrap();
        match q {
            Query::TopK {
                k,
                under,
                dim,
                metric,
                scope,
            } => {
                assert_eq!(k, 5);
                assert_eq!(dim, Dim::DstIp);
                assert_eq!(metric, Metric::Bytes);
                assert_eq!(under.to_string(), "src=10.0.0.0/8 dport=443");
                assert_eq!(scope.sites, Some(vec![1, 3]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn absolute_ranges() {
        let q = parse("pop src=1.0.0.0/8 from=1000 to=5000", NOW).unwrap();
        let s = q.scope();
        assert_eq!((s.from_ms, s.to_ms), (1000, 5000));
    }

    #[test]
    fn durations() {
        assert_eq!(parse_duration_ms("90s").unwrap(), 90_000);
        assert_eq!(parse_duration_ms("5m").unwrap(), 300_000);
        assert_eq!(parse_duration_ms("2h").unwrap(), 7_200_000);
        assert_eq!(parse_duration_ms("1d").unwrap(), 86_400_000);
        assert!(parse_duration_ms("5x").is_err());
        assert!(parse_duration_ms("h").is_err());
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "frobnicate src=1.0.0.0/8",
            "pop src=1.0.0.0/33",
            "top x dst under src=1.0.0.0/8",
            "top 5 bogusdim under src=1.0.0.0/8",
            "hhh 1.5",
            "hhh",
            "pop src=1.0.0.0/8 from=10 to=5",
            "pop src=1.0.0.0/8 last=1h from=0",
            "drill dst over dst=1.0.0.0/8",
        ] {
            assert!(parse(bad, NOW).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn drill_defaults_to_root() {
        let q = parse("drill src", NOW).unwrap();
        match q {
            Query::Drill { under, dim, .. } => {
                assert!(under.is_root());
                assert_eq!(dim, Dim::SrcIp);
            }
            other => panic!("{other:?}"),
        }
    }
}
