//! Query execution over a [`Collector`].
//!
//! The planner is merge-based, exactly as the paper intends: pick the
//! (site, window) summaries in scope, merge them into one Flowtree, and
//! evaluate the question on the merged tree. Refinement candidates for
//! `top`/`drill` come from the merged tree's retained nodes, so the
//! engine never has to enumerate the (astronomic) key space.
//!
//! Merged trees come from the collector's **cached view** layer
//! ([`Collector::merged_view`]): repeated queries over the same scope —
//! a dashboard refreshing `top`/`drill`/`hhh` — reuse one structurally
//! merged tree instead of re-merging every (site, window) summary per
//! run, and a scope that keeps gaining windows is extended
//! incrementally rather than rebuilt.

use crate::ast::{Query, Scope};
use flowdist::Collector;
use flowkey::{Dim, FlowKey};
use flowtree_core::{FlowTree, Metric, PopEst};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One result row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The generalized flow the row describes.
    pub key: FlowKey,
    /// Its estimated popularity in scope.
    pub est: PopEst,
    /// Share of the scoped total (0..=1) by the ranking metric.
    pub share: f64,
}

/// One window's coverage gap in a scoped answer: sites the scope asked
/// for that have data *somewhere* in range but not in this window —
/// per-window truth, where a lifetime union would still advertise
/// them. Sites with no data anywhere are a different (coarser) signal
/// and are reported separately by the callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageGap {
    /// The window's start (epoch ms).
    pub window_start_ms: u64,
    /// The scope sites absent from this window, ascending.
    pub missing: Vec<u16>,
}

/// Result of running a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// A single estimate (for `pop`).
    Pop(PopEst),
    /// Ranked rows (for `top`, `drill`, `hhh`).
    Table(Vec<Row>),
}

impl QueryOutput {
    /// Renders a human-readable report.
    pub fn render(&self, metric: Metric) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        match self {
            QueryOutput::Pop(est) => {
                let _ = writeln!(
                    out,
                    "popularity: {:.0} packets, {:.0} bytes, {:.0} flows",
                    est.packets, est.bytes, est.flows
                );
            }
            QueryOutput::Table(rows) => {
                for r in rows {
                    let _ = writeln!(
                        out,
                        "{:>12.0}  {:>6.2}%  {}",
                        r.est.get(metric),
                        r.share * 100.0,
                        r.key
                    );
                }
            }
        }
        out
    }
}

/// Executes queries against a collector.
#[derive(Debug)]
pub struct QueryEngine<'a> {
    collector: &'a Collector,
}

impl<'a> QueryEngine<'a> {
    /// Wraps a collector.
    pub fn new(collector: &'a Collector) -> QueryEngine<'a> {
        QueryEngine { collector }
    }

    /// Runs one query.
    pub fn run(&self, query: &Query) -> QueryOutput {
        match query {
            Query::Pop { pattern, scope } => QueryOutput::Pop(self.scoped_estimate(pattern, scope)),
            Query::TopK {
                k,
                under,
                dim,
                metric,
                scope,
            } => {
                let mut rows = self.refine(under, *dim, scope, *metric);
                rows.truncate(*k);
                QueryOutput::Table(rows)
            }
            Query::Drill { under, dim, scope } => {
                QueryOutput::Table(self.refine(under, *dim, scope, Metric::Packets))
            }
            Query::BySite { pattern, scope } => {
                let sites = match &scope.sites {
                    Some(s) => s.clone(),
                    None => self.collector.sites(),
                };
                let total = self
                    .scoped_estimate(pattern, scope)
                    .get(Metric::Packets)
                    .abs()
                    .max(f64::MIN_POSITIVE);
                let mut rows: Vec<Row> = sites
                    .into_iter()
                    .map(|site| {
                        let est = self.collector.query(
                            pattern,
                            Some(&[site]),
                            scope.from_ms,
                            scope.to_ms,
                        );
                        Row {
                            key: pattern.with_site(flowkey::Site::Is(site)),
                            est,
                            share: est.get(Metric::Packets) / total,
                        }
                    })
                    .collect();
                rows.sort_by(|a, b| {
                    b.est
                        .packets
                        .partial_cmp(&a.est.packets)
                        .expect("finite")
                        .then(a.key.cmp(&b.key))
                });
                QueryOutput::Table(rows)
            }
            Query::Hhh { phi, metric, scope } => {
                QueryOutput::Table(hhh_rows(&self.merged(scope), *phi, *metric))
            }
        }
    }

    /// The per-window coverage gaps of a scope: for every stored
    /// window in range, which of the scope's sites were **not** folded
    /// into it — read off the collector's per-window provenance, so a
    /// site that reported other windows but skipped this one is
    /// reported for exactly this window. Sites with no data in any
    /// in-range window are excluded (they are lifetime-missing, a
    /// coarser signal the hierarchy planner reports separately).
    pub fn coverage_gaps(&self, scope: &Scope) -> Vec<CoverageGap> {
        let mut starts: Vec<u64> = self
            .collector
            .window_keys()
            .into_iter()
            .map(|(start, _)| start)
            .filter(|&s| s >= scope.from_ms && s < scope.to_ms)
            .collect();
        starts.dedup();
        let mut lifetime: std::collections::BTreeSet<u16> = std::collections::BTreeSet::new();
        let per_window: Vec<(u64, std::collections::BTreeSet<u16>)> = starts
            .into_iter()
            .map(|s| {
                let cov = self.collector.window_coverage(s);
                lifetime.extend(cov.iter().copied());
                (s, cov)
            })
            .collect();
        let wanted: Vec<u16> = match &scope.sites {
            Some(sites) => {
                let mut v: Vec<u16> = sites
                    .iter()
                    .copied()
                    .filter(|s| lifetime.contains(s))
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            }
            None => lifetime.iter().copied().collect(),
        };
        per_window
            .into_iter()
            .filter_map(|(start, cov)| {
                let missing: Vec<u16> = wanted
                    .iter()
                    .copied()
                    .filter(|s| !cov.contains(s))
                    .collect();
                (!missing.is_empty()).then_some(CoverageGap {
                    window_start_ms: start,
                    missing,
                })
            })
            .collect()
    }

    fn merged(&self, scope: &Scope) -> Arc<FlowTree> {
        self.collector
            .merged_view(scope.sites.as_deref(), scope.from_ms, scope.to_ms)
    }

    fn scoped_estimate(&self, pattern: &FlowKey, scope: &Scope) -> PopEst {
        self.collector
            .query(pattern, scope.sites.as_deref(), scope.from_ms, scope.to_ms)
    }

    /// Expands `under` one natural granularity step along `dim` over
    /// the scope's merged view.
    fn refine(&self, under: &FlowKey, dim: Dim, scope: &Scope, metric: Metric) -> Vec<Row> {
        refine_on(&self.merged(scope), under, dim, metric)
    }
}

/// Evaluates one query against an already-merged scope tree — the
/// single-structure half of the engine, shared with callers that build
/// their merged view elsewhere (the hierarchy tier's fan-out path
/// merges per-relay cached views and evaluates here). Returns `None`
/// for [`Query::BySite`], which needs per-site storage, not one merged
/// tree.
pub fn run_on_tree(query: &Query, tree: &FlowTree) -> Option<QueryOutput> {
    match query {
        Query::Pop { pattern, .. } => Some(QueryOutput::Pop(tree.estimate_pattern(pattern))),
        Query::TopK {
            k,
            under,
            dim,
            metric,
            ..
        } => {
            let mut rows = refine_on(tree, under, *dim, *metric);
            rows.truncate(*k);
            Some(QueryOutput::Table(rows))
        }
        Query::Drill { under, dim, .. } => Some(QueryOutput::Table(refine_on(
            tree,
            under,
            *dim,
            Metric::Packets,
        ))),
        Query::Hhh { phi, metric, .. } => Some(QueryOutput::Table(hhh_rows(tree, *phi, *metric))),
        Query::BySite { .. } => None,
    }
}

/// Hierarchical heavy hitters of one merged tree as ranked rows.
fn hhh_rows(merged: &FlowTree, phi: f64, metric: Metric) -> Vec<Row> {
    let total = merged.total().get(metric).max(1) as f64;
    merged
        .hhh(phi, metric)
        .into_iter()
        .map(|h| Row {
            key: h.key,
            est: PopEst::from(h.discounted),
            share: h.discounted.get(metric) as f64 / total,
        })
        .collect()
}

/// Expands `under` one natural granularity step along `dim`: the
/// candidates are derived from the merged tree's retained nodes, each
/// estimated and ranked.
fn refine_on(merged: &FlowTree, under: &FlowKey, dim: Dim, metric: Metric) -> Vec<Row> {
    let target_depth = refine_depth(under, dim);
    let mut candidates: BTreeMap<FlowKey, ()> = BTreeMap::new();
    for node in merged.iter() {
        if !under.contains(node.key) {
            continue;
        }
        // Project the node's dim-feature up to the target granularity
        // and substitute it into the `under` pattern.
        if node.key.dim_depth(dim) < target_depth {
            continue; // too coarse to name a refinement
        }
        if let Some(projected) = node.key.dim_ancestor_at(dim, target_depth) {
            let mut refined = *under;
            match dim {
                Dim::SrcIp => refined.src = projected.src,
                Dim::DstIp => refined.dst = projected.dst,
                Dim::SrcPort => refined.sport = projected.sport,
                Dim::DstPort => refined.dport = projected.dport,
                Dim::Proto => refined.proto = projected.proto,
                Dim::Time => refined.time = projected.time,
                Dim::Site => refined.site = projected.site,
            }
            candidates.insert(refined, ());
        }
    }
    let total = merged
        .estimate_pattern(under)
        .get(metric)
        .abs()
        .max(f64::MIN_POSITIVE);
    let mut rows: Vec<Row> = candidates
        .into_keys()
        .map(|key| {
            let est = merged.estimate_pattern(&key);
            Row {
                key,
                est,
                share: est.get(metric) / total,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.est
            .get(metric)
            .partial_cmp(&a.est.get(metric))
            .expect("finite")
            .then(a.key.cmp(&b.key))
    });
    rows
}

/// The next natural granularity below `under` along `dim`: +8 bits for
/// IP prefixes (the /8 → /16 → /24 ladder operators drill along),
/// +4 bits for ports, one hierarchy step otherwise.
fn refine_depth(under: &FlowKey, dim: Dim) -> u16 {
    let cur = under.dim_depth(dim);
    let (step, max) = match dim {
        Dim::SrcIp | Dim::DstIp => (8, 33),
        Dim::SrcPort | Dim::DstPort => (4, 16),
        Dim::Proto => (1, 1),
        Dim::Time => (8, 36),
        Dim::Site => (1, 2),
    };
    // IP depth 0 = Any; the first refinement is /8 (depth 9).
    let next = if matches!(dim, Dim::SrcIp | Dim::DstIp) && cur == 0 {
        9
    } else {
        cur + step
    };
    next.min(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use flowdist::{Collector, DaemonConfig, SiteDaemon, TransferMode};
    use flowkey::Schema;
    use flownet::FlowRecord;
    use flowtree_core::Config;

    /// Two sites, two windows; site 0 carries the heavy /24.
    fn collector() -> Collector {
        let mut collector = Collector::new(Schema::five_feature(), Config::with_budget(4096));
        for site in 0..2u16 {
            let mut cfg = DaemonConfig::new(site);
            cfg.window_ms = 1_000;
            cfg.schema = Schema::five_feature();
            cfg.tree = Config::with_budget(4096);
            cfg.transfer = TransferMode::Full;
            let mut d = SiteDaemon::new(cfg);
            let mut summaries = Vec::new();
            for w in 0..2u64 {
                for h in 0..10u8 {
                    let packets = if site == 0 && h < 5 { 100 } else { 3 };
                    let mut r = FlowRecord::v4(
                        [10, site as u8, 7, h],
                        [192, 0, 2, h % 3],
                        40_000 + h as u16,
                        if h % 2 == 0 { 443 } else { 53 },
                        6,
                        packets,
                        packets * 100,
                    );
                    r.first_ms = w * 1000 + 10 + h as u64;
                    r.last_ms = r.first_ms;
                    summaries.extend(d.ingest_record(&r));
                }
            }
            summaries.extend(d.flush());
            for s in summaries {
                collector.apply_bytes(&s.encode()).unwrap();
            }
        }
        collector
    }

    #[test]
    fn pop_scopes_by_site_and_time() {
        let c = collector();
        let e = QueryEngine::new(&c);
        // All traffic.
        let q = parse("pop", u64::MAX - 1).unwrap();
        let QueryOutput::Pop(all) = e.run(&q) else {
            panic!()
        };
        // site0: (5×100 + 5×3) ×2 windows + site1: 10×3×2 = 1030+60.
        assert!((all.packets - 1090.0).abs() < 1e-6, "{}", all.packets);
        // Site 1 only.
        let q = parse("pop sites=1", u64::MAX - 1).unwrap();
        let QueryOutput::Pop(s1) = e.run(&q) else {
            panic!()
        };
        assert!((s1.packets - 60.0).abs() < 1e-6, "{}", s1.packets);
        // First window only.
        let q = parse("pop from=0 to=1000", u64::MAX - 1).unwrap();
        let QueryOutput::Pop(w0) = e.run(&q) else {
            panic!()
        };
        assert!((w0.packets - 545.0).abs() < 1e-6, "{}", w0.packets);
    }

    #[test]
    fn drill_finds_the_hot_prefix() {
        let c = collector();
        let e = QueryEngine::new(&c);
        let q = parse("drill src", u64::MAX - 1).unwrap();
        let QueryOutput::Table(rows) = e.run(&q) else {
            panic!()
        };
        assert!(!rows.is_empty());
        // The hot /8 is 10.0.0.0/8 (all traffic).
        assert_eq!(rows[0].key.to_string(), "src=10.0.0.0/8");
        assert!(rows[0].share > 0.99);
        // Drill further: under 10/8, the /16 of site 0 dominates.
        let q = parse("drill src under src=10.0.0.0/8", u64::MAX - 1).unwrap();
        let QueryOutput::Table(rows) = e.run(&q) else {
            panic!()
        };
        assert_eq!(rows[0].key.to_string(), "src=10.0.0.0/16");
        assert!(rows[0].share > 0.9, "{}", rows[0].share);
    }

    #[test]
    fn topk_ranks_and_truncates() {
        let c = collector();
        let e = QueryEngine::new(&c);
        let q = parse("top 3 dport under src=10.0.0.0/8", u64::MAX - 1).unwrap();
        let QueryOutput::Table(rows) = e.run(&q) else {
            panic!()
        };
        assert!(rows.len() <= 3);
        assert!(rows[0].est.packets >= rows[rows.len() - 1].est.packets);
    }

    #[test]
    fn hhh_returns_shares() {
        let c = collector();
        let e = QueryEngine::new(&c);
        let q = parse("hhh 0.2 by packets", u64::MAX - 1).unwrap();
        let QueryOutput::Table(rows) = e.run(&q) else {
            panic!()
        };
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.share >= 0.2 - 1e-9, "{} at {}", r.share, r.key);
        }
    }

    #[test]
    fn render_is_humane() {
        let c = collector();
        let e = QueryEngine::new(&c);
        let q = parse("drill src", u64::MAX - 1).unwrap();
        let out = e.run(&q).render(Metric::Packets);
        assert!(out.contains("src=10.0.0.0/8"));
        assert!(out.contains('%'));
    }
}

#[cfg(test)]
mod bysite_tests {
    use super::*;
    use crate::parse::parse;
    use flowdist::{Collector, DaemonConfig, SiteDaemon, TransferMode};
    use flowkey::Schema;
    use flownet::FlowRecord;
    use flowtree_core::Config;

    #[test]
    fn bysite_breaks_down_the_peer_question() {
        let mut collector = Collector::new(Schema::five_feature(), Config::with_budget(1024));
        for site in 0..3u16 {
            let mut cfg = DaemonConfig::new(site);
            cfg.window_ms = 1_000;
            cfg.schema = Schema::five_feature();
            cfg.tree = Config::with_budget(1024);
            cfg.transfer = TransferMode::Full;
            let mut d = SiteDaemon::new(cfg);
            let mut summaries = Vec::new();
            // The peer sends (site+1) × 10 packets to each site.
            let mut r = FlowRecord::v4(
                [203, 0, 113, 9],
                [10, site as u8, 0, 1],
                5555,
                443,
                6,
                (site as u64 + 1) * 10,
                1_000,
            );
            r.first_ms = 100;
            r.last_ms = 100;
            summaries.extend(d.ingest_record(&r));
            summaries.extend(d.flush());
            for s in summaries {
                collector.apply_bytes(&s.encode()).unwrap();
            }
        }
        let engine = QueryEngine::new(&collector);
        let q = parse("bysite src=203.0.113.0/24", u64::MAX - 1).unwrap();
        let QueryOutput::Table(rows) = engine.run(&q) else {
            panic!()
        };
        assert_eq!(rows.len(), 3);
        // Sorted by volume: site 2 (30) first.
        assert_eq!(rows[0].est.packets, 30.0);
        assert_eq!(rows[2].est.packets, 10.0);
        assert!(
            rows[0].key.to_string().contains("site=2"),
            "{}",
            rows[0].key
        );
        let share_sum: f64 = rows.iter().map(|r| r.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        // Restricting the scope restricts the rows.
        let q = parse("bysite src=203.0.113.0/24 sites=1", u64::MAX - 1).unwrap();
        let QueryOutput::Table(rows) = engine.run(&q) else {
            panic!()
        };
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].est.packets, 20.0);
    }
}
