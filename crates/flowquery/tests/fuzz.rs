//! Parser robustness: arbitrary input must never panic, valid queries
//! must round-trip through their components.

use flowquery::parse;
use proptest::prelude::*;

proptest! {
    /// The parser never panics, whatever the input.
    #[test]
    fn parser_never_panics(input in ".{0,120}") {
        let _ = parse(&input, 1_700_000_000_000);
    }

    /// Structured garbage around valid verbs never panics either.
    #[test]
    fn structured_fuzz(
        verb in prop::sample::select(vec!["pop", "top", "drill", "hhh", "zap"]),
        k in any::<u32>(),
        dim in prop::sample::select(vec!["src", "dst", "sport", "dport", "proto", "x"]),
        oct in any::<[u8; 4]>(),
        len in 0u8..=40,
        dur in any::<u16>(),
        unit in prop::sample::select(vec!["s", "m", "h", "d", "q"]),
    ) {
        let q = format!(
            "{verb} {k} {dim} under src={}.{}.{}.{}/{len} last={dur}{unit}",
            oct[0], oct[1], oct[2], oct[3]
        );
        let _ = parse(&q, u64::MAX / 2);
    }

    /// Every syntactically valid pop query parses and scopes correctly.
    #[test]
    fn valid_pop_queries_parse(
        oct in any::<[u8; 4]>(),
        len in 0u8..=32,
        port in any::<u16>(),
        hours in 1u64..10_000,
    ) {
        let now = 1_700_000_000_000u64;
        let q = format!(
            "pop src={}.{}.{}.{}/{len} dport={port} last={hours}h",
            oct[0], oct[1], oct[2], oct[3]
        );
        let parsed = parse(&q, now).expect("valid query");
        let scope = parsed.scope();
        prop_assert_eq!(scope.to_ms, now + 1);
        prop_assert_eq!(scope.from_ms, now.saturating_sub(hours * 3_600_000));
    }
}
