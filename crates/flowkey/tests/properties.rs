//! Property-based tests for the feature lattice and the canonical chain.

use flowkey::pack::{pack_key, unpack_key};
use flowkey::{Dim, FlowKey, IpNet, Ipv4Net, Ipv6Net, PortRange, Proto, Schema, Site, TimeBucket};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

fn arb_ipnet() -> impl Strategy<Value = IpNet> {
    prop_oneof![
        1 => Just(IpNet::Any),
        8 => (any::<u32>(), 0u8..=32)
            .prop_map(|(a, l)| IpNet::V4(Ipv4Net::new(Ipv4Addr::from(a), l).unwrap())),
        3 => (any::<u128>(), 0u8..=128)
            .prop_map(|(a, l)| IpNet::V6(Ipv6Net::new(Ipv6Addr::from(a), l).unwrap())),
    ]
}

fn arb_port() -> impl Strategy<Value = PortRange> {
    (any::<u16>(), 0u8..=16).prop_map(|(b, l)| PortRange::new(b, l).unwrap())
}

fn arb_proto() -> impl Strategy<Value = Proto> {
    prop_oneof![Just(Proto::Any), any::<u8>().prop_map(Proto::Is)]
}

fn arb_time() -> impl Strategy<Value = TimeBucket> {
    (0u64..(1 << 36), 0u8..=TimeBucket::MAX_LEVEL)
        .prop_map(|(s, l)| TimeBucket::new(s % (1 << 36), l).unwrap())
}

fn arb_site() -> impl Strategy<Value = Site> {
    prop_oneof![
        Just(Site::Any),
        any::<u8>().prop_map(Site::Region),
        any::<u16>().prop_map(Site::Is),
    ]
}

prop_compose! {
    fn arb_key()(
        src in arb_ipnet(),
        dst in arb_ipnet(),
        sport in arb_port(),
        dport in arb_port(),
        proto in arb_proto(),
        time in arb_time(),
        site in arb_site(),
    ) -> FlowKey {
        FlowKey { src, dst, sport, dport, proto, time, site }
    }
}

fn schemas() -> Vec<Schema> {
    vec![
        Schema::one_feature_src(),
        Schema::two_feature(),
        Schema::four_feature(),
        Schema::five_feature(),
        Schema::extended(),
    ]
}

proptest! {
    /// Containment is a partial order: reflexive, antisymmetric, transitive.
    #[test]
    fn containment_partial_order(a in arb_key(), b in arb_key(), c in arb_key()) {
        prop_assert!(a.contains(&a));
        if a.contains(&b) && b.contains(&a) {
            prop_assert_eq!(a, b);
        }
        if a.contains(&b) && b.contains(&c) {
            prop_assert!(a.contains(&c));
        }
    }

    /// The join contains both operands; the meet is contained in both
    /// (or the keys are disjoint, in which case they must not overlap in
    /// some dimension).
    #[test]
    fn join_meet_bounds(a in arb_key(), b in arb_key()) {
        let j = a.join(&b);
        prop_assert!(j.contains(&a));
        prop_assert!(j.contains(&b));
        match a.meet(&b) {
            Some(m) => {
                prop_assert!(a.contains(&m));
                prop_assert!(b.contains(&m));
                prop_assert!(a.overlaps(&b));
            }
            None => prop_assert!(!a.overlaps(&b)),
        }
    }

    /// Meet is idempotent, commutative, and absorbs containment.
    #[test]
    fn meet_laws(a in arb_key(), b in arb_key()) {
        prop_assert_eq!(a.meet(&a), Some(a));
        prop_assert_eq!(a.meet(&b), b.meet(&a));
        if a.contains(&b) {
            prop_assert_eq!(a.meet(&b), Some(b));
        }
    }

    /// The canonical parent chain terminates at the root, shrinks depth
    /// by exactly one per step, and every chain key contains the start.
    #[test]
    fn chain_terminates_and_is_monotone(key in arb_key()) {
        for schema in schemas() {
            let key = schema.canonicalize(&key);
            let mut cur = key;
            let mut depth = schema.depth(&cur);
            let mut guard = 0u32;
            while let Some(p) = schema.parent(&cur) {
                prop_assert!(p.contains(&cur));
                prop_assert!(p.contains(&key));
                prop_assert_eq!(schema.depth(&p), depth - 1);
                cur = p;
                depth -= 1;
                guard += 1;
                prop_assert!(guard <= 512, "runaway chain");
            }
            prop_assert!(cur.is_root());
        }
    }

    /// chain_ancestor is consistent: the ancestor-of-an-ancestor equals
    /// the direct ancestor at the shallower depth.
    #[test]
    fn chain_ancestor_consistency(key in arb_key(), d1 in 0u32..200, d2 in 0u32..200) {
        for schema in schemas() {
            let key = schema.canonicalize(&key);
            let full = schema.depth(&key);
            let (lo, hi) = (d1.min(d2) % (full + 1), d1.max(d2) % (full + 1));
            let (lo, hi) = (lo.min(hi), lo.max(hi));
            let mid = schema.chain_ancestor(&key, hi);
            let via_mid = schema.chain_ancestor(&mid, lo);
            let direct = schema.chain_ancestor(&key, lo);
            prop_assert_eq!(via_mid, direct);
        }
    }

    /// The LCCA is on both chains and is the deepest such key.
    #[test]
    fn lcca_is_lowest_common(a in arb_key(), b in arb_key()) {
        for schema in schemas() {
            let a = schema.canonicalize(&a);
            let b = schema.canonicalize(&b);
            let l = schema.lcca(&a, &b);
            prop_assert!(schema.is_chain_ancestor(&l, &a));
            prop_assert!(schema.is_chain_ancestor(&l, &b));
            let dl = schema.depth(&l);
            if dl < schema.depth(&a) {
                let deeper = schema.chain_ancestor(&a, dl + 1);
                prop_assert!(!schema.is_chain_ancestor(&deeper, &b));
            }
        }
    }

    /// Canonical packing roundtrips and consumes exactly its bytes.
    #[test]
    fn pack_roundtrip(key in arb_key()) {
        let mut buf = Vec::new();
        pack_key(&mut buf, &key);
        let (back, n) = unpack_key(&buf).unwrap();
        prop_assert_eq!(back, key);
        prop_assert_eq!(n, buf.len());
        // With trailing garbage the decoder must stop at the key's end.
        buf.push(0xAB);
        let (back2, n2) = unpack_key(&buf).unwrap();
        prop_assert_eq!(back2, key);
        prop_assert_eq!(n2, buf.len() - 1);
    }

    /// Truncating any packed key must yield an error, never a panic.
    #[test]
    fn pack_truncation_errors(key in arb_key(), cut in 0usize..64) {
        let mut buf = Vec::new();
        pack_key(&mut buf, &key);
        if cut < buf.len() {
            prop_assert!(unpack_key(&buf[..cut]).is_err());
        }
    }

    /// Unpacking arbitrary bytes never panics.
    #[test]
    fn unpack_fuzz_no_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = unpack_key(&bytes);
    }

    /// Display → FromStr roundtrips for every key.
    #[test]
    fn display_parse_roundtrip(key in arb_key()) {
        let s = key.to_string();
        let back: FlowKey = s.parse().unwrap();
        prop_assert_eq!(back, key);
    }

    /// Generalizing any single dimension yields a strict container.
    #[test]
    fn generalize_dim_contains(key in arb_key()) {
        for dim in Dim::ALL {
            if let Some(up) = key.generalize(dim) {
                prop_assert!(up.contains(&key));
                prop_assert!(up != key);
                prop_assert_eq!(up.dim_depth(dim) + 1, key.dim_depth(dim));
            } else {
                prop_assert_eq!(key.dim_depth(dim), 0);
            }
        }
    }
}
