//! Golden tests pinning the canonical generalization schedule.
//!
//! The chain schedule is part of the wire format: two parties exchanging
//! summaries must agree on every key's canonical chain, and a serialized
//! tree's parent references encode chain relationships. If one of these
//! tests fails, the schedule changed — bump the codec version and treat
//! old summaries as unreadable.

use flowkey::{FlowKey, Schema};

#[test]
fn five_feature_chain_prefix_is_stable() {
    let schema = Schema::five_feature();
    let key: FlowKey = "src=10.1.2.3/32 dst=192.0.2.9/32 sport=49152 dport=443 proto=tcp"
        .parse()
        .unwrap();
    let chain: Vec<String> = schema
        .chain_up(&key)
        .take(12)
        .map(|k| k.to_string())
        .collect();
    assert_eq!(
        chain,
        [
            "src=10.1.2.3/32 dst=192.0.2.9/32 sport=49152-49153 dport=443 proto=tcp",
            "src=10.1.2.3/32 dst=192.0.2.9/32 sport=49152-49153 dport=442-443 proto=tcp",
            "src=10.1.2.3/32 dst=192.0.2.9/32 sport=49152-49153 dport=442-443",
            "src=10.1.2.2/31 dst=192.0.2.9/32 sport=49152-49153 dport=442-443",
            "src=10.1.2.2/31 dst=192.0.2.8/31 sport=49152-49153 dport=442-443",
            "src=10.1.2.0/30 dst=192.0.2.8/31 sport=49152-49153 dport=442-443",
            "src=10.1.2.0/30 dst=192.0.2.8/30 sport=49152-49153 dport=442-443",
            "src=10.1.2.0/29 dst=192.0.2.8/30 sport=49152-49153 dport=442-443",
            "src=10.1.2.0/29 dst=192.0.2.8/29 sport=49152-49153 dport=442-443",
            "src=10.1.2.0/29 dst=192.0.2.8/29 sport=49152-49155 dport=442-443",
            "src=10.1.2.0/29 dst=192.0.2.8/29 sport=49152-49155 dport=440-443",
            "src=10.1.2.0/28 dst=192.0.2.8/29 sport=49152-49155 dport=440-443",
        ],
        "the canonical schedule changed — this breaks serialized summaries"
    );
}

#[test]
fn one_feature_chain_is_one_bit_per_step() {
    let schema = Schema::one_feature_src();
    let key: FlowKey = "src=192.0.2.133/32".parse().unwrap();
    let chain: Vec<FlowKey> = schema.chain_up(&key).collect();
    assert_eq!(chain.len(), 33);
    assert_eq!(chain[0].to_string(), "src=192.0.2.132/31");
    assert_eq!(chain[7].to_string(), "src=192.0.2.0/24");
    assert_eq!(chain[31].to_string(), "src=0.0.0.0/0");
    assert!(chain[32].is_root());
}

#[test]
fn chain_up_agrees_with_chain_ancestor_everywhere() {
    for schema in [
        Schema::one_feature_src(),
        Schema::four_feature(),
        Schema::extended(),
    ] {
        let key: FlowKey = "src=172.16.5.9/32 dst=198.51.100.23/32 sport=55555 dport=8080 \
                            proto=udp time=1700000000+1s site=17"
            .parse()
            .unwrap();
        let key = schema.canonicalize(&key);
        let full = schema.depth(&key);
        let chain: Vec<FlowKey> = schema.chain_up(&key).collect();
        assert_eq!(chain.len() as u32, full);
        for (i, k) in chain.iter().enumerate() {
            let want = schema.chain_ancestor(&key, full - 1 - i as u32);
            assert_eq!(*k, want, "step {i} under {schema:?}");
        }
    }
}
