//! Canonical byte packing of flow keys.
//!
//! This is the wire format used by the Flowtree codec and by anything
//! that needs a stable, compact byte representation of a [`FlowKey`]
//! (summaries are shipped between sites, so the format must not depend
//! on platform or compiler details).
//!
//! Layout: one presence byte (bit *i* set ⇔ dimension *i* is not at its
//! wildcard), followed by the per-dimension encodings of the present
//! dimensions in [`Dim::ALL`] order:
//!
//! * IP prefix — tag byte (`len` for IPv4, `64 + len` for IPv6), then
//!   the `ceil(len/8)` leading address bytes.
//! * Port range — `plen` byte, then the base as big-endian `u16`
//!   (omitted when `plen == 0`, which never happens for present dims).
//! * Protocol — one byte.
//! * Time bucket — `level` byte, then the start as a varint.
//! * Site — tag byte (0 = region, 1 = site), then the value.
//!
//! Varints are unsigned LEB128; [`write_varint`]/[`read_varint`] are also
//! used by the tree codec for counters.

use crate::{Dim, FlowKey, IpNet, Ipv4Net, Ipv6Net, PortRange, Proto, Site, TimeBucket};
use core::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Errors from [`unpack_key`] / varint decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnpackError {
    /// Input ended before the encoding was complete.
    Truncated,
    /// A tag or length field had an invalid value.
    Invalid,
}

impl fmt::Display for UnpackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnpackError::Truncated => f.write_str("truncated key encoding"),
            UnpackError::Invalid => f.write_str("invalid key encoding"),
        }
    }
}

impl std::error::Error for UnpackError {}

/// Appends an unsigned LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint, returning `(value, bytes_consumed)`.
pub fn read_varint(buf: &[u8]) -> Result<(u64, usize), UnpackError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &b) in buf.iter().enumerate() {
        if shift >= 64 {
            return Err(UnpackError::Invalid);
        }
        let low = (b & 0x7f) as u64;
        if shift == 63 && low > 1 {
            return Err(UnpackError::Invalid); // overflow past u64
        }
        v |= low << shift;
        if b & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(UnpackError::Truncated)
}

/// Appends a zigzag-encoded signed varint (small magnitudes stay small).
pub fn write_varint_signed(out: &mut Vec<u8>, v: i64) {
    write_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Encoded length of [`write_varint`]`(v)` without writing anything.
#[inline]
pub fn varint_len(v: u64) -> usize {
    // ceil(bits / 7), with at least one byte for zero.
    (64 - v.leading_zeros() as usize).max(1).div_ceil(7)
}

/// Encoded length of [`write_varint_signed`]`(v)` without writing
/// anything.
#[inline]
pub fn varint_signed_len(v: i64) -> usize {
    varint_len(((v << 1) ^ (v >> 63)) as u64)
}

/// Reads a zigzag-encoded signed varint.
pub fn read_varint_signed(buf: &[u8]) -> Result<(i64, usize), UnpackError> {
    let (raw, n) = read_varint(buf)?;
    Ok((((raw >> 1) as i64) ^ -((raw & 1) as i64), n))
}

/// Appends the canonical encoding of `key`.
pub fn pack_key(out: &mut Vec<u8>, key: &FlowKey) {
    let mut presence = 0u8;
    for dim in Dim::ALL {
        if key.dim_depth(dim) > 0 {
            presence |= 1 << dim.index();
        }
    }
    out.push(presence);
    if presence & (1 << Dim::SrcIp.index()) != 0 {
        pack_ipnet(out, &key.src);
    }
    if presence & (1 << Dim::DstIp.index()) != 0 {
        pack_ipnet(out, &key.dst);
    }
    if presence & (1 << Dim::SrcPort.index()) != 0 {
        pack_port(out, &key.sport);
    }
    if presence & (1 << Dim::DstPort.index()) != 0 {
        pack_port(out, &key.dport);
    }
    if presence & (1 << Dim::Proto.index()) != 0 {
        match key.proto {
            Proto::Is(p) => out.push(p),
            Proto::Any => unreachable!("presence bit set for wildcard proto"),
        }
    }
    if presence & (1 << Dim::Time.index()) != 0 {
        out.push(key.time.level());
        write_varint(out, key.time.start());
    }
    if presence & (1 << Dim::Site.index()) != 0 {
        match key.site {
            Site::Region(r) => {
                out.push(0);
                out.push(r);
            }
            Site::Is(s) => {
                out.push(1);
                out.extend_from_slice(&s.to_be_bytes());
            }
            Site::Any => unreachable!("presence bit set for wildcard site"),
        }
    }
}

/// Byte length [`pack_key`] would emit for `key`, computed
/// arithmetically (no buffer is written). Kept in lockstep with
/// `pack_key`; the codec uses it to size transfers without encoding a
/// throwaway frame.
pub fn packed_key_len(key: &FlowKey) -> usize {
    let mut len = 1; // presence byte
    for dim in Dim::ALL {
        if key.dim_depth(dim) == 0 {
            continue;
        }
        len += match dim {
            Dim::SrcIp => ipnet_len(&key.src),
            Dim::DstIp => ipnet_len(&key.dst),
            Dim::SrcPort | Dim::DstPort => 3, // plen byte + big-endian base
            Dim::Proto => 1,
            Dim::Time => 1 + varint_len(key.time.start()),
            Dim::Site => match key.site {
                Site::Region(_) => 2,
                Site::Is(_) => 3,
                Site::Any => unreachable!("present dim cannot be a wildcard"),
            },
        };
    }
    len
}

fn ipnet_len(net: &IpNet) -> usize {
    match net {
        IpNet::Any => unreachable!("wildcard IPs are absent dims"),
        IpNet::V4(p) => 1 + prefix_bytes(p.len()),
        IpNet::V6(p) => 1 + prefix_bytes(p.len()),
    }
}

fn pack_ipnet(out: &mut Vec<u8>, net: &IpNet) {
    match net {
        IpNet::Any => unreachable!("wildcard IPs are absent dims"),
        IpNet::V4(p) => {
            out.push(p.len());
            let bytes = p.bits().to_be_bytes();
            out.extend_from_slice(&bytes[..prefix_bytes(p.len())]);
        }
        IpNet::V6(p) => {
            out.push(64 + p.len());
            let bytes = p.bits().to_be_bytes();
            out.extend_from_slice(&bytes[..prefix_bytes(p.len())]);
        }
    }
}

fn pack_port(out: &mut Vec<u8>, r: &PortRange) {
    out.push(r.plen());
    out.extend_from_slice(&r.lo().to_be_bytes());
}

#[inline]
fn prefix_bytes(len: u8) -> usize {
    (len as usize).div_ceil(8)
}

/// Decodes a key, returning `(key, bytes_consumed)`.
pub fn unpack_key(buf: &[u8]) -> Result<(FlowKey, usize), UnpackError> {
    let presence = *buf.first().ok_or(UnpackError::Truncated)?;
    if presence & 0x80 != 0 {
        return Err(UnpackError::Invalid);
    }
    let mut pos = 1usize;
    let mut key = FlowKey::ROOT;
    if presence & (1 << Dim::SrcIp.index()) != 0 {
        let (net, n) = unpack_ipnet(&buf[pos..])?;
        key.src = net;
        pos += n;
    }
    if presence & (1 << Dim::DstIp.index()) != 0 {
        let (net, n) = unpack_ipnet(&buf[pos..])?;
        key.dst = net;
        pos += n;
    }
    if presence & (1 << Dim::SrcPort.index()) != 0 {
        let (r, n) = unpack_port(&buf[pos..])?;
        key.sport = r;
        pos += n;
    }
    if presence & (1 << Dim::DstPort.index()) != 0 {
        let (r, n) = unpack_port(&buf[pos..])?;
        key.dport = r;
        pos += n;
    }
    if presence & (1 << Dim::Proto.index()) != 0 {
        let p = *buf.get(pos).ok_or(UnpackError::Truncated)?;
        key.proto = Proto::Is(p);
        pos += 1;
    }
    if presence & (1 << Dim::Time.index()) != 0 {
        let level = *buf.get(pos).ok_or(UnpackError::Truncated)?;
        pos += 1;
        let (start, n) = read_varint(&buf[pos..])?;
        pos += n;
        let b = TimeBucket::new(start, level).ok_or(UnpackError::Invalid)?;
        if b.start() != start || b.is_any() {
            return Err(UnpackError::Invalid);
        }
        key.time = b;
        pos += 0;
    }
    if presence & (1 << Dim::Site.index()) != 0 {
        let tag = *buf.get(pos).ok_or(UnpackError::Truncated)?;
        pos += 1;
        match tag {
            0 => {
                let r = *buf.get(pos).ok_or(UnpackError::Truncated)?;
                key.site = Site::Region(r);
                pos += 1;
            }
            1 => {
                let hi = *buf.get(pos).ok_or(UnpackError::Truncated)?;
                let lo = *buf.get(pos + 1).ok_or(UnpackError::Truncated)?;
                key.site = Site::Is(u16::from_be_bytes([hi, lo]));
                pos += 2;
            }
            _ => return Err(UnpackError::Invalid),
        }
    }
    Ok((key, pos))
}

fn unpack_ipnet(buf: &[u8]) -> Result<(IpNet, usize), UnpackError> {
    let tag = *buf.first().ok_or(UnpackError::Truncated)?;
    if tag == 0 || tag == 64 {
        // /0 prefixes have depth 1 but the presence encoding keeps them
        // representable: zero prefix bytes follow.
        let net = if tag == 0 {
            IpNet::V4(Ipv4Net::ZERO)
        } else {
            IpNet::V6(Ipv6Net::ZERO)
        };
        return Ok((net, 1));
    }
    if tag <= 32 {
        let nb = prefix_bytes(tag);
        let raw = buf.get(1..1 + nb).ok_or(UnpackError::Truncated)?;
        let mut bytes = [0u8; 4];
        bytes[..nb].copy_from_slice(raw);
        let net = Ipv4Net::new(Ipv4Addr::from(bytes), tag).ok_or(UnpackError::Invalid)?;
        // Reject non-canonical encodings (host bits set in trailing byte).
        if net.bits() != u32::from_be_bytes(bytes) {
            return Err(UnpackError::Invalid);
        }
        Ok((IpNet::V4(net), 1 + nb))
    } else if (65..=192).contains(&tag) {
        let len = tag - 64;
        let nb = prefix_bytes(len);
        let raw = buf.get(1..1 + nb).ok_or(UnpackError::Truncated)?;
        let mut bytes = [0u8; 16];
        bytes[..nb].copy_from_slice(raw);
        let net = Ipv6Net::new(Ipv6Addr::from(bytes), len).ok_or(UnpackError::Invalid)?;
        if net.bits() != u128::from_be_bytes(bytes) {
            return Err(UnpackError::Invalid);
        }
        Ok((IpNet::V6(net), 1 + nb))
    } else {
        Err(UnpackError::Invalid)
    }
}

fn unpack_port(buf: &[u8]) -> Result<(PortRange, usize), UnpackError> {
    let plen = *buf.first().ok_or(UnpackError::Truncated)?;
    let hi = *buf.get(1).ok_or(UnpackError::Truncated)?;
    let lo = *buf.get(2).ok_or(UnpackError::Truncated)?;
    let base = u16::from_be_bytes([hi, lo]);
    let r = PortRange::new(base, plen).ok_or(UnpackError::Invalid)?;
    if r.lo() != base {
        return Err(UnpackError::Invalid); // non-canonical base
    }
    Ok((r, 3))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> FlowKey {
        s.parse().unwrap()
    }

    fn roundtrip(k: &FlowKey) -> usize {
        let mut buf = Vec::new();
        pack_key(&mut buf, k);
        let (back, n) = unpack_key(&buf).expect("roundtrip");
        assert_eq!(&back, k, "roundtrip of {k}");
        assert_eq!(n, buf.len(), "all bytes consumed for {k}");
        assert_eq!(packed_key_len(k), buf.len(), "predicted length of {k}");
        buf.len()
    }

    #[test]
    fn roundtrip_various_keys() {
        for s in [
            "*",
            "src=1.2.3.0/24",
            "src=0.0.0.0/0",
            "src=1.2.3.4/32 dst=9.8.7.6/32 sport=1234 dport=80 proto=tcp",
            "dst=2001:db8::/32 proto=udp",
            "src=1.0.0.0/8 time=1024+256s site=7",
            "site=r3",
            "dport=1024-2047",
        ] {
            roundtrip(&key(s));
        }
    }

    #[test]
    fn root_packs_to_one_byte() {
        let mut buf = Vec::new();
        pack_key(&mut buf, &FlowKey::ROOT);
        assert_eq!(buf, vec![0]);
    }

    #[test]
    fn prefix_packing_is_compact() {
        // A /8 prefix needs 1 presence + 1 tag + 1 address byte.
        let mut buf = Vec::new();
        pack_key(&mut buf, &key("src=10.0.0.0/8"));
        assert_eq!(buf.len(), 3);
        // A full 5-tuple stays well under 20 bytes.
        assert!(
            roundtrip(&key(
                "src=1.2.3.4/32 dst=9.8.7.6/32 sport=1234 dport=80 proto=tcp"
            )) <= 18
        );
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let mut buf = Vec::new();
        pack_key(
            &mut buf,
            &key("src=1.2.3.4/32 dst=9.8.7.6/32 sport=1234 dport=80 proto=tcp"),
        );
        for cut in 0..buf.len() {
            assert!(
                unpack_key(&buf[..cut]).is_err(),
                "cut at {cut} must be an error"
            );
        }
    }

    #[test]
    fn non_canonical_encodings_rejected() {
        // src=/23 with the 24th bit (a host bit) set in the third byte.
        let bad = vec![0b0000_0001, 23, 1, 2, 3];
        assert_eq!(unpack_key(&bad).unwrap_err(), UnpackError::Invalid);
        // Port with non-canonical base.
        let bad = vec![0b0000_0100, 8, 0x00, 0x01];
        assert_eq!(unpack_key(&bad).unwrap_err(), UnpackError::Invalid);
        // Reserved presence bit.
        assert_eq!(unpack_key(&[0x80]).unwrap_err(), UnpackError::Invalid);
        // Bad IP tag.
        let bad = vec![0b0000_0001, 200];
        assert_eq!(unpack_key(&bad).unwrap_err(), UnpackError::Invalid);
    }

    #[test]
    fn varint_len_matches_encoding() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            buf.clear();
            write_varint(&mut buf, v);
            assert_eq!(varint_len(v), buf.len(), "unsigned {v}");
        }
        for v in [0i64, 1, -1, 63, -64, 64, 1 << 40, i64::MAX, i64::MIN] {
            buf.clear();
            write_varint_signed(&mut buf, v);
            assert_eq!(varint_signed_len(v), buf.len(), "signed {v}");
        }
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for v in values {
            buf.clear();
            write_varint(&mut buf, v);
            let (back, n) = read_varint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
        assert!(read_varint(&[0x80]).is_err());
        assert!(read_varint(&[]).is_err());
        // Overlong encoding that would overflow u64.
        let overflow = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(read_varint(&overflow).is_err());
    }

    #[test]
    fn signed_varint_roundtrip() {
        let mut buf = Vec::new();
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            1 << 40,
            -(1 << 40),
            i64::MAX,
            i64::MIN,
        ] {
            buf.clear();
            write_varint_signed(&mut buf, v);
            let (back, n) = read_varint_signed(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
        // Small magnitudes use one byte.
        buf.clear();
        write_varint_signed(&mut buf, -2);
        assert_eq!(buf.len(), 1);
    }
}
