//! # flowkey — generalized network flows and their natural hierarchy
//!
//! A *generalized flow* (Saidi et al., SIGCOMM 2018) is a tuple of
//! features — source/destination IP, source/destination port, protocol —
//! where every feature carries a **natural hierarchy** expressed through
//! wildcards: IP addresses generalize along network prefixes, ports along
//! dyadic port ranges, protocols to the protocol wildcard. Two extension
//! features from the paper's future-work system are also provided: dyadic
//! **time** buckets and the **monitor site**.
//!
//! The crate provides:
//!
//! * the individual feature types ([`IpNet`], [`PortRange`], [`Proto`],
//!   [`TimeBucket`], [`Site`]) with their one-step [`generalize`]
//!   operations,
//! * [`FlowKey`] — a point in the product lattice of all features, with
//!   containment, meet, and overlap tests,
//! * [`Schema`] — which features are active (1/2/4/5-feature flows and
//!   the extended schema) and how deep each hierarchy goes,
//! * the **canonical generalization chain** ([`chain`]) — a deterministic
//!   total order of one-step generalizations from any key up to the root,
//!   which is what turns the product lattice into the *tree* that
//!   `flowtree-core` maintains,
//! * a compact canonical byte packing ([`pack`]) used for hashing and
//!   serialization.
//!
//! [`generalize`]: FlowKey::generalize
//!
//! ## Example
//!
//! ```
//! use flowkey::{FlowKey, Schema, Dim};
//!
//! let schema = Schema::five_feature();
//! let key: FlowKey = "src=10.1.2.3/32 dst=192.0.2.7/32 sport=49152 dport=443 proto=6"
//!     .parse()
//!     .unwrap();
//! // One step up the canonical chain generalizes the least valuable
//! // feature first (ports before addresses).
//! let parent = schema.parent(&key).unwrap();
//! assert!(parent.contains(&key));
//! // The chain always terminates at the schema root (all wildcards).
//! let root = schema.root();
//! assert!(root.contains(&key));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "serde")]
compile_error!(
    "the `serde` feature is a placeholder: this workspace builds offline and serde is not \
     vendored. Vendor serde, add it as an optional dependency of flowkey (and drop this \
     compile_error!) to enable the gated derives. See ROADMAP.md \"Open items\"."
);

pub mod chain;
pub mod hash;
pub mod ipnet;
pub mod pack;
pub mod parse;
pub mod port;
pub mod proto;
pub mod schema;
pub mod site;
pub mod time;

mod key;

pub use chain::DepthProfile;
pub use hash::{dim_hash, dim_hash_at, key_hash, HashedChainUp};
pub use ipnet::{IpNet, Ipv4Net, Ipv6Net};
pub use key::FlowKey;
pub use port::PortRange;
pub use proto::Proto;
pub use schema::{Schema, SchemaKind};
pub use site::Site;
pub use time::TimeBucket;

use core::fmt;

/// The dimensions (features) a generalized flow can carry.
///
/// The numeric discriminants are stable and used by the canonical byte
/// packing; do not reorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Dim {
    /// Source IP prefix.
    SrcIp = 0,
    /// Destination IP prefix.
    DstIp = 1,
    /// Source port range.
    SrcPort = 2,
    /// Destination port range.
    DstPort = 3,
    /// IP protocol.
    Proto = 4,
    /// Dyadic time bucket (extension feature of the distributed system).
    Time = 5,
    /// Monitor location (extension feature of the distributed system).
    Site = 6,
}

/// Number of dimensions, i.e. the length of [`Dim::ALL`].
pub const NUM_DIMS: usize = 7;

impl Dim {
    /// All dimensions in declaration order.
    pub const ALL: [Dim; NUM_DIMS] = [
        Dim::SrcIp,
        Dim::DstIp,
        Dim::SrcPort,
        Dim::DstPort,
        Dim::Proto,
        Dim::Time,
        Dim::Site,
    ];

    /// Index of this dimension into per-dimension arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Dimension from its index. Panics if out of range.
    #[inline]
    pub fn from_index(i: usize) -> Dim {
        Dim::ALL[i]
    }

    /// Short lowercase name as used by the textual key syntax.
    pub const fn name(self) -> &'static str {
        match self {
            Dim::SrcIp => "src",
            Dim::DstIp => "dst",
            Dim::SrcPort => "sport",
            Dim::DstPort => "dport",
            Dim::Proto => "proto",
            Dim::Time => "time",
            Dim::Site => "site",
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors produced when parsing the textual feature / key syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// An IP prefix was malformed (bad address, bad length, host bits set).
    BadPrefix(String),
    /// A port or port range was malformed or not dyadic.
    BadPort(String),
    /// A protocol name/number was not recognized.
    BadProto(String),
    /// A time bucket was malformed.
    BadTime(String),
    /// A site was malformed.
    BadSite(String),
    /// A `key=value` component was malformed or the key unknown.
    BadComponent(String),
    /// The same dimension appeared twice.
    DuplicateDim(Dim),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadPrefix(s) => write!(f, "bad IP prefix: {s}"),
            ParseError::BadPort(s) => write!(f, "bad port range: {s}"),
            ParseError::BadProto(s) => write!(f, "bad protocol: {s}"),
            ParseError::BadTime(s) => write!(f, "bad time bucket: {s}"),
            ParseError::BadSite(s) => write!(f, "bad site: {s}"),
            ParseError::BadComponent(s) => write!(f, "bad key component: {s}"),
            ParseError::DuplicateDim(d) => write!(f, "dimension given twice: {d}"),
        }
    }
}

impl std::error::Error for ParseError {}
