//! IP network prefixes and their generalization hierarchy.
//!
//! IP addresses generalize along network prefixes: `1.1.1.20/30` is
//! contained in `1.1.1.0/24`, which is contained in `1.0.0.0/8`, which is
//! contained in the IPv4 wildcard `0.0.0.0/0`, which is contained in the
//! family-agnostic wildcard [`IpNet::Any`]. Every one-bit shortening of
//! the prefix is one generalization step.

use crate::ParseError;
use core::cmp::Ordering;
use core::fmt;
use core::str::FromStr;
use std::net::{Ipv4Addr, Ipv6Addr};

/// An IPv4 network prefix in canonical form (host bits zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ipv4Net {
    addr: u32,
    len: u8,
}

impl Ipv4Net {
    /// The full IPv4 space, `0.0.0.0/0`.
    pub const ZERO: Ipv4Net = Ipv4Net { addr: 0, len: 0 };

    /// Builds a prefix, masking off host bits.
    ///
    /// Returns `None` if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Option<Ipv4Net> {
        if len > 32 {
            return None;
        }
        let raw = u32::from(addr);
        Some(Ipv4Net {
            addr: raw & mask4(len),
            len,
        })
    }

    /// Builds a host prefix (`/32`).
    pub fn host(addr: Ipv4Addr) -> Ipv4Net {
        Ipv4Net {
            addr: u32::from(addr),
            len: 32,
        }
    }

    /// The network address.
    #[inline]
    pub fn addr(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// The network address as raw bits.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.addr
    }

    /// The prefix length.
    ///
    /// (`len` is CIDR terminology, not a container size — hence no
    /// `is_empty`.)
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the full address space (`/0`).
    #[inline]
    pub fn is_zero_len(&self) -> bool {
        self.len == 0
    }

    /// The immediate parent (one bit shorter), or `None` at `/0`.
    pub fn parent(&self) -> Option<Ipv4Net> {
        if self.len == 0 {
            None
        } else {
            let len = self.len - 1;
            Some(Ipv4Net {
                addr: self.addr & mask4(len),
                len,
            })
        }
    }

    /// The ancestor at prefix length `len`; `None` if `len > self.len()`.
    pub fn supernet(&self, len: u8) -> Option<Ipv4Net> {
        if len > self.len {
            return None;
        }
        Some(Ipv4Net {
            addr: self.addr & mask4(len),
            len,
        })
    }

    /// Whether `other` is equal to or more specific than `self`.
    #[inline]
    pub fn contains(&self, other: &Ipv4Net) -> bool {
        self.len <= other.len && (other.addr & mask4(self.len)) == self.addr
    }

    /// The longest prefix containing both networks.
    pub fn common_supernet(&self, other: &Ipv4Net) -> Ipv4Net {
        let max_len = self.len.min(other.len);
        let diff = self.addr ^ other.addr;
        let common = if diff == 0 {
            32
        } else {
            diff.leading_zeros() as u8
        };
        let len = max_len.min(common);
        Ipv4Net {
            addr: self.addr & mask4(len),
            len,
        }
    }

    /// Whether the two prefixes share any address.
    ///
    /// Dyadic prefixes are either nested or disjoint, so this is
    /// containment in either direction.
    #[inline]
    pub fn overlaps(&self, other: &Ipv4Net) -> bool {
        self.contains(other) || other.contains(self)
    }
}

#[inline]
fn mask4(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len as u32)
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr(), self.len)
    }
}

impl FromStr for Ipv4Net {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ParseError::BadPrefix(s.to_string());
        match s.split_once('/') {
            Some((a, l)) => {
                let addr: Ipv4Addr = a.parse().map_err(|_| bad())?;
                let len: u8 = l.parse().map_err(|_| bad())?;
                Ipv4Net::new(addr, len).ok_or_else(bad)
            }
            None => {
                let addr: Ipv4Addr = s.parse().map_err(|_| bad())?;
                Ok(Ipv4Net::host(addr))
            }
        }
    }
}

/// An IPv6 network prefix in canonical form (host bits zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ipv6Net {
    addr: u128,
    len: u8,
}

impl Ipv6Net {
    /// The full IPv6 space, `::/0`.
    pub const ZERO: Ipv6Net = Ipv6Net { addr: 0, len: 0 };

    /// Builds a prefix, masking off host bits. `None` if `len > 128`.
    pub fn new(addr: Ipv6Addr, len: u8) -> Option<Ipv6Net> {
        if len > 128 {
            return None;
        }
        let raw = u128::from(addr);
        Some(Ipv6Net {
            addr: raw & mask6(len),
            len,
        })
    }

    /// Builds a host prefix (`/128`).
    pub fn host(addr: Ipv6Addr) -> Ipv6Net {
        Ipv6Net {
            addr: u128::from(addr),
            len: 128,
        }
    }

    /// The network address.
    #[inline]
    pub fn addr(&self) -> Ipv6Addr {
        Ipv6Addr::from(self.addr)
    }

    /// The network address as raw bits.
    #[inline]
    pub fn bits(&self) -> u128 {
        self.addr
    }

    /// The prefix length.
    ///
    /// (`len` is CIDR terminology, not a container size — hence no
    /// `is_empty`.)
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the full address space (`/0`).
    #[inline]
    pub fn is_zero_len(&self) -> bool {
        self.len == 0
    }

    /// The immediate parent (one bit shorter), or `None` at `/0`.
    pub fn parent(&self) -> Option<Ipv6Net> {
        if self.len == 0 {
            None
        } else {
            let len = self.len - 1;
            Some(Ipv6Net {
                addr: self.addr & mask6(len),
                len,
            })
        }
    }

    /// The ancestor at prefix length `len`; `None` if `len > self.len()`.
    pub fn supernet(&self, len: u8) -> Option<Ipv6Net> {
        if len > self.len {
            return None;
        }
        Some(Ipv6Net {
            addr: self.addr & mask6(len),
            len,
        })
    }

    /// Whether `other` is equal to or more specific than `self`.
    #[inline]
    pub fn contains(&self, other: &Ipv6Net) -> bool {
        self.len <= other.len && (other.addr & mask6(self.len)) == self.addr
    }

    /// The longest prefix containing both networks.
    pub fn common_supernet(&self, other: &Ipv6Net) -> Ipv6Net {
        let max_len = self.len.min(other.len);
        let diff = self.addr ^ other.addr;
        let common = if diff == 0 {
            128
        } else {
            diff.leading_zeros() as u8
        };
        let len = max_len.min(common);
        Ipv6Net {
            addr: self.addr & mask6(len),
            len,
        }
    }

    /// Whether the two prefixes share any address.
    #[inline]
    pub fn overlaps(&self, other: &Ipv6Net) -> bool {
        self.contains(other) || other.contains(self)
    }
}

#[inline]
fn mask6(len: u8) -> u128 {
    if len == 0 {
        0
    } else {
        u128::MAX << (128 - len as u32)
    }
}

impl fmt::Display for Ipv6Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr(), self.len)
    }
}

impl FromStr for Ipv6Net {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ParseError::BadPrefix(s.to_string());
        match s.split_once('/') {
            Some((a, l)) => {
                let addr: Ipv6Addr = a.parse().map_err(|_| bad())?;
                let len: u8 = l.parse().map_err(|_| bad())?;
                Ipv6Net::new(addr, len).ok_or_else(bad)
            }
            None => {
                let addr: Ipv6Addr = s.parse().map_err(|_| bad())?;
                Ok(Ipv6Net::host(addr))
            }
        }
    }
}

/// An IP prefix of either family, or the family-agnostic wildcard.
///
/// The hierarchy is: host address → … one bit at a time … → `/0` of its
/// family → [`IpNet::Any`]. Depth is therefore `len + 1` for a concrete
/// prefix and `0` for the wildcard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum IpNet {
    /// Matches every address of both families (the hierarchy root).
    #[default]
    Any,
    /// An IPv4 prefix.
    V4(Ipv4Net),
    /// An IPv6 prefix.
    V6(Ipv6Net),
}

impl IpNet {
    /// Host key for an IPv4 address.
    pub fn v4_host(addr: Ipv4Addr) -> IpNet {
        IpNet::V4(Ipv4Net::host(addr))
    }

    /// Host key for an IPv6 address.
    pub fn v6_host(addr: Ipv6Addr) -> IpNet {
        IpNet::V6(Ipv6Net::host(addr))
    }

    /// Depth in the generalization hierarchy (0 = [`IpNet::Any`]).
    #[inline]
    pub fn depth(&self) -> u16 {
        match self {
            IpNet::Any => 0,
            IpNet::V4(p) => p.len() as u16 + 1,
            IpNet::V6(p) => p.len() as u16 + 1,
        }
    }

    /// One generalization step up; `None` at the root.
    pub fn generalize(&self) -> Option<IpNet> {
        match self {
            IpNet::Any => None,
            IpNet::V4(p) => Some(match p.parent() {
                Some(q) => IpNet::V4(q),
                None => IpNet::Any,
            }),
            IpNet::V6(p) => Some(match p.parent() {
                Some(q) => IpNet::V6(q),
                None => IpNet::Any,
            }),
        }
    }

    /// The ancestor at hierarchy depth `depth`; `None` if deeper than `self`.
    pub fn ancestor_at(&self, depth: u16) -> Option<IpNet> {
        if depth > self.depth() {
            return None;
        }
        if depth == 0 {
            return Some(IpNet::Any);
        }
        match self {
            IpNet::Any => unreachable!("depth > 0 but self is Any"),
            IpNet::V4(p) => p.supernet((depth - 1) as u8).map(IpNet::V4),
            IpNet::V6(p) => p.supernet((depth - 1) as u8).map(IpNet::V6),
        }
    }

    /// Whether `other` is equal or more specific.
    pub fn contains(&self, other: &IpNet) -> bool {
        match (self, other) {
            (IpNet::Any, _) => true,
            (_, IpNet::Any) => false,
            (IpNet::V4(a), IpNet::V4(b)) => a.contains(b),
            (IpNet::V6(a), IpNet::V6(b)) => a.contains(b),
            _ => false,
        }
    }

    /// Whether the two features share any concrete address.
    pub fn overlaps(&self, other: &IpNet) -> bool {
        match (self, other) {
            (IpNet::Any, _) | (_, IpNet::Any) => true,
            (IpNet::V4(a), IpNet::V4(b)) => a.overlaps(b),
            (IpNet::V6(a), IpNet::V6(b)) => a.overlaps(b),
            _ => false,
        }
    }

    /// The most specific feature containing both, i.e. the lattice join.
    pub fn join(&self, other: &IpNet) -> IpNet {
        match (self, other) {
            (IpNet::Any, _) | (_, IpNet::Any) => IpNet::Any,
            (IpNet::V4(a), IpNet::V4(b)) => IpNet::V4(a.common_supernet(b)),
            (IpNet::V6(a), IpNet::V6(b)) => IpNet::V6(a.common_supernet(b)),
            _ => IpNet::Any,
        }
    }

    /// The lattice meet: the more specific of two nested features, `None`
    /// if they are disjoint.
    pub fn meet(&self, other: &IpNet) -> Option<IpNet> {
        if self.contains(other) {
            Some(*other)
        } else if other.contains(self) {
            Some(*self)
        } else {
            None
        }
    }
}

impl Ord for IpNet {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(n: &IpNet) -> (u8, u128, u8) {
            match n {
                IpNet::Any => (0, 0, 0),
                IpNet::V4(p) => (1, (p.bits() as u128) << 96, p.len()),
                IpNet::V6(p) => (2, p.bits(), p.len()),
            }
        }
        rank(self).cmp(&rank(other))
    }
}

impl PartialOrd for IpNet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for IpNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpNet::Any => f.write_str("*"),
            IpNet::V4(p) => p.fmt(f),
            IpNet::V6(p) => p.fmt(f),
        }
    }
}

impl FromStr for IpNet {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "*" {
            return Ok(IpNet::Any);
        }
        if s.contains(':') {
            s.parse::<Ipv6Net>().map(IpNet::V6)
        } else {
            s.parse::<Ipv4Net>().map(IpNet::V4)
        }
    }
}

impl From<Ipv4Addr> for IpNet {
    fn from(a: Ipv4Addr) -> Self {
        IpNet::v4_host(a)
    }
}

impl From<Ipv6Addr> for IpNet {
    fn from(a: Ipv6Addr) -> Self {
        IpNet::v6_host(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(s: &str) -> Ipv4Net {
        s.parse().unwrap()
    }

    #[test]
    fn v4_new_masks_host_bits() {
        let p = Ipv4Net::new(Ipv4Addr::new(1, 1, 1, 77), 24).unwrap();
        assert_eq!(p, net("1.1.1.0/24"));
        assert_eq!(p.to_string(), "1.1.1.0/24");
    }

    #[test]
    fn v4_new_rejects_len_over_32() {
        assert!(Ipv4Net::new(Ipv4Addr::new(1, 1, 1, 1), 33).is_none());
    }

    #[test]
    fn v4_parent_chain_reaches_zero() {
        let mut p = net("1.1.1.20/30");
        let mut steps = 0;
        while let Some(q) = p.parent() {
            assert!(q.contains(&p));
            p = q;
            steps += 1;
        }
        assert_eq!(steps, 30);
        assert_eq!(p, Ipv4Net::ZERO);
    }

    #[test]
    fn v4_contains_is_reflexive_and_ordered() {
        let a = net("1.1.1.0/24");
        let b = net("1.1.1.20/30");
        assert!(a.contains(&a));
        assert!(a.contains(&b));
        assert!(!b.contains(&a));
        assert!(!net("1.1.2.0/24").contains(&b));
    }

    #[test]
    fn v4_common_supernet_examples() {
        // Figure 2a of the paper: 1.1.1.12/30 and 1.1.1.20/30 join below /24.
        let a = net("1.1.1.12/30");
        let b = net("1.1.1.20/30");
        let j = a.common_supernet(&b);
        assert_eq!(j, net("1.1.1.0/27"));
        assert!(j.contains(&a) && j.contains(&b));
        // Identical prefixes join to themselves.
        assert_eq!(a.common_supernet(&a), a);
        // Disjoint /8s join high up.
        assert_eq!(
            net("1.0.0.0/8").common_supernet(&net("2.0.0.0/8")),
            net("0.0.0.0/6")
        );
    }

    #[test]
    fn v4_supernet_at_depth() {
        let p = net("1.1.1.20/30");
        assert_eq!(p.supernet(24).unwrap(), net("1.1.1.0/24"));
        assert_eq!(p.supernet(8).unwrap(), net("1.0.0.0/8"));
        assert_eq!(p.supernet(0).unwrap(), Ipv4Net::ZERO);
        assert!(p.supernet(31).is_none());
    }

    #[test]
    fn v6_basics() {
        let p: Ipv6Net = "2001:db8::/32".parse().unwrap();
        let h: Ipv6Net = "2001:db8::1/128".parse().unwrap();
        assert!(p.contains(&h));
        assert_eq!(h.supernet(32).unwrap(), p);
        assert_eq!(p.common_supernet(&h), p);
    }

    #[test]
    fn ipnet_depth_and_generalize() {
        let k = IpNet::from_str("1.1.1.1/32").unwrap();
        assert_eq!(k.depth(), 33);
        let mut cur = k;
        let mut count = 0;
        while let Some(up) = cur.generalize() {
            assert!(up.contains(&cur));
            assert_eq!(up.depth() + 1, cur.depth());
            cur = up;
            count += 1;
        }
        assert_eq!(count, 33);
        assert_eq!(cur, IpNet::Any);
    }

    #[test]
    fn ipnet_ancestor_at() {
        let k = IpNet::from_str("1.1.1.1/32").unwrap();
        assert_eq!(k.ancestor_at(0), Some(IpNet::Any));
        assert_eq!(
            k.ancestor_at(25),
            Some(IpNet::from_str("1.1.1.0/24").unwrap())
        );
        assert_eq!(k.ancestor_at(33), Some(k));
        assert_eq!(k.ancestor_at(34), None);
    }

    #[test]
    fn ipnet_cross_family_disjoint() {
        let v4 = IpNet::from_str("1.0.0.0/8").unwrap();
        let v6 = IpNet::from_str("2001:db8::/32").unwrap();
        assert!(!v4.contains(&v6));
        assert!(!v4.overlaps(&v6));
        assert_eq!(v4.join(&v6), IpNet::Any);
        assert_eq!(v4.meet(&v6), None);
        assert!(IpNet::Any.contains(&v4) && IpNet::Any.contains(&v6));
    }

    #[test]
    fn ipnet_meet_nested() {
        let a = IpNet::from_str("1.1.0.0/16").unwrap();
        let b = IpNet::from_str("1.1.1.0/24").unwrap();
        assert_eq!(a.meet(&b), Some(b));
        assert_eq!(b.meet(&a), Some(b));
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["*", "1.2.3.0/24", "10.0.0.1/32", "2001:db8::/32", "::1/128"] {
            let k = IpNet::from_str(s).unwrap();
            assert_eq!(k.to_string(), s);
        }
        // Bare addresses parse as hosts.
        assert_eq!(IpNet::from_str("1.2.3.4").unwrap().depth(), 33);
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["1.2.3.4/33", "1.2.3/24", "zz", "2001:db8::/129", ""] {
            assert!(IpNet::from_str(s).is_err(), "{s} should not parse");
        }
    }
}
