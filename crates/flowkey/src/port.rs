//! Dyadic port ranges.
//!
//! Ports generalize along the natural binary hierarchy over `0..=65535`:
//! a range fixes the leading `plen` bits of the 16-bit port number, so
//! `plen = 16` is a single port, `plen = 6` is a 1024-wide range such as
//! `1024-2047`, and `plen = 0` is the wildcard covering every port. The
//! paper's example `1024-1536` is (after rounding to the dyadic grid)
//! the bucket `1024-1535`.

use crate::ParseError;
use core::fmt;
use core::str::FromStr;

/// A dyadic port range: the `plen` leading bits of the port are fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PortRange {
    base: u16,
    plen: u8,
}

impl PortRange {
    /// The wildcard range covering all 65536 ports.
    pub const ANY: PortRange = PortRange { base: 0, plen: 0 };

    /// A single port (`plen = 16`).
    #[inline]
    pub fn port(p: u16) -> PortRange {
        PortRange { base: p, plen: 16 }
    }

    /// A dyadic range with the given fixed-bit count, masking `base`.
    ///
    /// Returns `None` if `plen > 16`.
    pub fn new(base: u16, plen: u8) -> Option<PortRange> {
        if plen > 16 {
            return None;
        }
        Some(PortRange {
            base: base & mask(plen),
            plen,
        })
    }

    /// Builds the smallest dyadic range covering `lo..=hi`, if `lo..=hi`
    /// is itself dyadic; otherwise `None`.
    pub fn from_bounds(lo: u16, hi: u16) -> Option<PortRange> {
        if lo > hi {
            return None;
        }
        let span = (hi - lo) as u32 + 1;
        if !span.is_power_of_two() {
            return None;
        }
        let plen = 16 - span.trailing_zeros() as u8;
        let r = PortRange::new(lo, plen)?;
        if r.lo() == lo && r.hi() == hi {
            Some(r)
        } else {
            None
        }
    }

    /// First port of the range.
    #[inline]
    pub fn lo(&self) -> u16 {
        self.base
    }

    /// Last port of the range.
    #[inline]
    pub fn hi(&self) -> u16 {
        self.base | !mask(self.plen)
    }

    /// Number of fixed leading bits (= hierarchy depth, 0..=16).
    #[inline]
    pub fn plen(&self) -> u8 {
        self.plen
    }

    /// Depth in the generalization hierarchy (same as [`plen`](Self::plen)).
    #[inline]
    pub fn depth(&self) -> u16 {
        self.plen as u16
    }

    /// Whether this is the wildcard.
    #[inline]
    pub fn is_any(&self) -> bool {
        self.plen == 0
    }

    /// Whether this is a single port.
    #[inline]
    pub fn is_single(&self) -> bool {
        self.plen == 16
    }

    /// One generalization step (drop one fixed bit); `None` at wildcard.
    pub fn generalize(&self) -> Option<PortRange> {
        if self.plen == 0 {
            None
        } else {
            PortRange::new(self.base, self.plen - 1)
        }
    }

    /// The ancestor at depth `depth`; `None` if deeper than `self`.
    pub fn ancestor_at(&self, depth: u16) -> Option<PortRange> {
        if depth > self.depth() {
            return None;
        }
        PortRange::new(self.base, depth as u8)
    }

    /// Whether `other` is equal or more specific.
    #[inline]
    pub fn contains(&self, other: &PortRange) -> bool {
        self.plen <= other.plen && (other.base & mask(self.plen)) == self.base
    }

    /// Whether the ranges share any port (dyadic ⇒ nested or disjoint).
    #[inline]
    pub fn overlaps(&self, other: &PortRange) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// The smallest dyadic range containing both (lattice join).
    pub fn join(&self, other: &PortRange) -> PortRange {
        let max_len = self.plen.min(other.plen);
        let diff = self.base ^ other.base;
        let common = if diff == 0 {
            16
        } else {
            diff.leading_zeros() as u8
        };
        let plen = max_len.min(common);
        PortRange {
            base: self.base & mask(plen),
            plen,
        }
    }

    /// Lattice meet: the more specific of two nested ranges; `None` if disjoint.
    pub fn meet(&self, other: &PortRange) -> Option<PortRange> {
        if self.contains(other) {
            Some(*other)
        } else if other.contains(self) {
            Some(*self)
        } else {
            None
        }
    }
}

impl Default for PortRange {
    fn default() -> Self {
        PortRange::ANY
    }
}

#[inline]
fn mask(plen: u8) -> u16 {
    if plen == 0 {
        0
    } else {
        u16::MAX << (16 - plen as u16)
    }
}

impl fmt::Display for PortRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_any() {
            f.write_str("*")
        } else if self.is_single() {
            write!(f, "{}", self.base)
        } else {
            write!(f, "{}-{}", self.lo(), self.hi())
        }
    }
}

impl FromStr for PortRange {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ParseError::BadPort(s.to_string());
        if s == "*" {
            return Ok(PortRange::ANY);
        }
        if let Some((lo, hi)) = s.split_once('-') {
            let lo: u16 = lo.parse().map_err(|_| bad())?;
            let hi: u16 = hi.parse().map_err(|_| bad())?;
            PortRange::from_bounds(lo, hi).ok_or_else(bad)
        } else {
            let p: u16 = s.parse().map_err(|_| bad())?;
            Ok(PortRange::port(p))
        }
    }
}

impl From<u16> for PortRange {
    fn from(p: u16) -> Self {
        PortRange::port(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_port_bounds() {
        let p = PortRange::port(443);
        assert_eq!((p.lo(), p.hi()), (443, 443));
        assert_eq!(p.depth(), 16);
        assert_eq!(p.to_string(), "443");
    }

    #[test]
    fn wildcard_covers_everything() {
        assert_eq!((PortRange::ANY.lo(), PortRange::ANY.hi()), (0, 65535));
        assert!(PortRange::ANY.contains(&PortRange::port(0)));
        assert!(PortRange::ANY.contains(&PortRange::port(65535)));
        assert_eq!(PortRange::ANY.to_string(), "*");
    }

    #[test]
    fn new_masks_low_bits() {
        let r = PortRange::new(1027, 6).unwrap();
        assert_eq!((r.lo(), r.hi()), (1024, 2047));
        assert_eq!(r.to_string(), "1024-2047");
    }

    #[test]
    fn from_bounds_accepts_only_dyadic() {
        assert_eq!(
            PortRange::from_bounds(1024, 1535).unwrap(),
            PortRange::new(1024, 7).unwrap()
        );
        assert!(PortRange::from_bounds(1024, 1536).is_none()); // span 513
        assert!(PortRange::from_bounds(1, 2).is_none()); // misaligned
        assert!(PortRange::from_bounds(10, 5).is_none()); // inverted
        assert_eq!(PortRange::from_bounds(0, 65535).unwrap(), PortRange::ANY);
        assert_eq!(PortRange::from_bounds(80, 80).unwrap(), PortRange::port(80));
    }

    #[test]
    fn generalize_walks_to_wildcard() {
        let mut r = PortRange::port(49152);
        let mut steps = 0;
        while let Some(up) = r.generalize() {
            assert!(up.contains(&r));
            r = up;
            steps += 1;
        }
        assert_eq!(steps, 16);
        assert!(r.is_any());
    }

    #[test]
    fn join_examples() {
        let a = PortRange::port(80);
        let b = PortRange::port(443);
        let j = a.join(&b);
        assert!(j.contains(&a) && j.contains(&b));
        assert_eq!((j.lo(), j.hi()), (0, 511));
        assert_eq!(a.join(&a), a);
    }

    #[test]
    fn meet_nested_and_disjoint() {
        let big = PortRange::new(1024, 6).unwrap();
        let small = PortRange::port(1100);
        assert_eq!(big.meet(&small), Some(small));
        assert_eq!(small.meet(&big), Some(small));
        assert_eq!(PortRange::port(80).meet(&PortRange::port(81)), None);
    }

    #[test]
    fn ancestor_at_depth() {
        let p = PortRange::port(443);
        assert_eq!(p.ancestor_at(0), Some(PortRange::ANY));
        assert_eq!(p.ancestor_at(16), Some(p));
        let mid = p.ancestor_at(8).unwrap();
        assert_eq!((mid.lo(), mid.hi()), (256, 511));
        assert_eq!(p.ancestor_at(17), None);
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["*", "0", "80", "65535", "1024-2047", "0-65535"] {
            let r: PortRange = s.parse().unwrap();
            let norm = if s == "0-65535" { "*" } else { s };
            assert_eq!(r.to_string(), norm);
        }
        assert!("1024-1536".parse::<PortRange>().is_err());
        assert!("x".parse::<PortRange>().is_err());
        assert!("70000".parse::<PortRange>().is_err());
    }
}
