//! [`FlowKey`] — a generalized flow: one feature per dimension.

use crate::{Dim, IpNet, PortRange, Proto, Site, TimeBucket};
use core::fmt;

/// A generalized flow: a point in the product lattice of all feature
/// hierarchies.
///
/// Every dimension defaults to its wildcard, so a `FlowKey` is usable
/// under any [`Schema`](crate::Schema): a 2-feature key simply leaves the
/// port/protocol dimensions at their wildcards. The all-wildcard key is
/// the lattice top (the tree root).
///
/// Ordering is lexicographic over dimensions; it exists so keys can be
/// sorted deterministically (e.g. for canonical serialization), not
/// because the order is semantically meaningful.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FlowKey {
    /// Source IP prefix.
    pub src: IpNet,
    /// Destination IP prefix.
    pub dst: IpNet,
    /// Source port range.
    pub sport: PortRange,
    /// Destination port range.
    pub dport: PortRange,
    /// IP protocol.
    pub proto: Proto,
    /// Time bucket (extension feature).
    pub time: TimeBucket,
    /// Monitor site (extension feature).
    pub site: Site,
}

impl FlowKey {
    /// The all-wildcard key (lattice top / tree root).
    pub const ROOT: FlowKey = FlowKey {
        src: IpNet::Any,
        dst: IpNet::Any,
        sport: PortRange::ANY,
        dport: PortRange::ANY,
        proto: Proto::Any,
        time: TimeBucket::ANY,
        site: Site::Any,
    };

    /// A fully-specified 5-tuple key (time/site left at wildcard).
    pub fn five_tuple(src: IpNet, dst: IpNet, sport: u16, dport: u16, proto: u8) -> FlowKey {
        FlowKey {
            src,
            dst,
            sport: PortRange::port(sport),
            dport: PortRange::port(dport),
            proto: Proto::Is(proto),
            ..FlowKey::ROOT
        }
    }

    /// Builder-style setter for the source prefix.
    pub fn with_src(mut self, src: IpNet) -> FlowKey {
        self.src = src;
        self
    }

    /// Builder-style setter for the destination prefix.
    pub fn with_dst(mut self, dst: IpNet) -> FlowKey {
        self.dst = dst;
        self
    }

    /// Builder-style setter for the source port range.
    pub fn with_sport(mut self, sport: PortRange) -> FlowKey {
        self.sport = sport;
        self
    }

    /// Builder-style setter for the destination port range.
    pub fn with_dport(mut self, dport: PortRange) -> FlowKey {
        self.dport = dport;
        self
    }

    /// Builder-style setter for the protocol.
    pub fn with_proto(mut self, proto: Proto) -> FlowKey {
        self.proto = proto;
        self
    }

    /// Builder-style setter for the time bucket.
    pub fn with_time(mut self, time: TimeBucket) -> FlowKey {
        self.time = time;
        self
    }

    /// Builder-style setter for the site.
    pub fn with_site(mut self, site: Site) -> FlowKey {
        self.site = site;
        self
    }

    /// Depth of one dimension's feature in its hierarchy.
    #[inline]
    pub fn dim_depth(&self, dim: Dim) -> u16 {
        match dim {
            Dim::SrcIp => self.src.depth(),
            Dim::DstIp => self.dst.depth(),
            Dim::SrcPort => self.sport.depth(),
            Dim::DstPort => self.dport.depth(),
            Dim::Proto => self.proto.depth(),
            Dim::Time => self.time.depth(),
            Dim::Site => self.site.depth(),
        }
    }

    /// One generalization step along `dim`; `None` if that dimension is
    /// already at its wildcard.
    pub fn generalize(&self, dim: Dim) -> Option<FlowKey> {
        let mut out = *self;
        match dim {
            Dim::SrcIp => out.src = self.src.generalize()?,
            Dim::DstIp => out.dst = self.dst.generalize()?,
            Dim::SrcPort => out.sport = self.sport.generalize()?,
            Dim::DstPort => out.dport = self.dport.generalize()?,
            Dim::Proto => out.proto = self.proto.generalize()?,
            Dim::Time => out.time = self.time.generalize()?,
            Dim::Site => out.site = self.site.generalize()?,
        }
        Some(out)
    }

    /// Replaces `dim`'s feature with its ancestor at hierarchy depth
    /// `depth`; `None` if the feature is less specific than `depth`.
    pub fn dim_ancestor_at(&self, dim: Dim, depth: u16) -> Option<FlowKey> {
        let mut out = *self;
        match dim {
            Dim::SrcIp => out.src = self.src.ancestor_at(depth)?,
            Dim::DstIp => out.dst = self.dst.ancestor_at(depth)?,
            Dim::SrcPort => out.sport = self.sport.ancestor_at(depth)?,
            Dim::DstPort => out.dport = self.dport.ancestor_at(depth)?,
            Dim::Proto => out.proto = self.proto.ancestor_at(depth)?,
            Dim::Time => out.time = self.time.ancestor_at(depth)?,
            Dim::Site => out.site = self.site.ancestor_at(depth)?,
        }
        Some(out)
    }

    /// Whether `other` is equal to or a specialization of `self`
    /// (the lattice partial order: `self ⊒ other`).
    pub fn contains(&self, other: &FlowKey) -> bool {
        self.src.contains(&other.src)
            && self.dst.contains(&other.dst)
            && self.sport.contains(&other.sport)
            && self.dport.contains(&other.dport)
            && self.proto.contains(&other.proto)
            && self.time.contains(&other.time)
            && self.site.contains(&other.site)
    }

    /// Whether the two keys share at least one concrete flow.
    ///
    /// Because every individual feature hierarchy is laminar (two
    /// features are nested or disjoint), two keys overlap iff every
    /// dimension overlaps — but, unlike single features, overlapping
    /// keys need *not* be nested: `(src=1/8, dst=*)` and
    /// `(src=*, dst=2/8)` overlap without either containing the other.
    pub fn overlaps(&self, other: &FlowKey) -> bool {
        self.src.overlaps(&other.src)
            && self.dst.overlaps(&other.dst)
            && self.sport.overlaps(&other.sport)
            && self.dport.overlaps(&other.dport)
            && self.proto.overlaps(&other.proto)
            && self.time.overlaps(&other.time)
            && self.site.overlaps(&other.site)
    }

    /// Lattice meet (most general common specialization); `None` if the
    /// keys are disjoint.
    pub fn meet(&self, other: &FlowKey) -> Option<FlowKey> {
        Some(FlowKey {
            src: self.src.meet(&other.src)?,
            dst: self.dst.meet(&other.dst)?,
            sport: self.sport.meet(&other.sport)?,
            dport: self.dport.meet(&other.dport)?,
            proto: self.proto.meet(&other.proto)?,
            time: self.time.meet(&other.time)?,
            site: self.site.meet(&other.site)?,
        })
    }

    /// Per-dimension depths of the deepest common feature ancestors of
    /// two keys: `result[i]` is the hierarchy depth at which dimension
    /// `i`'s features of `self` and `other` meet (the depth of their
    /// feature-level join). Feature hierarchies are laminar, so the
    /// ancestors of the two features at any depth `≤ result[i]` are
    /// equal and at any greater depth differ — this is what lets
    /// lowest-common-chain-ancestor computations run on depth profiles
    /// alone, without materializing chain keys.
    pub fn agreement_profile(&self, other: &FlowKey) -> crate::DepthProfile {
        let j = self.join(other);
        crate::DepthProfile::of(&j)
    }

    /// The key whose every feature is `self`'s ancestor at the depths
    /// given by `profile` (which must be dimension-wise ≤ this key's
    /// own profile). This is how canonical chain ancestors materialize
    /// from a schedule-evolved depth profile without walking the chain.
    pub fn at_profile(&self, profile: &crate::DepthProfile) -> FlowKey {
        let mut out = *self;
        for dim in Dim::ALL {
            let want = profile.get(dim);
            if want < self.dim_depth(dim) {
                out = out
                    .dim_ancestor_at(dim, want)
                    .expect("profile must be dimension-wise below the key");
            }
        }
        out
    }

    /// Lattice join (most specific common generalization).
    pub fn join(&self, other: &FlowKey) -> FlowKey {
        FlowKey {
            src: self.src.join(&other.src),
            dst: self.dst.join(&other.dst),
            sport: self.sport.join(&other.sport),
            dport: self.dport.join(&other.dport),
            proto: self.proto.join(&other.proto),
            time: self.time.join(&other.time),
            site: self.site.join(&other.site),
        }
    }

    /// Whether this is the all-wildcard key.
    pub fn is_root(&self) -> bool {
        *self == FlowKey::ROOT
    }
}

impl fmt::Display for FlowKey {
    /// Formats only the non-wildcard dimensions, e.g.
    /// `src=1.1.1.0/24 dport=443 proto=tcp`; the root formats as `*`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            return f.write_str("*");
        }
        let mut first = true;
        let mut item = |f: &mut fmt::Formatter<'_>, name: &str, v: String| -> fmt::Result {
            if v == "*" {
                return Ok(());
            }
            if !first {
                f.write_str(" ")?;
            }
            first = false;
            write!(f, "{name}={v}")
        };
        item(f, "src", self.src.to_string())?;
        item(f, "dst", self.dst.to_string())?;
        item(f, "sport", self.sport.to_string())?;
        item(f, "dport", self.dport.to_string())?;
        item(f, "proto", self.proto.to_string())?;
        item(f, "time", self.time.to_string())?;
        item(f, "site", self.site.to_string())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(s: &str) -> FlowKey {
        s.parse().unwrap()
    }

    #[test]
    fn root_contains_everything() {
        let k = FlowKey::five_tuple(
            IpNet::v4_host(Ipv4Addr::new(1, 2, 3, 4)),
            IpNet::v4_host(Ipv4Addr::new(5, 6, 7, 8)),
            1234,
            80,
            6,
        );
        assert!(FlowKey::ROOT.contains(&k));
        assert!(!k.contains(&FlowKey::ROOT));
        assert!(FlowKey::ROOT.is_root());
    }

    #[test]
    fn contains_is_per_dimension() {
        let broad = key("src=1.1.0.0/16 dport=0-511");
        let narrow = key("src=1.1.1.0/24 dport=443");
        assert!(broad.contains(&narrow));
        assert!(!narrow.contains(&broad));
        // Flip one dimension out from under the parent.
        let outside = key("src=1.2.0.0/24 dport=443");
        assert!(!broad.contains(&outside));
    }

    #[test]
    fn overlap_without_nesting() {
        let a = key("src=1.0.0.0/8");
        let b = key("dst=2.0.0.0/8");
        assert!(a.overlaps(&b));
        assert!(!a.contains(&b) && !b.contains(&a));
        let m = a.meet(&b).unwrap();
        assert_eq!(m, key("src=1.0.0.0/8 dst=2.0.0.0/8"));
    }

    #[test]
    fn meet_none_when_disjoint() {
        let a = key("src=1.0.0.0/8 dport=80");
        let b = key("src=2.0.0.0/8");
        assert_eq!(a.meet(&b), None);
        let c = key("src=1.0.0.0/8 dport=443");
        assert_eq!(a.meet(&c), None); // same src, disjoint dport
    }

    #[test]
    fn join_is_least_upper_bound_on_examples() {
        let a = key("src=1.1.1.12/30 dport=80");
        let b = key("src=1.1.1.20/30 dport=443");
        let j = a.join(&b);
        assert!(j.contains(&a) && j.contains(&b));
        assert_eq!(j.src, "1.1.1.0/27".parse().unwrap());
    }

    #[test]
    fn generalize_single_dim() {
        let k = key("src=1.1.1.0/24 dport=443");
        let g = k.generalize(Dim::SrcIp).unwrap();
        assert_eq!(g.src, "1.1.1.0/23".parse().unwrap());
        assert_eq!(g.dport, k.dport);
        assert!(g.contains(&k));
        // Wildcard dims cannot generalize further.
        assert!(k.generalize(Dim::Proto).is_none());
    }

    #[test]
    fn dim_ancestor_at_works() {
        let k = key("src=1.1.1.1/32");
        let a = k.dim_ancestor_at(Dim::SrcIp, 25).unwrap();
        assert_eq!(a.src, "1.1.1.0/24".parse().unwrap());
        assert!(k.dim_ancestor_at(Dim::SrcIp, 34).is_none());
    }

    #[test]
    fn display_skips_wildcards() {
        assert_eq!(FlowKey::ROOT.to_string(), "*");
        let k = key("src=1.1.1.0/24 proto=tcp");
        assert_eq!(k.to_string(), "src=1.1.1.0/24 proto=tcp");
    }
}
