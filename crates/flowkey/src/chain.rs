//! The canonical generalization chain.
//!
//! The features of a flow form a product *lattice*: any dimension can be
//! generalized independently, so a key has several immediate parents.
//! Flowtree however maintains a **tree**. The bridge is a deterministic
//! *schedule*: for every key there is exactly one canonical next
//! generalization step, hence exactly one chain from the key up to the
//! all-wildcard root. The schedule is a pure function of the key's
//! [`DepthProfile`], which gives the crucial consistency property:
//!
//! > If `A` lies on the canonical chain of `C`, then the chain of `C`
//! > above `A` *is* the chain of `A`.
//!
//! This is what makes "longest matching parent" (the paper's insertion
//! rule) well-defined and lets `flowtree-core` treat the structure as a
//! path-compressed trie over chain space.
//!
//! The schedule generalizes the dimension whose hierarchy is *relatively
//! deepest* (depth normalized by the dimension's maximum depth), breaking
//! ties in a fixed priority order that sheds low-value features first:
//! ports, then protocol, then time, site, and finally the IP prefixes.
//! A fully-specified 5-tuple therefore loses port bits and the protocol
//! early and keeps address bits the longest, which matches how operators
//! drill down (mostly by prefix, as in the paper's Fig. 2).

use crate::{Dim, FlowKey, NUM_DIMS};

/// Per-dimension hierarchy depths of a key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DepthProfile(pub [u16; NUM_DIMS]);

impl DepthProfile {
    /// The profile of `key` (all dimensions, active or not).
    pub fn of(key: &FlowKey) -> DepthProfile {
        let mut d = [0u16; NUM_DIMS];
        for dim in Dim::ALL {
            d[dim.index()] = key.dim_depth(dim);
        }
        DepthProfile(d)
    }

    /// Depth of one dimension.
    #[inline]
    pub fn get(&self, dim: Dim) -> u16 {
        self.0[dim.index()]
    }

    /// Sum of depths over the given active-dimension mask.
    pub fn total(&self, active: &[bool; NUM_DIMS]) -> u32 {
        self.0
            .iter()
            .zip(active)
            .filter(|(_, a)| **a)
            .map(|(d, _)| *d as u32)
            .sum()
    }
}

/// Tie-break order for the schedule: dimensions earlier in this list are
/// generalized first when equally (relatively) deep.
pub const GENERALIZE_PRIORITY: [Dim; NUM_DIMS] = [
    Dim::SrcPort,
    Dim::DstPort,
    Dim::Proto,
    Dim::Time,
    Dim::Site,
    Dim::SrcIp,
    Dim::DstIp,
];

/// Picks the dimension to generalize next, or `None` if every active
/// dimension is already at its wildcard.
///
/// Normalized depths are compared exactly and division-free:
/// `weight[i] = L / max_depth[i]` for `L = lcm(all max depths)`, so
/// `depth[i] * weight[i]` is exactly proportional to
/// `depth[i] / max_depth[i]`.
///
/// Pure in `(profile, active, weight)` — this purity is what makes
/// canonical chains consistent, so any change here invalidates
/// serialized trees.
#[inline]
pub fn next_dim(
    profile: &DepthProfile,
    active: &[bool; NUM_DIMS],
    weight: &[u32; NUM_DIMS],
) -> Option<Dim> {
    let mut best: Option<(u32, Dim)> = None;
    for dim in GENERALIZE_PRIORITY {
        let i = dim.index();
        if !active[i] || profile.0[i] == 0 {
            continue;
        }
        let norm = profile.0[i] as u32 * weight[i];
        // Strictly-greater keeps the earliest priority dimension on ties.
        if best.is_none_or(|(b, _)| norm > b) {
            best = Some((norm, dim));
        }
    }
    best.map(|(_, d)| d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    #[test]
    fn full_five_tuple_sheds_ports_first() {
        let schema = Schema::five_feature();
        let key: FlowKey = "src=1.2.3.4/32 dst=5.6.7.8/32 sport=1234 dport=80 proto=tcp"
            .parse()
            .unwrap();
        let p1 = schema.parent(&key).unwrap();
        assert_eq!(p1.sport.depth(), 15, "source port generalized first");
        let p2 = schema.parent(&p1).unwrap();
        assert_eq!(p2.dport.depth(), 15, "destination port second");
        let p3 = schema.parent(&p2).unwrap();
        assert_eq!(p3.proto.depth(), 0, "protocol third");
    }

    #[test]
    fn chain_is_consistent_above_intermediate_nodes() {
        let schema = Schema::five_feature();
        let key: FlowKey = "src=10.1.2.3/32 dst=192.0.2.9/32 sport=49152 dport=443 proto=udp"
            .parse()
            .unwrap();
        let full = schema.depth(&key);
        // Take the ancestor at every depth, then verify that the chain of
        // that ancestor equals the tail of the original chain.
        for d in (0..full).rev() {
            let anc = schema.chain_ancestor(&key, d);
            assert_eq!(schema.depth(&anc), d);
            assert!(anc.contains(&key));
            if d > 0 {
                let via_key = schema.chain_ancestor(&key, d - 1);
                let via_anc = schema.chain_ancestor(&anc, d - 1);
                assert_eq!(via_key, via_anc, "chain must be consistent at depth {d}");
            }
        }
    }

    #[test]
    fn next_dim_ignores_inactive_dims() {
        let schema = Schema::two_feature();
        let key: FlowKey = "src=1.2.3.4/32 dst=5.6.7.8/32 sport=80".parse().unwrap();
        // sport is deeper in relative terms but inactive under SrcDst2.
        let p = schema.parent(&schema.canonicalize(&key)).unwrap();
        assert_eq!(p.sport.depth(), 0, "inactive dims stay at wildcard");
        assert!(p.src.depth() < 33 || p.dst.depth() < 33);
    }
}
