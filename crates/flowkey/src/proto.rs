//! The IP protocol feature.
//!
//! Protocols have a two-level hierarchy: a concrete protocol number
//! generalizes directly to the wildcard.

use crate::ParseError;
use core::fmt;
use core::str::FromStr;

/// IANA protocol number for ICMP.
pub const ICMP: u8 = 1;
/// IANA protocol number for TCP.
pub const TCP: u8 = 6;
/// IANA protocol number for UDP.
pub const UDP: u8 = 17;
/// IANA protocol number for ICMPv6.
pub const ICMPV6: u8 = 58;
/// IANA protocol number for GRE.
pub const GRE: u8 = 47;
/// IANA protocol number for ESP.
pub const ESP: u8 = 50;

/// An IP protocol, concrete or wildcard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Proto {
    /// Matches every protocol (the hierarchy root).
    #[default]
    Any,
    /// A concrete IANA protocol number.
    Is(u8),
}

impl Proto {
    /// TCP.
    pub const TCP: Proto = Proto::Is(TCP);
    /// UDP.
    pub const UDP: Proto = Proto::Is(UDP);
    /// ICMP.
    pub const ICMP: Proto = Proto::Is(ICMP);

    /// Depth in the hierarchy (0 = wildcard, 1 = concrete).
    #[inline]
    pub fn depth(&self) -> u16 {
        match self {
            Proto::Any => 0,
            Proto::Is(_) => 1,
        }
    }

    /// One generalization step; `None` at the wildcard.
    #[inline]
    pub fn generalize(&self) -> Option<Proto> {
        match self {
            Proto::Any => None,
            Proto::Is(_) => Some(Proto::Any),
        }
    }

    /// The ancestor at depth `depth`; `None` if deeper than `self`.
    #[inline]
    pub fn ancestor_at(&self, depth: u16) -> Option<Proto> {
        match depth {
            0 => Some(Proto::Any),
            1 if matches!(self, Proto::Is(_)) => Some(*self),
            _ => None,
        }
    }

    /// Whether `other` is equal or more specific.
    #[inline]
    pub fn contains(&self, other: &Proto) -> bool {
        match (self, other) {
            (Proto::Any, _) => true,
            (Proto::Is(a), Proto::Is(b)) => a == b,
            (Proto::Is(_), Proto::Any) => false,
        }
    }

    /// Whether the two features share a concrete protocol.
    #[inline]
    pub fn overlaps(&self, other: &Proto) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// Lattice join.
    #[inline]
    pub fn join(&self, other: &Proto) -> Proto {
        if self == other {
            *self
        } else {
            Proto::Any
        }
    }

    /// Lattice meet; `None` if disjoint.
    #[inline]
    pub fn meet(&self, other: &Proto) -> Option<Proto> {
        if self.contains(other) {
            Some(*other)
        } else if other.contains(self) {
            Some(*self)
        } else {
            None
        }
    }
}

impl fmt::Display for Proto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Proto::Any => f.write_str("*"),
            Proto::Is(TCP) => f.write_str("tcp"),
            Proto::Is(UDP) => f.write_str("udp"),
            Proto::Is(ICMP) => f.write_str("icmp"),
            Proto::Is(ICMPV6) => f.write_str("icmpv6"),
            Proto::Is(GRE) => f.write_str("gre"),
            Proto::Is(ESP) => f.write_str("esp"),
            Proto::Is(n) => write!(f, "{n}"),
        }
    }
}

impl FromStr for Proto {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "*" => Ok(Proto::Any),
            "tcp" => Ok(Proto::Is(TCP)),
            "udp" => Ok(Proto::Is(UDP)),
            "icmp" => Ok(Proto::Is(ICMP)),
            "icmpv6" => Ok(Proto::Is(ICMPV6)),
            "gre" => Ok(Proto::Is(GRE)),
            "esp" => Ok(Proto::Is(ESP)),
            _ => s
                .parse::<u8>()
                .map(Proto::Is)
                .map_err(|_| ParseError::BadProto(s.to_string())),
        }
    }
}

impl From<u8> for Proto {
    fn from(n: u8) -> Self {
        Proto::Is(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_is_two_levels() {
        assert_eq!(Proto::TCP.depth(), 1);
        assert_eq!(Proto::TCP.generalize(), Some(Proto::Any));
        assert_eq!(Proto::Any.generalize(), None);
        assert_eq!(Proto::Any.depth(), 0);
    }

    #[test]
    fn containment() {
        assert!(Proto::Any.contains(&Proto::TCP));
        assert!(Proto::TCP.contains(&Proto::TCP));
        assert!(!Proto::TCP.contains(&Proto::UDP));
        assert!(!Proto::TCP.contains(&Proto::Any));
    }

    #[test]
    fn join_meet() {
        assert_eq!(Proto::TCP.join(&Proto::UDP), Proto::Any);
        assert_eq!(Proto::TCP.join(&Proto::TCP), Proto::TCP);
        assert_eq!(Proto::TCP.meet(&Proto::UDP), None);
        assert_eq!(Proto::Any.meet(&Proto::UDP), Some(Proto::UDP));
    }

    #[test]
    fn parse_display() {
        for (s, p) in [
            ("*", Proto::Any),
            ("tcp", Proto::TCP),
            ("udp", Proto::UDP),
            ("icmp", Proto::ICMP),
            ("99", Proto::Is(99)),
        ] {
            assert_eq!(s.parse::<Proto>().unwrap(), p);
            assert_eq!(p.to_string(), s);
        }
        assert_eq!("6".parse::<Proto>().unwrap(), Proto::TCP);
        assert!("256".parse::<Proto>().is_err());
        assert!("".parse::<Proto>().is_err());
    }
}
