//! Textual syntax for flow keys.
//!
//! The syntax is a space- (or comma-) separated list of `dim=value`
//! components, mirroring how the paper's queries are phrased:
//!
//! ```text
//! src=1.1.1.0/24 dport=443 proto=tcp
//! src=2001:db8::/32, sport=1024-2047
//! *
//! ```
//!
//! Omitted dimensions are wildcards; `*` alone is the root key. The
//! same syntax is produced by [`FlowKey`]'s `Display` impl, and is used
//! by the `flowquery` language for flow patterns.

use crate::{Dim, FlowKey, ParseError};
use core::str::FromStr;

impl FromStr for FlowKey {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "*" {
            return Ok(FlowKey::ROOT);
        }
        let mut key = FlowKey::ROOT;
        let mut seen = [false; crate::NUM_DIMS];
        for comp in s.split([' ', ',']).filter(|c| !c.is_empty()) {
            let (name, value) = comp
                .split_once('=')
                .ok_or_else(|| ParseError::BadComponent(comp.to_string()))?;
            let dim = match name {
                "src" => Dim::SrcIp,
                "dst" => Dim::DstIp,
                "sport" => Dim::SrcPort,
                "dport" => Dim::DstPort,
                "proto" => Dim::Proto,
                "time" => Dim::Time,
                "site" => Dim::Site,
                _ => return Err(ParseError::BadComponent(comp.to_string())),
            };
            if seen[dim.index()] {
                return Err(ParseError::DuplicateDim(dim));
            }
            seen[dim.index()] = true;
            match dim {
                Dim::SrcIp => key.src = value.parse()?,
                Dim::DstIp => key.dst = value.parse()?,
                Dim::SrcPort => key.sport = value.parse()?,
                Dim::DstPort => key.dport = value.parse()?,
                Dim::Proto => key.proto = value.parse()?,
                Dim::Time => key.time = value.parse()?,
                Dim::Site => key.site = value.parse()?,
            }
        }
        Ok(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IpNet, PortRange, Proto};

    #[test]
    fn parses_subset_of_dims() {
        let k: FlowKey = "src=1.1.0.0/16 dport=443".parse().unwrap();
        assert_eq!(k.src, "1.1.0.0/16".parse::<IpNet>().unwrap());
        assert_eq!(k.dport, PortRange::port(443));
        assert_eq!(k.proto, Proto::Any);
        assert_eq!(k.dst, IpNet::Any);
    }

    #[test]
    fn accepts_commas_and_extra_spaces() {
        let a: FlowKey = "src=1.0.0.0/8,dst=2.0.0.0/8".parse().unwrap();
        let b: FlowKey = "  src=1.0.0.0/8   dst=2.0.0.0/8 ".parse().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn star_and_empty_are_root() {
        assert_eq!("*".parse::<FlowKey>().unwrap(), FlowKey::ROOT);
        assert_eq!("".parse::<FlowKey>().unwrap(), FlowKey::ROOT);
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in [
            "*",
            "src=1.1.1.0/24",
            "src=1.2.3.4/32 dst=9.8.7.6/32 sport=1234 dport=80 proto=tcp",
            "dst=2001:db8::/32 proto=udp",
            "src=1.0.0.0/8 time=1024+256s site=7",
            "dport=1024-2047 site=r2",
        ] {
            let k: FlowKey = s.parse().unwrap();
            let printed = k.to_string();
            let again: FlowKey = printed.parse().unwrap();
            assert_eq!(k, again, "via {printed}");
        }
    }

    #[test]
    fn rejects_bad_components() {
        assert!("bogus=1".parse::<FlowKey>().is_err());
        assert!("src".parse::<FlowKey>().is_err());
        assert!("src=1.2.3.4/40".parse::<FlowKey>().is_err());
        assert!(matches!(
            "src=1.0.0.0/8 src=2.0.0.0/8".parse::<FlowKey>(),
            Err(ParseError::DuplicateDim(Dim::SrcIp))
        ));
    }
}
