//! Flow schemas: which features are active and how they generalize.
//!
//! The paper works with several flow types — 1-feature (src prefix),
//! 2-feature (src/dst prefixes), 4-feature and 5-feature flows — and the
//! distributed system extends keys with time and site. A [`Schema`]
//! captures the active dimension set plus the constants the canonical
//! chain schedule needs, and provides every chain operation
//! (`parent`, `chain_ancestor`, `lcca`, …) used by `flowtree-core`.

use crate::chain::{next_dim, DepthProfile};
use crate::{Dim, FlowKey, IpNet, PortRange, Proto, Site, TimeBucket, NUM_DIMS};

/// The flow types used in the paper plus the distributed-system extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SchemaKind {
    /// 1-feature flows: source prefix only (paper Fig. 2a).
    Src1,
    /// 2-feature flows: source and destination prefixes.
    SrcDst2,
    /// 4-feature flows: prefixes plus both port ranges (paper Fig. 2b).
    Four,
    /// 5-feature flows: the full protocol 5-tuple.
    Five,
    /// 5-feature flows plus time and site (the Fig. 1 system).
    Extended,
}

/// Maximum hierarchy depths per dimension, used to normalize the
/// schedule. IPs use the IPv4 depth (33); IPv6 keys simply rank as
/// "deeper than fully-specific IPv4", which keeps the schedule pure.
const MAX_DEPTH: [u16; NUM_DIMS] = [
    33, // SrcIp
    33, // DstIp
    16, // SrcPort
    16, // DstPort
    1,  // Proto
    TimeBucket::MAX_LEVEL as u16,
    2, // Site
];

/// `L = lcm(33, 16, 1, 36, 2) = 15 84`… exactly: lcm(33,16)=528,
/// lcm(528,36)=1584, lcm(1584,2)=1584. The schedule weights
/// `L / max_depth[i]` make normalized-depth comparison exact with one
/// multiply (no division on the hot path).
const SCHEDULE_LCM: u32 = 1_584;

/// Exact schedule weights (`SCHEDULE_LCM / MAX_DEPTH[i]`).
const SCHEDULE_WEIGHT: [u32; NUM_DIMS] = [
    SCHEDULE_LCM / 33,                           // SrcIp = 48
    SCHEDULE_LCM / 33,                           // DstIp = 48
    SCHEDULE_LCM / 16,                           // SrcPort = 99
    SCHEDULE_LCM / 16,                           // DstPort = 99
    SCHEDULE_LCM,                                // Proto = 1584
    SCHEDULE_LCM / TimeBucket::MAX_LEVEL as u32, // Time = 44
    SCHEDULE_LCM / 2,                            // Site = 792
];

/// Per-step log2 fan-out of each dimension's hierarchy, used by the
/// uniform estimator: one generalization step multiplies the covered
/// space by this factor (2 for binary hierarchies, 256 for the protocol
/// step and each site step).
const LOG2_FANOUT: [u16; NUM_DIMS] = [
    1, // SrcIp: one address bit per step
    1, // DstIp
    1, // SrcPort: one port bit per step
    1, // DstPort
    8, // Proto: Any → concrete covers 256 protocols
    1, // Time: one bit of seconds per step
    8, // Site: 256 regions, then 256 sites per region
];

/// A flow schema: active dimensions plus chain-schedule constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Schema {
    kind: SchemaKind,
    active: [bool; NUM_DIMS],
}

impl Schema {
    /// 1-feature flows (source prefix), as in the paper's Fig. 2a.
    pub fn one_feature_src() -> Schema {
        Schema::from_kind(SchemaKind::Src1)
    }

    /// 2-feature flows (source and destination prefixes).
    pub fn two_feature() -> Schema {
        Schema::from_kind(SchemaKind::SrcDst2)
    }

    /// 4-feature flows (prefixes + port ranges), as in the paper's
    /// Fig. 2b and the Fig. 3 evaluation.
    pub fn four_feature() -> Schema {
        Schema::from_kind(SchemaKind::Four)
    }

    /// 5-feature flows (the full 5-tuple).
    pub fn five_feature() -> Schema {
        Schema::from_kind(SchemaKind::Five)
    }

    /// 5-feature flows extended with time and site (the distributed
    /// system of Fig. 1 / future work).
    pub fn extended() -> Schema {
        Schema::from_kind(SchemaKind::Extended)
    }

    /// The schema for a [`SchemaKind`].
    pub fn from_kind(kind: SchemaKind) -> Schema {
        let mut active = [false; NUM_DIMS];
        let dims: &[Dim] = match kind {
            SchemaKind::Src1 => &[Dim::SrcIp],
            SchemaKind::SrcDst2 => &[Dim::SrcIp, Dim::DstIp],
            SchemaKind::Four => &[Dim::SrcIp, Dim::DstIp, Dim::SrcPort, Dim::DstPort],
            SchemaKind::Five => &[
                Dim::SrcIp,
                Dim::DstIp,
                Dim::SrcPort,
                Dim::DstPort,
                Dim::Proto,
            ],
            SchemaKind::Extended => &Dim::ALL,
        };
        for d in dims {
            active[d.index()] = true;
        }
        Schema { kind, active }
    }

    /// Which flow type this is.
    #[inline]
    pub fn kind(&self) -> SchemaKind {
        self.kind
    }

    /// Whether `dim` participates in this schema.
    #[inline]
    pub fn is_active(&self, dim: Dim) -> bool {
        self.active[dim.index()]
    }

    /// The active dimensions, in [`Dim::ALL`] order.
    pub fn dims(&self) -> impl Iterator<Item = Dim> + '_ {
        Dim::ALL.into_iter().filter(|d| self.is_active(*d))
    }

    /// Number of active dimensions.
    pub fn num_active(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }

    /// The all-wildcard key — the tree root under every schema.
    #[inline]
    pub fn root(&self) -> FlowKey {
        FlowKey::ROOT
    }

    /// Whether `key` keeps every inactive dimension at its wildcard.
    pub fn conforms(&self, key: &FlowKey) -> bool {
        Dim::ALL
            .into_iter()
            .all(|d| self.is_active(d) || key.dim_depth(d) == 0)
    }

    /// Forces inactive dimensions to their wildcards.
    pub fn canonicalize(&self, key: &FlowKey) -> FlowKey {
        let mut out = *key;
        if !self.is_active(Dim::SrcIp) {
            out.src = IpNet::Any;
        }
        if !self.is_active(Dim::DstIp) {
            out.dst = IpNet::Any;
        }
        if !self.is_active(Dim::SrcPort) {
            out.sport = PortRange::ANY;
        }
        if !self.is_active(Dim::DstPort) {
            out.dport = PortRange::ANY;
        }
        if !self.is_active(Dim::Proto) {
            out.proto = Proto::Any;
        }
        if !self.is_active(Dim::Time) {
            out.time = TimeBucket::ANY;
        }
        if !self.is_active(Dim::Site) {
            out.site = Site::Any;
        }
        out
    }

    /// Total chain depth of `key` (sum over active dimensions); 0 = root.
    #[inline]
    pub fn depth(&self, key: &FlowKey) -> u32 {
        DepthProfile::of(key).total(&self.active)
    }

    /// The canonical parent: one schedule step up; `None` at the root.
    pub fn parent(&self, key: &FlowKey) -> Option<FlowKey> {
        let profile = DepthProfile::of(key);
        let dim = next_dim(&profile, &self.active, &SCHEDULE_WEIGHT)?;
        key.generalize(dim)
    }

    /// The canonical chain ancestor of `key` at total depth
    /// `target_depth`, maintaining the depth profile incrementally so
    /// each step is one table scan plus one feature generalization.
    ///
    /// Panics in debug builds if `target_depth > depth(key)`; in release
    /// builds it returns `key` unchanged in that case.
    pub fn chain_ancestor(&self, key: &FlowKey, target_depth: u32) -> FlowKey {
        debug_assert!(target_depth <= self.depth(key));
        let mut profile = DepthProfile::of(key);
        let mut depth = profile.total(&self.active);
        let mut cur = *key;
        while depth > target_depth {
            let Some(dim) = next_dim(&profile, &self.active, &SCHEDULE_WEIGHT) else {
                break;
            };
            cur = cur.generalize(dim).expect("next_dim only picks depth > 0");
            profile.0[dim.index()] -= 1;
            depth -= 1;
        }
        cur
    }

    /// The canonical chain ancestor of `key` at `target_depth` together
    /// with the one-step-deeper ancestor (the *step* at
    /// `target_depth + 1`) from a single upward walk — callers that
    /// need both (e.g. the codec's decode fast path, which validates a
    /// claimed parent and attaches at its step in one pass) avoid
    /// walking the chain twice.
    ///
    /// Requires `target_depth < depth(key)` (debug-asserted); the step
    /// would not exist otherwise.
    pub fn chain_ancestor_with_step(&self, key: &FlowKey, target_depth: u32) -> (FlowKey, FlowKey) {
        debug_assert!(target_depth < self.depth(key));
        let mut profile = DepthProfile::of(key);
        let mut depth = profile.total(&self.active);
        let mut cur = *key;
        let mut step = *key;
        while depth > target_depth {
            let Some(dim) = next_dim(&profile, &self.active, &SCHEDULE_WEIGHT) else {
                break;
            };
            step = cur;
            cur = cur.generalize(dim).expect("next_dim only picks depth > 0");
            profile.0[dim.index()] -= 1;
            depth -= 1;
        }
        (cur, step)
    }

    /// Iterates the canonical chain upward: the parent of `key`, then
    /// the grandparent, … ending with the root. Maintains the profile
    /// incrementally, so whole-chain walks cost O(depth), not O(depth²).
    pub fn chain_up(&self, key: &FlowKey) -> ChainUp<'_> {
        ChainUp {
            schema: self,
            profile: DepthProfile::of(key),
            cur: *key,
            done: false,
        }
    }

    /// Like [`Schema::chain_up`], but yields `(ancestor, hash)` pairs
    /// with the whole-key hash maintained incrementally (two
    /// single-feature hashes per step). `key_hash` must be
    /// [`crate::key_hash`]`(key)`; passing it in lets hot paths that
    /// already probed an index with it avoid recomputing.
    pub fn chain_up_hashed(&self, key: &FlowKey, key_hash: u64) -> crate::HashedChainUp<'_> {
        crate::HashedChainUp::new(self, key, key_hash)
    }

    /// The next dimension the canonical schedule generalizes for a key
    /// with the given depth profile (`None` at the root). Exposed for
    /// chain walkers that maintain profiles incrementally.
    #[inline]
    pub fn next_chain_dim(&self, profile: &DepthProfile) -> Option<Dim> {
        next_dim(profile, &self.active, &SCHEDULE_WEIGHT)
    }

    /// Whether `anc` lies on the canonical chain of `desc`
    /// (equal keys count as ancestors).
    pub fn is_chain_ancestor(&self, anc: &FlowKey, desc: &FlowKey) -> bool {
        let da = self.depth(anc);
        let dd = self.depth(desc);
        da <= dd && self.chain_ancestor(desc, da) == *anc
    }

    /// Lowest common chain ancestor: the deepest key lying on the
    /// canonical chains of both `a` and `b`.
    pub fn lcca(&self, a: &FlowKey, b: &FlowKey) -> FlowKey {
        let (da, db) = (self.depth(a), self.depth(b));
        let common = da.min(db);
        let mut x = self.chain_ancestor(a, common);
        let mut y = self.chain_ancestor(b, common);
        let mut depth = common;
        while x != y {
            debug_assert!(depth > 0, "chains must meet at the root");
            depth -= 1;
            x = self.chain_ancestor(&x, depth);
            y = self.chain_ancestor(&y, depth);
        }
        x
    }

    /// Log2 of the (approximate) space-size ratio between an ancestor and
    /// a descendant key: the uniform estimator divides residual mass by
    /// `2^log2_space_between` per step when pushing estimates down the
    /// hierarchy.
    pub fn log2_space_between(&self, anc: &FlowKey, desc: &FlowKey) -> u32 {
        debug_assert!(anc.contains(desc));
        let pa = DepthProfile::of(anc);
        let pd = DepthProfile::of(desc);
        let mut bits = 0u32;
        for dim in self.dims() {
            let i = dim.index();
            let delta = pd.0[i].saturating_sub(pa.0[i]) as u32;
            bits += delta * LOG2_FANOUT[i] as u32;
        }
        bits
    }

    /// The full chain depth of a completely specified IPv4 flow under
    /// this schema (useful for sizing sweeps).
    pub fn full_depth_v4(&self) -> u32 {
        self.dims().map(|d| MAX_DEPTH[d.index()] as u32).sum()
    }
}

/// Iterator returned by [`Schema::chain_up`].
#[derive(Debug, Clone)]
pub struct ChainUp<'a> {
    schema: &'a Schema,
    profile: DepthProfile,
    cur: FlowKey,
    done: bool,
}

impl Iterator for ChainUp<'_> {
    type Item = FlowKey;

    fn next(&mut self) -> Option<FlowKey> {
        if self.done {
            return None;
        }
        match next_dim(&self.profile, &self.schema.active, &SCHEDULE_WEIGHT) {
            Some(dim) => {
                self.cur = self
                    .cur
                    .generalize(dim)
                    .expect("next_dim only picks depth > 0");
                self.profile.0[dim.index()] -= 1;
                Some(self.cur)
            }
            None => {
                self.done = true;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> FlowKey {
        s.parse().unwrap()
    }

    #[test]
    fn kinds_have_expected_arity() {
        assert_eq!(Schema::one_feature_src().num_active(), 1);
        assert_eq!(Schema::two_feature().num_active(), 2);
        assert_eq!(Schema::four_feature().num_active(), 4);
        assert_eq!(Schema::five_feature().num_active(), 5);
        assert_eq!(Schema::extended().num_active(), 7);
    }

    #[test]
    fn depth_counts_active_dims_only() {
        let k = key("src=1.2.3.4/32 dport=443");
        assert_eq!(Schema::one_feature_src().depth(&k), 33);
        assert_eq!(Schema::four_feature().depth(&k), 33 + 16);
        assert_eq!(Schema::five_feature().depth(&k), 33 + 16);
    }

    #[test]
    fn parent_chain_terminates_at_root() {
        let schema = Schema::five_feature();
        let mut cur = key("src=9.8.7.6/32 dst=1.2.3.4/32 sport=53124 dport=53 proto=udp");
        let mut steps = 0;
        while let Some(p) = schema.parent(&cur) {
            assert!(p.contains(&cur));
            assert_eq!(schema.depth(&p) + 1, schema.depth(&cur));
            cur = p;
            steps += 1;
            assert!(steps <= schema.full_depth_v4(), "chain must terminate");
        }
        assert!(cur.is_root());
        assert_eq!(steps, schema.full_depth_v4());
    }

    #[test]
    fn conforms_and_canonicalize() {
        let schema = Schema::two_feature();
        let k = key("src=1.2.3.4/32 dport=80");
        assert!(!schema.conforms(&k));
        let c = schema.canonicalize(&k);
        assert!(schema.conforms(&c));
        assert_eq!(c, key("src=1.2.3.4/32"));
    }

    #[test]
    fn lcca_of_siblings_is_their_fork_point() {
        let schema = Schema::one_feature_src();
        let a = key("src=1.1.1.12/30");
        let b = key("src=1.1.1.20/30");
        let l = schema.lcca(&a, &b);
        assert_eq!(l, key("src=1.1.1.0/27"));
        assert!(schema.is_chain_ancestor(&l, &a));
        assert!(schema.is_chain_ancestor(&l, &b));
    }

    #[test]
    fn lcca_when_one_is_ancestor() {
        let schema = Schema::one_feature_src();
        let a = key("src=1.1.0.0/16");
        let b = key("src=1.1.1.1/32");
        assert_eq!(schema.lcca(&a, &b), a);
        assert_eq!(schema.lcca(&b, &a), a);
        assert_eq!(schema.lcca(&a, &a), a);
    }

    #[test]
    fn lcca_multi_feature_lies_on_both_chains() {
        let schema = Schema::five_feature();
        let a = key("src=10.0.0.1/32 dst=192.0.2.1/32 sport=1111 dport=80 proto=tcp");
        let b = key("src=10.0.0.2/32 dst=192.0.2.1/32 sport=2222 dport=443 proto=tcp");
        let l = schema.lcca(&a, &b);
        assert!(schema.is_chain_ancestor(&l, &a));
        assert!(schema.is_chain_ancestor(&l, &b));
        assert!(l.contains(&a) && l.contains(&b));
        // And it is the *lowest* such node: one step deeper on a's chain
        // is no longer an ancestor of b.
        let deeper = schema.chain_ancestor(&a, schema.depth(&l) + 1);
        assert!(!schema.is_chain_ancestor(&deeper, &b));
    }

    #[test]
    fn chain_ancestor_with_step_agrees_with_two_walks() {
        let schema = Schema::five_feature();
        let k = key("src=10.1.2.3/32 dst=192.0.2.9/32 sport=49152 dport=443 proto=udp");
        let full = schema.depth(&k);
        for d in 0..full {
            let (anc, step) = schema.chain_ancestor_with_step(&k, d);
            assert_eq!(anc, schema.chain_ancestor(&k, d));
            assert_eq!(step, schema.chain_ancestor(&k, d + 1));
        }
    }

    #[test]
    fn is_chain_ancestor_examples() {
        let schema = Schema::one_feature_src();
        assert!(schema.is_chain_ancestor(&key("src=1.1.1.0/24"), &key("src=1.1.1.20/30")));
        assert!(!schema.is_chain_ancestor(&key("src=1.1.2.0/24"), &key("src=1.1.1.20/30")));
        // Lattice ancestor that is NOT on the canonical chain: under the
        // five-feature schema, (src=/24) is an ancestor of the full key in
        // the lattice but the canonical chain sheds ports before reaching
        // src=/24 with ports still fully specified.
        let schema5 = Schema::five_feature();
        let full = key("src=1.1.1.7/32 dst=2.2.2.2/32 sport=1234 dport=80 proto=tcp");
        let lattice_anc = key("src=1.1.1.0/24 dst=2.2.2.2/32 sport=1234 dport=80 proto=tcp");
        assert!(lattice_anc.contains(&full));
        assert!(!schema5.is_chain_ancestor(&lattice_anc, &full));
    }

    #[test]
    fn log2_space_between_accumulates_fanout() {
        let schema = Schema::five_feature();
        let anc = key("src=1.1.1.0/24");
        let desc = key("src=1.1.1.0/26 proto=tcp");
        assert_eq!(schema.log2_space_between(&anc, &desc), 2 + 8);
    }

    #[test]
    fn full_depth_v4_by_kind() {
        assert_eq!(Schema::one_feature_src().full_depth_v4(), 33);
        assert_eq!(Schema::two_feature().full_depth_v4(), 66);
        assert_eq!(Schema::four_feature().full_depth_v4(), 98);
        assert_eq!(Schema::five_feature().full_depth_v4(), 99);
    }
}
