//! Monitor location — the *site* extension feature.
//!
//! The distributed system of the paper tags summaries with the monitor
//! (site) that produced them. Sites form a shallow hierarchy:
//! a concrete site belongs to a *region* (site group), which generalizes
//! to the wildcard. Regions let queries such as "all sites of ISP X"
//! aggregate along the hierarchy instead of enumerating sites.

use crate::ParseError;
use core::fmt;
use core::str::FromStr;

/// Number of sites per region in the canonical site numbering.
pub const SITES_PER_REGION: u16 = 256;

/// A monitor location: wildcard, a region of sites, or a concrete site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Site {
    /// All sites (the hierarchy root).
    #[default]
    Any,
    /// A region: all sites `region * SITES_PER_REGION ..` of that region.
    Region(u8),
    /// A concrete site id.
    Is(u16),
}

impl Site {
    /// The region a concrete site belongs to.
    #[inline]
    pub fn region_of(site: u16) -> u8 {
        (site / SITES_PER_REGION) as u8
    }

    /// Depth in the hierarchy (0 = wildcard, 1 = region, 2 = site).
    #[inline]
    pub fn depth(&self) -> u16 {
        match self {
            Site::Any => 0,
            Site::Region(_) => 1,
            Site::Is(_) => 2,
        }
    }

    /// One generalization step; `None` at the wildcard.
    #[inline]
    pub fn generalize(&self) -> Option<Site> {
        match self {
            Site::Any => None,
            Site::Region(_) => Some(Site::Any),
            Site::Is(s) => Some(Site::Region(Self::region_of(*s))),
        }
    }

    /// The ancestor at depth `depth`; `None` if deeper than `self`.
    pub fn ancestor_at(&self, depth: u16) -> Option<Site> {
        if depth > self.depth() {
            return None;
        }
        let mut cur = *self;
        while cur.depth() > depth {
            cur = cur.generalize().expect("depth > 0 has a parent");
        }
        Some(cur)
    }

    /// Whether `other` is equal or more specific.
    pub fn contains(&self, other: &Site) -> bool {
        match (self, other) {
            (Site::Any, _) => true,
            (Site::Region(r), Site::Region(o)) => r == o,
            (Site::Region(r), Site::Is(s)) => *r == Self::region_of(*s),
            (Site::Is(a), Site::Is(b)) => a == b,
            _ => false,
        }
    }

    /// Whether the two features share a concrete site.
    #[inline]
    pub fn overlaps(&self, other: &Site) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// Lattice join.
    pub fn join(&self, other: &Site) -> Site {
        if self == other {
            return *self;
        }
        if self.contains(other) {
            return *self;
        }
        if other.contains(self) {
            return *other;
        }
        match (self, other) {
            (Site::Is(a), Site::Is(b)) if Self::region_of(*a) == Self::region_of(*b) => {
                Site::Region(Self::region_of(*a))
            }
            _ => Site::Any,
        }
    }

    /// Lattice meet; `None` if disjoint.
    pub fn meet(&self, other: &Site) -> Option<Site> {
        if self.contains(other) {
            Some(*other)
        } else if other.contains(self) {
            Some(*self)
        } else {
            None
        }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Site::Any => f.write_str("*"),
            Site::Region(r) => write!(f, "r{r}"),
            Site::Is(s) => write!(f, "{s}"),
        }
    }
}

impl FromStr for Site {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ParseError::BadSite(s.to_string());
        if s == "*" {
            return Ok(Site::Any);
        }
        if let Some(r) = s.strip_prefix('r') {
            return r.parse::<u8>().map(Site::Region).map_err(|_| bad());
        }
        s.parse::<u16>().map(Site::Is).map_err(|_| bad())
    }
}

impl From<u16> for Site {
    fn from(s: u16) -> Self {
        Site::Is(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_level_hierarchy() {
        let s = Site::Is(300);
        assert_eq!(s.depth(), 2);
        let r = s.generalize().unwrap();
        assert_eq!(r, Site::Region(1));
        assert_eq!(r.generalize(), Some(Site::Any));
        assert_eq!(Site::Any.generalize(), None);
    }

    #[test]
    fn containment() {
        assert!(Site::Any.contains(&Site::Is(7)));
        assert!(Site::Region(0).contains(&Site::Is(7)));
        assert!(!Site::Region(1).contains(&Site::Is(7)));
        assert!(!Site::Is(7).contains(&Site::Region(0)));
    }

    #[test]
    fn join_meet() {
        assert_eq!(Site::Is(1).join(&Site::Is(2)), Site::Region(0));
        assert_eq!(Site::Is(1).join(&Site::Is(300)), Site::Any);
        assert_eq!(Site::Region(0).meet(&Site::Is(3)), Some(Site::Is(3)));
        assert_eq!(Site::Is(1).meet(&Site::Is(2)), None);
    }

    #[test]
    fn ancestor_at_depth() {
        let s = Site::Is(515);
        assert_eq!(s.ancestor_at(0), Some(Site::Any));
        assert_eq!(s.ancestor_at(1), Some(Site::Region(2)));
        assert_eq!(s.ancestor_at(2), Some(s));
        assert_eq!(s.ancestor_at(3), None);
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["*", "r3", "42"] {
            let v: Site = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!("r999".parse::<Site>().is_err());
        assert!("-1".parse::<Site>().is_err());
    }
}
