//! Dyadic time buckets — the *time* extension feature.
//!
//! The paper's future-work system extends flows with a time feature so
//! that summaries can be merged and drilled into across time. We use the
//! natural dyadic hierarchy over Unix seconds: a bucket at level `l`
//! covers `2^l` seconds starting at a multiple of `2^l`. Level
//! [`TimeBucket::MAX_LEVEL`] (= 36, ≈ 2 177 years) is the wildcard
//! covering all of time, which keeps depths bounded for the
//! generalization schedule.

use crate::ParseError;
use core::fmt;
use core::str::FromStr;

/// A dyadic bucket of Unix time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimeBucket {
    /// Start of the bucket in Unix seconds (multiple of `1 << level`).
    start: u64,
    /// Log2 of the bucket span in seconds; `MAX_LEVEL` = all time.
    level: u8,
}

impl TimeBucket {
    /// Level of the wildcard bucket (`2^36` s ≈ 2 177 years, covers any
    /// realistic capture timestamp).
    pub const MAX_LEVEL: u8 = 36;

    /// The wildcard bucket covering all of time.
    pub const ANY: TimeBucket = TimeBucket {
        start: 0,
        level: Self::MAX_LEVEL,
    };

    /// Bucket of `2^level` seconds containing `unix_sec`.
    ///
    /// Returns `None` if `level > MAX_LEVEL` or the timestamp does not
    /// fit below the wildcard span.
    pub fn new(unix_sec: u64, level: u8) -> Option<TimeBucket> {
        if level > Self::MAX_LEVEL || (level < Self::MAX_LEVEL && unix_sec >> Self::MAX_LEVEL != 0)
        {
            return None;
        }
        if level == Self::MAX_LEVEL {
            return Some(Self::ANY);
        }
        Some(TimeBucket {
            start: unix_sec >> level << level,
            level,
        })
    }

    /// One-second bucket containing `unix_sec`.
    pub fn second(unix_sec: u64) -> Option<TimeBucket> {
        Self::new(unix_sec, 0)
    }

    /// Start of the bucket in Unix seconds.
    #[inline]
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Span of the bucket in seconds.
    #[inline]
    pub fn span(&self) -> u64 {
        1u64 << self.level
    }

    /// Exclusive end of the bucket.
    #[inline]
    pub fn end(&self) -> u64 {
        self.start + self.span()
    }

    /// The dyadic level (log2 of the span).
    #[inline]
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Whether this is the wildcard.
    #[inline]
    pub fn is_any(&self) -> bool {
        self.level == Self::MAX_LEVEL
    }

    /// Depth in the hierarchy (0 = wildcard, `MAX_LEVEL` = one second).
    #[inline]
    pub fn depth(&self) -> u16 {
        (Self::MAX_LEVEL - self.level) as u16
    }

    /// One generalization step (double the span); `None` at the wildcard.
    pub fn generalize(&self) -> Option<TimeBucket> {
        if self.is_any() {
            None
        } else {
            TimeBucket::new(self.start, self.level + 1)
        }
    }

    /// The ancestor at hierarchy depth `depth`; `None` if deeper than `self`.
    pub fn ancestor_at(&self, depth: u16) -> Option<TimeBucket> {
        if depth > self.depth() {
            return None;
        }
        TimeBucket::new(self.start, Self::MAX_LEVEL - depth as u8)
    }

    /// Whether `other` is equal or more specific.
    #[inline]
    pub fn contains(&self, other: &TimeBucket) -> bool {
        self.level >= other.level && (other.start >> self.level) << self.level == self.start
    }

    /// Whether the buckets share any instant (dyadic ⇒ nested or disjoint).
    #[inline]
    pub fn overlaps(&self, other: &TimeBucket) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// The smallest bucket containing both (lattice join).
    pub fn join(&self, other: &TimeBucket) -> TimeBucket {
        let mut level = self.level.max(other.level);
        while level < Self::MAX_LEVEL && (self.start >> level) != (other.start >> level) {
            level += 1;
        }
        TimeBucket::new(self.start, level).unwrap_or(Self::ANY)
    }

    /// Lattice meet; `None` if disjoint.
    pub fn meet(&self, other: &TimeBucket) -> Option<TimeBucket> {
        if self.contains(other) {
            Some(*other)
        } else if other.contains(self) {
            Some(*self)
        } else {
            None
        }
    }
}

impl Default for TimeBucket {
    fn default() -> Self {
        TimeBucket::ANY
    }
}

impl fmt::Display for TimeBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_any() {
            f.write_str("*")
        } else {
            write!(f, "{}+{}s", self.start, self.span())
        }
    }
}

impl FromStr for TimeBucket {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || ParseError::BadTime(s.to_string());
        if s == "*" {
            return Ok(TimeBucket::ANY);
        }
        let (start, rest) = s.split_once('+').ok_or_else(bad)?;
        let span = rest.strip_suffix('s').ok_or_else(bad)?;
        let start: u64 = start.parse().map_err(|_| bad())?;
        let span: u64 = span.parse().map_err(|_| bad())?;
        if !span.is_power_of_two() {
            return Err(bad());
        }
        let level = span.trailing_zeros() as u8;
        let b = TimeBucket::new(start, level).ok_or_else(bad)?;
        if b.start() != start {
            return Err(bad()); // misaligned start
        }
        Ok(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_alignment() {
        let b = TimeBucket::new(1_000_003, 8).unwrap();
        assert_eq!(b.start() % 256, 0);
        assert!(b.start() <= 1_000_003 && 1_000_003 < b.end());
        assert_eq!(b.span(), 256);
    }

    #[test]
    fn generalize_doubles_span() {
        let b = TimeBucket::second(1_500_000_000).unwrap();
        let p = b.generalize().unwrap();
        assert_eq!(p.span(), 2);
        assert!(p.contains(&b));
        assert_eq!(p.depth() + 1, b.depth());
    }

    #[test]
    fn chain_reaches_wildcard() {
        let mut b = TimeBucket::second(1_234_567_890).unwrap();
        let mut steps = 0;
        while let Some(up) = b.generalize() {
            assert!(up.contains(&b));
            b = up;
            steps += 1;
        }
        assert_eq!(steps, TimeBucket::MAX_LEVEL as u32);
        assert!(b.is_any());
    }

    #[test]
    fn join_and_meet() {
        let a = TimeBucket::second(100).unwrap();
        let b = TimeBucket::second(101).unwrap();
        let j = a.join(&b);
        assert!(j.contains(&a) && j.contains(&b));
        assert_eq!(j.span(), 2);
        let far = TimeBucket::second(1 << 30).unwrap();
        assert!(a.join(&far).span() >= (1 << 30));
        assert_eq!(a.meet(&b), None);
        assert_eq!(j.meet(&a), Some(a));
    }

    #[test]
    fn ancestor_at_depth() {
        let b = TimeBucket::second(1_000_000).unwrap();
        assert_eq!(b.ancestor_at(0), Some(TimeBucket::ANY));
        assert_eq!(b.ancestor_at(b.depth()), Some(b));
        let mid = b.ancestor_at(b.depth() - 10).unwrap();
        assert_eq!(mid.span(), 1024);
        assert!(mid.contains(&b));
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(TimeBucket::new(0, 37).is_none());
        assert!(TimeBucket::new(1 << 40, 0).is_none());
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["*", "1024+256s", "1500000000+1s"] {
            let b: TimeBucket = s.parse().unwrap();
            assert_eq!(b.to_string(), s);
        }
        assert!("100+3s".parse::<TimeBucket>().is_err()); // non-dyadic span
        assert!("3+2s".parse::<TimeBucket>().is_err()); // misaligned
        assert!("zz".parse::<TimeBucket>().is_err());
    }
}
