//! Per-dimension key hashing with O(1) incremental updates along
//! canonical chains.
//!
//! The Flowtree hot path probes a hash index once per chain step while
//! searching the longest matching parent. Hashing a full 7-feature
//! [`FlowKey`] on every probe is the dominant per-update cost, so this
//! module decomposes the key hash by dimension:
//!
//! ```text
//! key_hash(k) = Σ_dim  dim_hash(dim, k[dim])        (wrapping add)
//! ```
//!
//! Each generalization step changes exactly one dimension, so the hash
//! of the parent is obtained from the hash of the child with two
//! single-feature hashes instead of seven:
//!
//! ```text
//! h' = h - dim_hash(d, old_feature) + dim_hash(d, new_feature)
//! ```
//!
//! [`HashedChainUp`] packages this as an iterator mirroring
//! [`Schema::chain_up`](crate::Schema::chain_up) but yielding
//! `(ancestor, key_hash(ancestor))` pairs. The per-feature hashes are
//! Fx-style multiply-rotate mixes finished with a splitmix64 avalanche,
//! salted per dimension so equal feature bit patterns in different
//! dimensions do not cancel under the additive combination.

use crate::{Dim, FlowKey, NUM_DIMS};
use core::hash::{Hash, Hasher};

/// Per-dimension salts (arbitrary odd constants, fixed forever: the
/// wire codec never persists hashes, so these can change without
/// versioning, but determinism within a build matters for sharding).
const DIM_SALT: [u64; NUM_DIMS] = [
    0x9e37_79b9_7f4a_7c15,
    0xbf58_476d_1ce4_e5b9,
    0x94d0_49bb_1331_11eb,
    0x2545_f491_4f6c_dd1d,
    0xd6e8_feb8_6659_fd93,
    0xa076_1d64_78bd_642f,
    0xe703_7ed1_a0b4_28db,
];

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// splitmix64 finalizer: full-avalanche mix of one word.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// An Fx multiply-rotate hasher seeded per dimension.
struct SaltedFx {
    state: u64,
}

impl SaltedFx {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for SaltedFx {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }
    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.mix(v as u64);
        self.mix((v >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// Hash of one dimension's feature, salted by dimension.
#[inline]
pub fn dim_hash(key: &FlowKey, dim: Dim) -> u64 {
    let mut h = SaltedFx {
        state: DIM_SALT[dim.index()],
    };
    match dim {
        Dim::SrcIp => key.src.hash(&mut h),
        Dim::DstIp => key.dst.hash(&mut h),
        Dim::SrcPort => key.sport.hash(&mut h),
        Dim::DstPort => key.dport.hash(&mut h),
        Dim::Proto => key.proto.hash(&mut h),
        Dim::Time => key.time.hash(&mut h),
        Dim::Site => key.site.hash(&mut h),
    }
    mix64(h.finish())
}

/// The decomposable whole-key hash: wrapping sum of per-dimension
/// hashes. Equal keys hash equally under every schema (inactive
/// dimensions are wildcards after canonicalization and contribute a
/// constant).
#[inline]
pub fn key_hash(key: &FlowKey) -> u64 {
    let mut h = 0u64;
    for dim in Dim::ALL {
        h = h.wrapping_add(dim_hash(key, dim));
    }
    h
}

/// Hash of one dimension's feature generalized to hierarchy depth
/// `depth` — without materializing the intermediate key. This is what
/// lets chain walkers hash a neighbouring chain position from a known
/// key hash with two single-feature hashes.
#[inline]
pub fn dim_hash_at(key: &FlowKey, dim: Dim, depth: u16) -> u64 {
    if depth >= key.dim_depth(dim) {
        return dim_hash(key, dim);
    }
    let mut h = SaltedFx {
        state: DIM_SALT[dim.index()],
    };
    match dim {
        Dim::SrcIp => key
            .src
            .ancestor_at(depth)
            .expect("depth below")
            .hash(&mut h),
        Dim::DstIp => key
            .dst
            .ancestor_at(depth)
            .expect("depth below")
            .hash(&mut h),
        Dim::SrcPort => key
            .sport
            .ancestor_at(depth)
            .expect("depth below")
            .hash(&mut h),
        Dim::DstPort => key
            .dport
            .ancestor_at(depth)
            .expect("depth below")
            .hash(&mut h),
        Dim::Proto => key
            .proto
            .ancestor_at(depth)
            .expect("depth below")
            .hash(&mut h),
        Dim::Time => key
            .time
            .ancestor_at(depth)
            .expect("depth below")
            .hash(&mut h),
        Dim::Site => key
            .site
            .ancestor_at(depth)
            .expect("depth below")
            .hash(&mut h),
    }
    mix64(h.finish())
}

/// Iterator over `(ancestor, key_hash(ancestor))` along the canonical
/// chain, maintaining the hash incrementally — each step costs two
/// single-feature hashes instead of a full-key hash.
///
/// Yields the parent first, then the grandparent, … ending with the
/// root, exactly like [`Schema::chain_up`](crate::Schema::chain_up).
#[derive(Debug, Clone)]
pub struct HashedChainUp<'a> {
    schema: &'a crate::Schema,
    profile: crate::DepthProfile,
    cur: FlowKey,
    hash: u64,
    /// Lazily-filled cache of each dimension's current feature hash
    /// (`touched` marks validity), so a step costs *one* feature hash:
    /// the outgoing feature's hash is remembered from the previous step
    /// that touched the dimension.
    dim_hashes: [u64; NUM_DIMS],
    touched: u8,
    done: bool,
}

impl<'a> HashedChainUp<'a> {
    pub(crate) fn new(schema: &'a crate::Schema, key: &FlowKey, hash: u64) -> HashedChainUp<'a> {
        debug_assert_eq!(hash, key_hash(key), "caller-provided hash is stale");
        HashedChainUp {
            schema,
            profile: crate::DepthProfile::of(key),
            cur: *key,
            hash,
            dim_hashes: [0; NUM_DIMS],
            touched: 0,
            done: false,
        }
    }
}

impl Iterator for HashedChainUp<'_> {
    type Item = (FlowKey, u64);

    fn next(&mut self) -> Option<(FlowKey, u64)> {
        if self.done {
            return None;
        }
        match self.schema.next_chain_dim(&self.profile) {
            Some(dim) => {
                let i = dim.index();
                let old = if self.touched & (1 << i) != 0 {
                    self.dim_hashes[i]
                } else {
                    dim_hash(&self.cur, dim)
                };
                self.cur = self
                    .cur
                    .generalize(dim)
                    .expect("next_dim only picks depth > 0");
                let new = dim_hash(&self.cur, dim);
                self.dim_hashes[i] = new;
                self.touched |= 1 << i;
                self.hash = self.hash.wrapping_sub(old).wrapping_add(new);
                self.profile.0[dim.index()] -= 1;
                Some((self.cur, self.hash))
            }
            None => {
                self.done = true;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn key(s: &str) -> FlowKey {
        s.parse().unwrap()
    }

    #[test]
    fn rolling_hash_matches_full_hash_along_whole_chain() {
        let schema = Schema::five_feature();
        let k = key("src=10.1.2.3/32 dst=192.0.2.9/32 sport=49152 dport=443 proto=udp");
        let walked: Vec<(FlowKey, u64)> = schema.chain_up_hashed(&k, key_hash(&k)).collect();
        let reference: Vec<FlowKey> = schema.chain_up(&k).collect();
        assert_eq!(walked.len(), reference.len());
        for ((wk, wh), rk) in walked.iter().zip(&reference) {
            assert_eq!(wk, rk, "chain keys must match the unhashed walk");
            assert_eq!(*wh, key_hash(wk), "rolling hash must equal full hash");
        }
    }

    #[test]
    fn key_hash_distinguishes_and_is_stable() {
        let a = key("src=1.1.1.0/24");
        let b = key("src=1.1.2.0/24");
        // Same bits in a different dimension must hash differently.
        let c = key("dst=1.1.1.0/24");
        assert_eq!(key_hash(&a), key_hash(&a));
        assert_ne!(key_hash(&a), key_hash(&b));
        assert_ne!(key_hash(&a), key_hash(&c));
        assert_ne!(key_hash(&a), key_hash(&FlowKey::ROOT));
    }

    #[test]
    fn host_keys_hash_distinctly() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0u32..10_000 {
            let k = key(&format!(
                "src={}.{}.{}.{}/32 dport=443",
                i >> 24,
                (i >> 16) & 255,
                (i >> 8) & 255,
                i & 255
            ));
            seen.insert(key_hash(&k));
        }
        assert_eq!(seen.len(), 10_000);
    }
}
