//! One aggregation-tier node.
//!
//! A [`Relay`] sits between site daemons (or deeper relays) and its
//! own upstream. Downstream summary frames land in an embedded
//! [`Collector`] — per-site trees from daemons, pre-aggregated
//! super-site trees from child relays — and every closed window is
//! folded into **one** upstream aggregate with the structural
//! [`FlowTree::merge_many`], re-exported as a version-2 frame whose
//! provenance header names the real sites inside
//! ([`flowdist::summary`]).
//!
//! ## Provenance discipline
//!
//! The provenance checks are what make hierarchical answers equal flat
//! ones:
//!
//! * a frame may only claim sites inside this relay's **expected
//!   coverage** (from the topology) — a mis-wired or hostile exporter
//!   cannot inject a foreign site's traffic;
//! * two different downstreams may never claim the same site — that
//!   would double-count it in every aggregate;
//! * pre-epoch (v2) aggregates are `Full` only, and all frames must
//!   agree on the window span.
//!
//! Rejected frames are counted in the [`RelayLedger`], never fatal —
//! the relay outlives hostile peers exactly as the collector does.
//!
//! ## The export scheduler
//!
//! Every accepted frame advances its window's **content epoch**; a
//! window is re-exported whenever its content moved past what was last
//! shipped. Three drain entry points share the machinery:
//!
//! * [`Relay::drain_exports_at`] — the wall-clock path: a window
//!   exports once `now` passes its end plus the configured linger, and
//!   **re-exports incrementally** on later drains if late downstream
//!   frames kept arriving (late data used to be stored but never
//!   re-shipped);
//! * [`Relay::drain_exports`] — the content-watermark path (every
//!   reporting downstream moved past the window);
//! * [`Relay::flush_exports`] — everything with unshipped content
//!   (shutdown / end of trace).
//!
//! Under [`ExportMode::Delta`] a re-export ships the structural
//! difference ([`FlowTree::diff_many`]) against the **pinned
//! re-aggregation base** — the exact merged aggregate as of the
//! previous export — as a version-3 frame declaring both epochs, so
//! the upstream composes deltas deterministically. The relay falls
//! back to a full (rebasing) frame whenever the base is gone
//! ([`Relay::drop_export_bases`], the bound of
//! [`ExportConfig::max_bases`]), the delta is non-monotone (a
//! downstream replaced a window, so masses left — merging such a delta
//! upstream could leave ghost structure a full rebuild would not), or
//! the delta failed to undercut the full frame's size. Every export —
//! full or delta — carries **per-window provenance**: the sites
//! actually folded into that window, never a lifetime union, so a
//! window missing one site no longer advertises it.

use crate::RelayError;
use flowdist::{Collector, DistError, EpochHeader, SlotPos, Summary, SummaryKind, WindowId};
use flowkey::Schema;
use flowtree_core::{Config, FlowTree};
use std::collections::{BTreeMap, BTreeSet};

/// How a relay ships a window upstream when its content advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExportMode {
    /// Re-export the window's complete aggregate every time — the
    /// reference path the delta stream is property-pinned against.
    Full,
    /// Ship the structural delta against the pinned re-aggregation
    /// base; full-frame fallback on base loss, non-monotone content,
    /// or delta-size regression.
    #[default]
    Delta,
}

/// Export-scheduler tuning of one relay.
#[derive(Debug, Clone, Copy)]
pub struct ExportConfig {
    /// Delta or full re-export (see [`ExportMode`]).
    pub mode: ExportMode,
    /// Wall-clock grace after a window's end before
    /// [`Relay::drain_exports_at`] considers it exportable — absorbs
    /// downstream skew without holding every window hostage to the
    /// slowest site.
    pub linger_ms: u64,
    /// Pinned re-aggregation bases kept at once (one per exported
    /// window under [`ExportMode::Delta`]); the oldest windows lose
    /// their base first and fall back to a full re-export if they ever
    /// change again.
    pub max_bases: usize,
    /// Cap on the **total tree nodes** across all pinned bases (like
    /// the view cache's node budget): an entry count alone lets a few
    /// huge windows pin unbounded memory. Oldest windows shed their
    /// base first. 0 = unbounded.
    pub max_base_nodes: usize,
}

impl Default for ExportConfig {
    fn default() -> ExportConfig {
        ExportConfig {
            mode: ExportMode::default(),
            linger_ms: 0,
            max_bases: 64,
            max_base_nodes: 1 << 20,
        }
    }
}

/// Construction parameters of one relay.
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// Display name (usually the topology name).
    pub name: String,
    /// The id this relay's exports carry in their `site` field.
    pub agg_site: u16,
    /// Every real site this relay is expected to cover (own tier plus
    /// everything below it in the topology).
    pub expected: Vec<u16>,
    /// Flow schema of all trees.
    pub schema: Schema,
    /// Tree budget/policies for stored and merged trees.
    pub tree: Config,
    /// Export-scheduler tuning (delta vs full, linger, base bound).
    pub export: ExportConfig,
}

/// Work counters of one relay.
#[derive(Debug, Clone, Copy, Default)]
pub struct RelayLedger {
    /// Frames accepted.
    pub frames: u64,
    /// Plain per-site frames among them.
    pub site_frames: u64,
    /// Aggregate (provenance-carrying) frames among them.
    pub agg_frames: u64,
    /// Frames rejected (malformed, coverage violations, overlaps…).
    pub rejected: u64,
    /// Upstream aggregates exported (full and delta frames).
    pub exported: u64,
    /// Encoded bytes of those exports.
    pub exported_bytes: u64,
    /// Full frames among the exports (first exports, rebases,
    /// fallbacks).
    pub full_exports: u64,
    /// Encoded bytes of the full frames.
    pub full_export_bytes: u64,
    /// Delta frames among the exports.
    pub delta_exports: u64,
    /// Encoded bytes of the delta frames.
    pub delta_export_bytes: u64,
    /// Re-exports that wanted to ship a delta but fell back to a full
    /// frame: non-monotone content or delta-size regression.
    pub delta_fallbacks: u64,
    /// Re-exports that fell back to a full frame because the pinned
    /// base was gone (dropped by [`ExportConfig::max_bases`] or
    /// [`Relay::drop_export_bases`]).
    pub base_losses: u64,
    /// Accepted frames for windows already exported upstream — under
    /// the incremental scheduler these re-export as deltas on the next
    /// drain instead of silently diverging from the upstream.
    pub late_downstream: u64,
    /// Frames the classified ingest path recognized as at-least-once
    /// replays of content this relay already holds: acknowledged at
    /// the stored position, never re-applied.
    pub replayed: u64,
    /// Deltas whose declared base was ahead of this relay's ledger —
    /// answered with a rebase-request (upstream state loss detected)
    /// instead of a silent rejection.
    pub rebase_requests: u64,
    /// Windows this relay rewound to a full rebasing re-export because
    /// a downstream peer asked ([`Relay::request_rebase`]).
    pub rebase_rewinds: u64,
    /// Upstream connection attempts by the export shipper.
    pub reconnect_attempts: u64,
    /// Failed connection attempts among them.
    pub reconnect_failures: u64,
    /// Total milliseconds the shipper backed off between attempts.
    pub backoff_ms_total: u64,
    /// Pending export frames shed by the spill queue's byte bound
    /// during an upstream outage (their windows rewound to rebase).
    pub spill_sheds: u64,
    /// Payload bytes those shed frames carried.
    pub spill_shed_bytes: u64,
}

/// How [`Relay::ingest_classified`] judged one downstream frame — and
/// therefore which control frame (if any) the serving loop answers
/// with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameOutcome {
    /// The frame applied; ack the slot's new position.
    Applied(SlotPos),
    /// An at-least-once replay of content already held: not
    /// re-applied, acked at the stored position.
    Replayed(SlotPos),
    /// A delta whose declared base is ahead of this relay's ledger;
    /// answer with a rebase-request carrying what is held
    /// (`pos.epoch`).
    NeedsRebase(SlotPos),
    /// Malformed or violating: counted, no response.
    Rejected,
}

/// How a site-set scope maps onto one relay's stored trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Compose {
    /// Stored keys whose provenance lies inside the scope (`None` =
    /// every stored key, for an all-sites scope).
    pub keys: Option<Vec<u16>>,
    /// Scope sites no composed key covers.
    pub missing: Vec<u16>,
}

/// Per-window export state: how far the content has moved, how far
/// the upstream has seen it, and the pinned re-aggregation base deltas
/// compose against.
#[derive(Debug, Default)]
struct WindowState {
    /// Bumped by every accepted frame that folds into this window.
    content_epoch: u64,
    /// The content epoch last drained for export (0 = never).
    exported_epoch: u64,
    /// The content epoch the upstream has **acknowledged applying**
    /// (0 = never, or legacy fire-and-forget upstream). The gap
    /// between this and `exported_epoch` is exactly the in-flight
    /// exposure a restart must heal
    /// ([`Relay::rewind_unacked_exports`]).
    shipped_epoch: u64,
    /// The merged aggregate exactly as of the last export, keyed by
    /// its epoch — the base the next delta is diffed against. `None`
    /// after base loss (next export rebases with a full frame).
    base: Option<(u64, FlowTree)>,
}

/// One aggregation node (see the module docs).
#[derive(Debug)]
pub struct Relay {
    cfg: RelayConfig,
    expected: BTreeSet<u16>,
    collector: Collector,
    /// Stored key → the real sites it has claimed (singleton for site
    /// frames, the provenance union for child aggregates). Lifetime
    /// bookkeeping for the overlap discipline; per-window truth lives
    /// in the collector's epoch ledger.
    provenance: BTreeMap<u16, BTreeSet<u16>>,
    /// Established window span (first accepted frame wins).
    span_ms: Option<u64>,
    /// Per-window export scheduling state.
    windows: BTreeMap<u64, WindowState>,
    /// Epoch continuity across retention: the content epoch each
    /// evicted window had reached, so a frame re-arriving after
    /// eviction continues the chain (strictly advancing past whatever
    /// the upstream holds) instead of restarting at epoch 1 and being
    /// rejected as stale forever. Bounded by
    /// [`Relay::MAX_EVICTED_EPOCHS`], oldest dropped first.
    evicted_epochs: BTreeMap<u64, u64>,
    seq: u64,
    ledger: RelayLedger,
    /// Crash-safety: when attached ([`Relay::open_journaled`]), every
    /// state-mutating operation appends to a write-ahead log that a
    /// restart replays deterministically.
    journal: Option<crate::journal::JournalWriter>,
}

impl Relay {
    /// Creates an empty relay.
    pub fn new(cfg: RelayConfig) -> Relay {
        let expected = cfg.expected.iter().copied().collect();
        let collector = Collector::new(cfg.schema, cfg.tree);
        Relay {
            expected,
            collector,
            provenance: BTreeMap::new(),
            span_ms: None,
            windows: BTreeMap::new(),
            evicted_epochs: BTreeMap::new(),
            seq: 0,
            ledger: RelayLedger::default(),
            journal: None,
            cfg,
        }
    }

    /// Evicted-window epoch-continuity entries kept (16 bytes each —
    /// tiny next to the trees retention exists to shed).
    pub const MAX_EVICTED_EPOCHS: usize = 65_536;

    /// Builds the relay at `idx` of a validated topology with the
    /// default export scheduling.
    pub fn from_topology(
        topo: &crate::RelayTopology,
        idx: usize,
        schema: Schema,
        tree: Config,
    ) -> Relay {
        Relay::from_topology_with(topo, idx, schema, tree, ExportConfig::default())
    }

    /// Builds the relay at `idx` of a validated topology with explicit
    /// export scheduling.
    pub fn from_topology_with(
        topo: &crate::RelayTopology,
        idx: usize,
        schema: Schema,
        tree: Config,
        export: ExportConfig,
    ) -> Relay {
        let spec = &topo.relays[idx];
        Relay::new(RelayConfig {
            name: spec.name.clone(),
            agg_site: spec.agg_site,
            expected: topo.coverage(idx).into_iter().collect(),
            schema,
            tree,
            export,
        })
    }

    /// The relay's name.
    pub fn name(&self) -> &str {
        &self.cfg.name
    }

    /// The id its exports carry.
    pub fn agg_site(&self) -> u16 {
        self.cfg.agg_site
    }

    /// The flow schema.
    pub fn schema(&self) -> Schema {
        self.cfg.schema
    }

    /// The tree configuration.
    pub fn tree_cfg(&self) -> Config {
        self.cfg.tree
    }

    /// Work counters.
    pub fn ledger(&self) -> &RelayLedger {
        &self.ledger
    }

    /// The established window span, once any frame was accepted.
    pub fn span_ms(&self) -> Option<u64> {
        self.span_ms
    }

    /// The embedded collector (stored windows, merged views, queries).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// The sites this relay is expected to cover.
    pub fn expected_coverage(&self) -> &BTreeSet<u16> {
        &self.expected
    }

    /// The sites actually backed by stored data: the provenance union
    /// over downstreams that have delivered at least one window. A
    /// dead downstream simply never enters this set — coverage
    /// degrades, queries keep routing.
    pub fn live_coverage(&self) -> BTreeSet<u16> {
        let stored: BTreeSet<u16> = self.collector.sites().into_iter().collect();
        self.provenance
            .iter()
            .filter(|(k, _)| stored.contains(k))
            .flat_map(|(_, sites)| sites.iter().copied())
            .collect()
    }

    /// Decodes and ingests one downstream frame; malformed or
    /// violating frames are counted and returned as errors, never
    /// fatal to the relay.
    pub fn ingest_frame(&mut self, bytes: &[u8]) -> Result<(), RelayError> {
        let summary = match Summary::decode(bytes, self.cfg.tree) {
            Ok(s) => s,
            Err(e) => {
                self.ledger.rejected += 1;
                return Err(e.into());
            }
        };
        self.apply_with_raw(summary, Some(bytes))
    }

    /// Ingests an already-decoded downstream summary.
    pub fn apply(&mut self, summary: Summary) -> Result<(), RelayError> {
        self.apply_with_raw(summary, None)
    }

    fn apply_with_raw(&mut self, summary: Summary, raw: Option<&[u8]>) -> Result<(), RelayError> {
        // Journal-after-apply: the raw frame enters the WAL only once
        // it actually applied (and, on the acked ingest path, strictly
        // before the ack goes out — a crash between apply and append
        // means no ack, the sender resends, and the replay dedupes).
        let encoded = match (&self.journal, raw) {
            (Some(_), None) => Some(summary.encode()),
            _ => None,
        };
        match self.check_and_apply(summary) {
            Ok(()) => {
                match (encoded, raw) {
                    (Some(bytes), _) => self.journal_append(crate::journal::Record::Frame(&bytes)),
                    (None, Some(bytes)) => {
                        self.journal_append(crate::journal::Record::Frame(bytes))
                    }
                    (None, None) => {}
                }
                Ok(())
            }
            Err(e) => {
                self.ledger.rejected += 1;
                Err(e)
            }
        }
    }

    /// Ingests one downstream frame on the **acknowledged** path,
    /// classifying the outcome so the serving loop can answer with the
    /// right control frame ([`flowdist::control`]):
    ///
    /// * [`FrameOutcome::Applied`] — ack the slot's new position;
    /// * [`FrameOutcome::Replayed`] — an at-least-once duplicate of
    ///   content this relay already holds (an epoch at or behind the
    ///   ledger, or a pre-epoch frame repeating its stored seq): not
    ///   re-applied, but acked at the stored position so a resending
    ///   peer converges;
    /// * [`FrameOutcome::NeedsRebase`] — a delta whose declared base
    ///   is ahead of this relay's ledger (this relay lost state:
    ///   restart, shorter retention): answer with a rebase-request
    ///   carrying what is actually held, so the sender rewinds and
    ///   re-exports a full rebasing frame;
    /// * [`FrameOutcome::Rejected`] — malformed or violating, counted,
    ///   no response (exactly the legacy behavior).
    ///
    /// Replay dedupe lives **only** here: the plain [`Relay::apply`]
    /// path keeps its replacement semantics untouched.
    pub fn ingest_classified(&mut self, bytes: &[u8]) -> FrameOutcome {
        let summary = match Summary::decode(bytes, self.cfg.tree) {
            Ok(s) => s,
            Err(_) => {
                self.ledger.rejected += 1;
                return FrameOutcome::Rejected;
            }
        };
        let (start, span, site) = (
            summary.window.start_ms,
            summary.window.span_ms,
            summary.site,
        );
        let stored = self.collector().window_tree(start, site).is_some();
        let have = self.collector().window_epoch(start, site);
        let pos = |epoch: u64| SlotPos {
            window_start_ms: start,
            span_ms: span,
            exporter: site,
            epoch,
        };
        match summary.epoch {
            Some(eh) => {
                if stored && eh.epoch <= have {
                    self.ledger.replayed += 1;
                    return FrameOutcome::Replayed(pos(have));
                }
                if summary.kind == SummaryKind::Delta && (!stored || eh.base != Some(have)) {
                    self.ledger.rebase_requests += 1;
                    return FrameOutcome::NeedsRebase(pos(have));
                }
            }
            None => {
                if stored && have == 0 && self.collector().window_seq(start, site) == summary.seq {
                    self.ledger.replayed += 1;
                    return FrameOutcome::Replayed(pos(0));
                }
            }
        }
        match self.apply_with_raw(summary, Some(bytes)) {
            Ok(()) => FrameOutcome::Applied(pos(self.collector().window_epoch(start, site))),
            Err(_) => FrameOutcome::Rejected,
        }
    }

    fn check_and_apply(&mut self, summary: Summary) -> Result<(), RelayError> {
        // Pre-epoch (v2) aggregates must be full; a v3 frame may be a
        // delta — the collector's epoch ledger gates its application.
        if summary.provenance.is_some()
            && summary.kind != SummaryKind::Full
            && summary.epoch.is_none()
        {
            return Err(DistError::BadFrame("aggregate summaries must be full").into());
        }
        if let Some(span) = self.span_ms {
            if summary.window.span_ms != span {
                return Err(RelayError::SpanMismatch);
            }
        }
        let key = summary.site;
        let claimed: BTreeSet<u16> = summary.covered_sites().into_iter().collect();
        for &site in &claimed {
            if !self.expected.contains(&site) {
                return Err(RelayError::CoverageViolation { site });
            }
            if let Some((_, other)) = self
                .provenance
                .iter()
                .find(|(k, sites)| **k != key && sites.contains(&site))
            {
                debug_assert!(other.contains(&site));
                return Err(RelayError::OverlappingProvenance { site });
            }
        }
        let is_agg = summary.provenance.is_some();
        let window = summary.window;
        self.collector.apply(summary).map_err(RelayError::Dist)?;
        self.span_ms.get_or_insert(window.span_ms);
        self.provenance.entry(key).or_default().extend(claimed);
        self.ledger.frames += 1;
        if is_agg {
            self.ledger.agg_frames += 1;
        } else {
            self.ledger.site_frames += 1;
        }
        let st = self.windows.entry(window.start_ms).or_insert_with(|| {
            // A window re-arriving after eviction resumes its epoch
            // chain where it left off: the next export must strictly
            // advance past whatever the upstream still holds.
            let resumed = self.evicted_epochs.remove(&window.start_ms).unwrap_or(0);
            WindowState {
                content_epoch: resumed,
                exported_epoch: resumed,
                shipped_epoch: resumed,
                base: None,
            }
        });
        st.content_epoch += 1;
        if st.exported_epoch > 0 {
            self.ledger.late_downstream += 1;
        }
        Ok(())
    }

    /// Maps a site-set scope onto stored keys: every stored key whose
    /// claimed sites lie inside the scope composes it; scope sites no
    /// such key claims are reported missing. `None` = all sites (the
    /// relay's full stored set).
    pub fn compose(&self, wanted: Option<&[u16]>) -> Compose {
        match wanted {
            None => {
                let live = self.live_coverage();
                Compose {
                    keys: None,
                    missing: self.expected.difference(&live).copied().collect(),
                }
            }
            Some(sites) => {
                let scope: BTreeSet<u16> = sites.iter().copied().collect();
                let stored: BTreeSet<u16> = self.collector.sites().into_iter().collect();
                let mut keys = Vec::new();
                let mut covered: BTreeSet<u16> = BTreeSet::new();
                for (key, claimed) in &self.provenance {
                    if stored.contains(key) && claimed.is_subset(&scope) {
                        keys.push(*key);
                        covered.extend(claimed.iter().copied());
                    }
                }
                Compose {
                    keys: Some(keys),
                    missing: scope.difference(&covered).copied().collect(),
                }
            }
        }
    }

    /// Exports every complete window with unshipped content: a window
    /// is complete once **every** reporting downstream has moved past
    /// it (the minimum over stored keys of their newest window). A
    /// downstream that never reported does not hold the watermark
    /// back; a window that gained late frames after a previous export
    /// **re-exports incrementally**. Use [`Relay::flush_exports`] at
    /// end of stream.
    pub fn drain_exports(&mut self) -> Vec<Summary> {
        let mut newest_per_key: BTreeMap<u16, u64> = BTreeMap::new();
        for (start, key) in self.collector.window_keys() {
            let e = newest_per_key.entry(key).or_insert(start);
            *e = (*e).max(start);
        }
        let Some(&watermark) = newest_per_key.values().min() else {
            return Vec::new();
        };
        self.export_ready(|start, _span| start < watermark)
    }

    /// The wall-clock export scheduler: exports every window whose end
    /// lies at least [`ExportConfig::linger_ms`] behind `now_ms` and
    /// whose content advanced since the last export — so a window that
    /// keeps receiving late downstream frames keeps re-exporting
    /// (incrementally, under [`ExportMode::Delta`]) instead of
    /// silently diverging from the upstream.
    pub fn drain_exports_at(&mut self, now_ms: u64) -> Vec<Summary> {
        let linger = self.cfg.export.linger_ms;
        self.export_ready(|start, span| start.saturating_add(span).saturating_add(linger) <= now_ms)
    }

    /// Exports every window with unshipped content, regardless of
    /// watermarks (end of trace / shutdown).
    pub fn flush_exports(&mut self) -> Vec<Summary> {
        self.export_ready(|_, _| true)
    }

    /// Drops every pinned re-aggregation base (simulating a restart or
    /// memory-pressure shedding). Windows that change afterwards fall
    /// back to a full rebasing export — the stream stays correct, it
    /// just pays full-frame bytes once per affected window.
    pub fn drop_export_bases(&mut self) {
        for st in self.windows.values_mut() {
            st.base = None;
        }
        self.journal_append(crate::journal::Record::DropBases);
    }

    /// Retention: drops every stored window (collector trees, epoch
    /// ledger, export state, pinned bases) starting before
    /// `cutoff_ms`. Without this a long-running relay accumulates one
    /// [`WindowState`] per window forever. Returns how many collector
    /// windows were evicted.
    ///
    /// Epoch **continuity** survives eviction (a bounded map of
    /// evicted windows' content epochs): a frame re-arriving later
    /// resumes the chain and re-exports strictly past whatever the
    /// upstream holds — restarting at epoch 1 would be rejected as
    /// stale forever. The re-export carries only the re-arrived
    /// content (the evicted trees are gone); an upstream with longer
    /// retention is replaced wholesale — the relay is authoritative
    /// for its subtree.
    pub fn evict_windows_before(&mut self, cutoff_ms: u64) -> usize {
        let keep = self.windows.split_off(&cutoff_ms);
        for (start, st) in std::mem::replace(&mut self.windows, keep) {
            self.evicted_epochs.insert(start, st.content_epoch);
        }
        while self.evicted_epochs.len() > Self::MAX_EVICTED_EPOCHS {
            self.evicted_epochs.pop_first();
        }
        let dropped = self.collector.evict_windows_before(cutoff_ms);
        self.journal_append(crate::journal::Record::Evict(cutoff_ms));
        dropped
    }

    /// Tells the relay that previously drained exports for a window
    /// were **lost in transit** (a shipper shedding its pending buffer
    /// calls this): the window's export state rewinds so its next
    /// drain re-exports the whole aggregate as a full rebasing frame —
    /// strictly advancing past anything the upstream received, so the
    /// chain heals instead of forking.
    pub fn mark_unshipped(&mut self, window_start_ms: u64) {
        if let Some(st) = self.windows.get_mut(&window_start_ms) {
            st.exported_epoch = 0;
            st.base = None;
            self.journal_append(crate::journal::Record::MarkUnshipped(window_start_ms));
        }
    }

    /// A downstream peer sent a rebase-request for this window: its
    /// epoch ledger is behind our export chain (it restarted, or its
    /// retention is shorter). Rewind the window so the next drain
    /// re-exports a full rebasing frame — the chain heals instead of
    /// orphaning deltas. Returns whether the window was known;
    /// requests for unknown windows (hostile, or evicted here too) are
    /// ignored.
    pub fn request_rebase(&mut self, window_start_ms: u64) -> bool {
        if self.windows.contains_key(&window_start_ms) {
            self.ledger.rebase_rewinds += 1;
            self.mark_unshipped(window_start_ms);
            true
        } else {
            false
        }
    }

    /// Records that the upstream **acknowledged applying** this
    /// window at `epoch` (from an ack control frame). The gap between
    /// a window's drained and acknowledged epochs is exactly what
    /// [`Relay::rewind_unacked_exports`] heals after a restart.
    pub fn note_shipped(&mut self, window_start_ms: u64, epoch: u64) {
        if let Some(st) = self.windows.get_mut(&window_start_ms) {
            st.shipped_epoch = st.shipped_epoch.max(epoch);
            self.journal_append(crate::journal::Record::Shipped {
                start: window_start_ms,
                epoch,
            });
        }
    }

    /// Rewinds every window whose drained exports were never
    /// acknowledged, so the next drain re-exports it as a full
    /// rebasing frame. **Opt-in at restart, and only when an upstream
    /// exists**: an acking upstream dedupes the replays idempotently,
    /// but a relay whose exports are consumed directly (a root) must
    /// not rewind — it would re-emit frames nobody deduplicates.
    /// Returns how many windows rewound.
    pub fn rewind_unacked_exports(&mut self) -> usize {
        let starts: Vec<u64> = self
            .windows
            .iter()
            .filter(|(_, st)| st.exported_epoch > st.shipped_epoch)
            .map(|(start, _)| *start)
            .collect();
        for &start in &starts {
            self.mark_unshipped(start);
        }
        starts.len()
    }

    /// Feeds the export shipper's reconnect bookkeeping into the
    /// ledger: one attempt, whether it failed, and how long the
    /// shipper backed off before it.
    pub fn note_reconnect(&mut self, ok: bool, backoff_ms: u64) {
        self.ledger.reconnect_attempts += 1;
        if !ok {
            self.ledger.reconnect_failures += 1;
        }
        self.ledger.backoff_ms_total += backoff_ms;
    }

    /// Feeds a spill-bound shed into the ledger: `frames` pending
    /// exports (carrying `bytes` payload bytes) were dropped by the
    /// spill queue's byte bound and their windows rewound to rebase.
    /// Surfaced so operators can *see* accounted loss — before this,
    /// sheds were counted only inside the spill queue.
    pub fn note_spill_shed(&mut self, frames: u64, bytes: u64) {
        self.ledger.spill_sheds += frames;
        self.ledger.spill_shed_bytes += bytes;
    }

    /// Applies a live export-scheduler reconfiguration (mode, linger,
    /// base bounds) without a restart. Takes effect on the next drain:
    /// already-pinned bases stay valid under either mode, and a window
    /// exported full under the old config simply continues its epoch
    /// chain under the new one. The config is *not* journaled — a
    /// restarted node boots with whatever its spec then says, which is
    /// exactly the reload-source-of-truth an operator expects.
    pub fn set_export_config(&mut self, export: ExportConfig) {
        self.cfg.export = export;
    }

    /// The shared drain: every window `ready` admits whose content
    /// epoch moved past its exported epoch ships one frame, oldest
    /// window first.
    fn export_ready<F: Fn(u64, u64) -> bool>(&mut self, ready: F) -> Vec<Summary> {
        let Some(span) = self.span_ms else {
            return Vec::new();
        };
        let due: Vec<u64> = self
            .windows
            .iter()
            .filter(|(start, st)| st.content_epoch > st.exported_epoch && ready(**start, span))
            .map(|(start, _)| *start)
            .collect();
        let mut out = Vec::with_capacity(due.len());
        for &start in &due {
            out.push(self.export_window(start, span));
        }
        self.trim_bases();
        if !due.is_empty() {
            self.journal_append(crate::journal::Record::ExportBatch(&due));
        }
        out
    }

    /// WAL replay of one recorded export batch: re-runs the export
    /// state transitions (epoch advance, base pinning, seq, ledger)
    /// deterministically and discards the produced frames — they were
    /// already handed to the shipper before the crash, and anything
    /// that never made it out is healed by the ack/rewind machinery.
    pub(crate) fn replay_export_batch(&mut self, starts: &[u64]) {
        let Some(span) = self.span_ms else {
            return;
        };
        for &start in starts {
            if self.windows.contains_key(&start) {
                let _ = self.export_window(start, span);
            }
        }
        self.trim_bases();
    }

    /// Builds one export frame for a window and advances its export
    /// state: a delta against the pinned base when the mode, the
    /// base's presence, monotone content, and the encoded size all
    /// agree — a full (rebasing) frame otherwise.
    fn export_window(&mut self, start: u64, span: u64) -> Summary {
        let current = self.collector.merged(None, start, start + span);
        let provenance: Vec<u16> = self.collector.window_coverage(start).into_iter().collect();
        debug_assert!(!provenance.is_empty(), "exportable windows have content");
        let delta_mode = self.cfg.export.mode == ExportMode::Delta;
        let st = self.windows.get_mut(&start).expect("scheduled window");
        let epoch = st.content_epoch;

        let mut delta_frame: Option<(FlowTree, u64)> = None;
        if delta_mode && st.exported_epoch > 0 {
            match st.base.take() {
                Some((base_epoch, base_tree)) => {
                    let mut delta = current.clone();
                    delta
                        .diff_many(&[&base_tree])
                        .expect("one relay, one schema");
                    if !is_monotone(&delta) || delta.encoded_size() >= current.encoded_size() {
                        // Masses left the window (a downstream
                        // replaced it) or the delta failed to undercut
                        // the full frame: rebase.
                        self.ledger.delta_fallbacks += 1;
                    } else {
                        delta_frame = Some((delta, base_epoch));
                    }
                }
                None => {
                    self.ledger.base_losses += 1;
                }
            }
        }
        st.exported_epoch = epoch;
        // Pin the new base without paying an avoidable full-tree copy
        // on the steady-state delta path: when the delta ships,
        // `current` moves into the pin; only a full frame (which ships
        // `current` itself) needs the clone.
        let (kind, tree, base) = match delta_frame {
            Some((delta, base_epoch)) => {
                if delta_mode {
                    st.base = Some((epoch, current));
                }
                (SummaryKind::Delta, delta, Some(base_epoch))
            }
            None => {
                if delta_mode {
                    st.base = Some((epoch, current.clone()));
                }
                (SummaryKind::Full, current, None)
            }
        };
        self.seq += 1;
        let summary = Summary {
            site: self.cfg.agg_site,
            window: WindowId {
                start_ms: start,
                span_ms: span,
            },
            seq: self.seq,
            kind,
            provenance: Some(provenance),
            epoch: Some(EpochHeader { epoch, base }),
            tree,
        };
        // Arithmetic size: the caller encodes once to ship; the ledger
        // must not pay a second full serialization.
        let bytes = summary.encoded_size() as u64;
        self.ledger.exported += 1;
        self.ledger.exported_bytes += bytes;
        match kind {
            SummaryKind::Full => {
                self.ledger.full_exports += 1;
                self.ledger.full_export_bytes += bytes;
            }
            SummaryKind::Delta => {
                self.ledger.delta_exports += 1;
                self.ledger.delta_export_bytes += bytes;
            }
        }
        summary
    }

    /// Bounds the pinned bases two ways — entry count
    /// ([`ExportConfig::max_bases`]) and total tree nodes
    /// ([`ExportConfig::max_base_nodes`]) — shedding the oldest
    /// windows' bases first until both hold.
    fn trim_bases(&mut self) {
        let max = self.cfg.export.max_bases;
        let max_nodes = self.cfg.export.max_base_nodes;
        let mut pinned = 0usize;
        let mut nodes = 0usize;
        for st in self.windows.values() {
            if let Some((_, tree)) = &st.base {
                pinned += 1;
                nodes += tree.len();
            }
        }
        let over =
            |pinned: usize, nodes: usize| pinned > max || (max_nodes != 0 && nodes > max_nodes);
        if !over(pinned, nodes) {
            return;
        }
        for st in self.windows.values_mut() {
            if !over(pinned, nodes) {
                break;
            }
            if let Some((_, tree)) = st.base.take() {
                pinned -= 1;
                nodes -= tree.len();
            }
        }
    }

    /// The export-scheduler configuration.
    pub fn export_config(&self) -> &ExportConfig {
        &self.cfg.export
    }

    /// The real sites actually folded into one window — per-window
    /// truth from the embedded collector's epoch ledger, never a
    /// lifetime union. A site that reported other windows but not this
    /// one is absent here (and from this window's export provenance).
    pub fn window_coverage(&self, window_start_ms: u64) -> BTreeSet<u16> {
        self.collector.window_coverage(window_start_ms)
    }

    /// The merged view of a composed scope (delegates to the embedded
    /// collector's cached-view layer).
    pub fn merged_view(
        &self,
        keys: Option<&[u16]>,
        from_ms: u64,
        to_ms: u64,
    ) -> std::sync::Arc<FlowTree> {
        self.collector.merged_view(keys, from_ms, to_ms)
    }

    /// If the attached journal hit an unrecoverable I/O error, what it
    /// was. The relay keeps serving (availability over durability) but
    /// crash-safety is void until the operator intervenes.
    pub fn journal_error(&self) -> Option<&str> {
        self.journal.as_ref().and_then(|j| j.error())
    }

    /// Windows the export scheduler currently tracks (retention has
    /// not evicted them).
    pub fn stored_window_count(&self) -> usize {
        self.windows.len()
    }

    /// The export watermark lag at `now_ms`: how far behind wall time
    /// the oldest window with *unexported* content is, measured from
    /// that window's end. 0 = every stored window's content has been
    /// drained for export (the node is keeping up), or nothing is
    /// stored. A lag that only grows across scrapes is the fleet-level
    /// signal that an upstream outage (or a stuck scheduler) is
    /// pinning windows.
    pub fn export_watermark_lag_ms(&self, now_ms: u64) -> u64 {
        let span = self.span_ms.unwrap_or(0);
        self.windows
            .iter()
            .find(|(_, st)| st.content_epoch > st.exported_epoch)
            .map(|(start, _)| now_ms.saturating_sub(start.saturating_add(span)))
            .unwrap_or(0)
    }

    fn journal_append(&mut self, rec: crate::journal::Record<'_>) {
        let wants_compact = match self.journal.as_mut() {
            Some(j) => {
                j.append(rec);
                j.wants_compact()
            }
            None => false,
        };
        if wants_compact {
            crate::journal::compact(self);
        }
    }

    pub(crate) fn journal_mut(&mut self) -> &mut Option<crate::journal::JournalWriter> {
        &mut self.journal
    }

    pub(crate) fn collector_mut(&mut self) -> &mut Collector {
        &mut self.collector
    }

    /// Everything beyond the collector's stored slots that a snapshot
    /// must carry to restore this relay exactly.
    pub(crate) fn snapshot_state(&self) -> RelayState {
        RelayState {
            span_ms: self.span_ms,
            seq: self.seq,
            provenance: self
                .provenance
                .iter()
                .map(|(k, v)| (*k, v.iter().copied().collect()))
                .collect(),
            windows: self
                .windows
                .iter()
                .map(|(start, st)| {
                    (
                        *start,
                        st.content_epoch,
                        st.exported_epoch,
                        st.shipped_epoch,
                    )
                })
                .collect(),
            evicted: self.evicted_epochs.iter().map(|(k, v)| (*k, *v)).collect(),
            positions: self.collector.positions(),
            ledger: self.ledger,
        }
    }

    /// Restores the snapshot half of recovery (the collector's slots
    /// are re-applied separately). Pinned bases are deliberately not
    /// persisted: the first post-restart change of an affected window
    /// pays one full rebasing frame and the chain continues.
    pub(crate) fn restore_state(&mut self, s: RelayState) {
        self.span_ms = s.span_ms;
        self.seq = s.seq;
        self.provenance = s
            .provenance
            .into_iter()
            .map(|(k, v)| (k, v.into_iter().collect()))
            .collect();
        self.windows = s
            .windows
            .into_iter()
            .map(|(start, content, exported, shipped)| {
                (
                    start,
                    WindowState {
                        content_epoch: content,
                        exported_epoch: exported,
                        shipped_epoch: shipped,
                        base: None,
                    },
                )
            })
            .collect();
        self.evicted_epochs = s.evicted.into_iter().collect();
        for (site, start, seq) in s.positions {
            self.collector.restore_position(site, start, seq);
        }
        self.ledger = s.ledger;
    }
}

/// The relay-side state a journal snapshot serializes (see
/// [`Relay::snapshot_state`]).
pub(crate) struct RelayState {
    pub(crate) span_ms: Option<u64>,
    pub(crate) seq: u64,
    pub(crate) provenance: Vec<(u16, Vec<u16>)>,
    /// (start, content_epoch, exported_epoch, shipped_epoch).
    pub(crate) windows: Vec<(u64, u64, u64, u64)>,
    pub(crate) evicted: Vec<(u64, u64)>,
    /// Collector delta-chain positions: (site, window start, seq).
    pub(crate) positions: Vec<(u16, u64, u64)>,
    pub(crate) ledger: RelayLedger,
}

/// Whether every node mass of a diff tree is non-negative — i.e. the
/// window's content only grew since the base. A delta with negative
/// masses means a downstream replaced or shrank a window; shipping it
/// could leave ghost structure upstream that a full rebuild would not
/// materialize, so the exporter rebases instead.
fn is_monotone(delta: &FlowTree) -> bool {
    delta
        .iter()
        .all(|v| v.comp.packets >= 0 && v.comp.bytes >= 0 && v.comp.flows >= 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkey::FlowKey;
    use flowtree_core::Popularity;

    const SPAN: u64 = 1_000;

    fn site_summary(site: u16, window: u64, hosts: std::ops::Range<u8>, seq: u64) -> Summary {
        let schema = Schema::five_feature();
        let mut tree = FlowTree::new(schema, Config::with_budget(4_096));
        for h in hosts {
            let key: FlowKey =
                format!("src=10.{site}.0.{h}/32 dst=192.0.2.1/32 sport=40000 dport=443 proto=tcp")
                    .parse()
                    .unwrap();
            tree.insert(&key, Popularity::new(1 + h as i64, 100, 1));
        }
        Summary {
            site,
            window: WindowId {
                start_ms: window * SPAN,
                span_ms: SPAN,
            },
            seq,
            kind: SummaryKind::Full,
            provenance: None,
            epoch: None,
            tree,
        }
    }

    fn relay(name: &str, agg: u16, expected: &[u16]) -> Relay {
        relay_with(name, agg, expected, ExportConfig::default())
    }

    fn relay_with(name: &str, agg: u16, expected: &[u16], export: ExportConfig) -> Relay {
        Relay::new(RelayConfig {
            name: name.into(),
            agg_site: agg,
            expected: expected.to_vec(),
            schema: Schema::five_feature(),
            tree: Config::with_budget(100_000),
            export,
        })
    }

    #[test]
    fn aggregates_carry_provenance_and_match_local_merge() {
        let mut r = relay("a", 100, &[0, 1, 2]);
        for w in 0..3u64 {
            for s in 0..3u16 {
                r.apply(site_summary(s, w, 0..4, w + 1)).unwrap();
            }
        }
        // Watermark: every key reached window 2 → windows 0 and 1 export.
        let exports = r.drain_exports();
        assert_eq!(exports.len(), 2);
        for (i, e) in exports.iter().enumerate() {
            assert_eq!(e.site, 100);
            assert_eq!(e.window.start_ms, i as u64 * SPAN);
            assert_eq!(e.provenance.as_deref(), Some(&[0u16, 1, 2][..]));
            let local = r
                .collector()
                .merged(None, e.window.start_ms, e.window.end_ms());
            assert_eq!(e.tree.encode(), local.encode());
        }
        // Nothing re-exports; the last window flushes at shutdown.
        assert!(r.drain_exports().is_empty());
        let rest = r.flush_exports();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].window.start_ms, 2 * SPAN);
        assert_eq!(r.ledger().exported, 3);
        // The ledger's arithmetic byte accounting equals the real
        // frame sizes.
        let wire: u64 = exports
            .iter()
            .chain(rest.iter())
            .map(|e| e.encode().len() as u64)
            .sum();
        assert_eq!(r.ledger().exported_bytes, wire);
    }

    #[test]
    fn dead_downstream_degrades_coverage_not_exports() {
        let mut r = relay("a", 100, &[0, 1, 2]);
        // Site 2 never reports.
        for w in 0..2u64 {
            for s in 0..2u16 {
                r.apply(site_summary(s, w, 0..2, w + 1)).unwrap();
            }
        }
        assert_eq!(
            r.live_coverage(),
            [0u16, 1].into_iter().collect::<BTreeSet<_>>()
        );
        let exports = r.flush_exports();
        assert_eq!(exports.len(), 2);
        assert_eq!(exports[0].provenance.as_deref(), Some(&[0u16, 1][..]));
        let c = r.compose(None);
        assert_eq!(c.missing, vec![2]);
    }

    #[test]
    fn coverage_and_overlap_violations_are_rejected_and_counted() {
        let mut r = relay("a", 100, &[0, 1]);
        // Site outside coverage.
        let err = r.apply(site_summary(7, 0, 0..2, 1));
        assert!(matches!(
            err,
            Err(RelayError::CoverageViolation { site: 7 })
        ));
        // A child aggregate claiming site 0…
        let mut agg = site_summary(50, 0, 0..2, 1);
        agg.site = 50;
        agg.provenance = Some(vec![0]);
        // …but 50 is outside expected coverage? Use agg id inside none —
        // coverage checks claimed sites, not the carrier id.
        r.apply(agg).unwrap();
        // …then a plain frame for site 0 from a different key: overlap.
        let err = r.apply(site_summary(0, 0, 0..2, 1));
        assert!(matches!(
            err,
            Err(RelayError::OverlappingProvenance { site: 0 })
        ));
        // Hostile bytes.
        assert!(r.ingest_frame(b"junkjunkjunk").is_err());
        assert_eq!(r.ledger().rejected, 3);
        assert_eq!(r.ledger().frames, 1);
    }

    #[test]
    fn span_mismatch_and_late_downstream_are_flagged() {
        let mut r = relay("a", 100, &[0, 1]);
        r.apply(site_summary(0, 0, 0..2, 1)).unwrap();
        let mut odd = site_summary(1, 0, 0..2, 1);
        odd.window.span_ms = 2_000;
        assert!(matches!(r.apply(odd), Err(RelayError::SpanMismatch)));
        // Export window 0, then site 1 reports it late.
        r.apply(site_summary(0, 1, 0..2, 2)).unwrap();
        let _ = r.flush_exports();
        r.apply(site_summary(1, 0, 0..2, 1)).unwrap();
        assert_eq!(r.ledger().late_downstream, 1);
    }

    /// Applies a delta/full export stream to a collector and returns
    /// it (the upstream's view of this relay).
    fn collect(frames: &[Summary]) -> Collector {
        let mut c = Collector::new(Schema::five_feature(), Config::with_budget(100_000));
        for f in frames {
            c.apply_bytes(&f.encode()).unwrap();
        }
        c
    }

    #[test]
    fn late_frames_re_export_incrementally_as_deltas() {
        let mut r = relay("a", 100, &[0, 1, 2]);
        // Sites 0 and 1 deliver window 0; wall clock passes its end.
        r.apply(site_summary(0, 0, 0..3, 1)).unwrap();
        r.apply(site_summary(1, 0, 0..3, 1)).unwrap();
        let first = r.drain_exports_at(SPAN);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].kind, SummaryKind::Full);
        assert_eq!(first[0].provenance.as_deref(), Some(&[0u16, 1][..]));
        assert_eq!(first[0].epoch.unwrap().epoch, 2);
        // Nothing changed: nothing re-exports.
        assert!(r.drain_exports_at(10 * SPAN).is_empty());

        // Site 2 lands late: the window re-exports as a delta against
        // the pinned base.
        r.apply(site_summary(2, 0, 0..4, 1)).unwrap();
        assert_eq!(r.ledger().late_downstream, 1);
        let second = r.drain_exports_at(10 * SPAN);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].kind, SummaryKind::Delta);
        assert_eq!(
            second[0].epoch.unwrap(),
            flowdist::EpochHeader {
                epoch: 3,
                base: Some(2)
            }
        );
        // Per-window provenance now names all three sites.
        assert_eq!(second[0].provenance.as_deref(), Some(&[0u16, 1, 2][..]));
        // The delta carries (roughly) one site's worth of bytes.
        assert!(
            second[0].encoded_size() < first[0].encoded_size(),
            "delta {} vs full {}",
            second[0].encoded_size(),
            first[0].encoded_size()
        );
        assert_eq!(r.ledger().delta_exports, 1);
        assert_eq!(r.ledger().full_exports, 1);

        // An upstream applying the stream reconstructs the full merge.
        let upstream = collect(&[first[0].clone(), second[0].clone()]);
        assert_eq!(
            upstream.window_tree(0, 100).unwrap().encode(),
            r.collector().merged(None, 0, SPAN).encode()
        );
        assert_eq!(upstream.window_coverage(0).len(), 3);
    }

    #[test]
    fn replacement_falls_back_to_a_full_rebase() {
        let mut r = relay("a", 100, &[0, 1]);
        r.apply(site_summary(0, 0, 0..4, 1)).unwrap();
        let first = r.flush_exports();
        assert_eq!(first[0].kind, SummaryKind::Full);
        // The site restarts and re-sends window 0 with *less* content:
        // the delta would be non-monotone, so the relay rebases.
        r.apply(site_summary(0, 0, 0..2, 1)).unwrap();
        let second = r.flush_exports();
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].kind, SummaryKind::Full);
        assert_eq!(second[0].epoch.unwrap().base, None);
        assert_eq!(r.ledger().delta_fallbacks, 1);
        // The upstream replaces wholesale and matches the relay.
        let upstream = collect(&[first[0].clone(), second[0].clone()]);
        assert_eq!(
            upstream.window_tree(0, 100).unwrap().encode(),
            r.collector().merged(None, 0, SPAN).encode()
        );
    }

    #[test]
    fn base_loss_falls_back_to_a_full_rebase_and_recovers() {
        let mut r = relay("a", 100, &[0, 1]);
        r.apply(site_summary(0, 0, 0..3, 1)).unwrap();
        let _ = r.flush_exports();
        r.drop_export_bases();
        r.apply(site_summary(1, 0, 0..3, 1)).unwrap();
        let rebase = r.flush_exports();
        assert_eq!(rebase[0].kind, SummaryKind::Full);
        assert_eq!(r.ledger().base_losses, 1);
        // The next increment deltas off the re-pinned base again.
        r.apply(site_summary(0, 0, 0..5, 2)).unwrap(); // replacement: fallback
        let _ = r.flush_exports();
        r.apply(site_summary(1, 1, 0..2, 2)).unwrap();
        r.apply(site_summary(1, 0, 0..3, 3)).unwrap(); // overlap? no: same key
        let out = r.flush_exports();
        assert!(!out.is_empty());
    }

    #[test]
    fn wall_clock_linger_holds_fresh_windows_back() {
        let mut r = relay_with(
            "a",
            100,
            &[0],
            ExportConfig {
                linger_ms: 500,
                ..ExportConfig::default()
            },
        );
        r.apply(site_summary(0, 0, 0..2, 1)).unwrap();
        assert!(r.drain_exports_at(SPAN).is_empty(), "inside the linger");
        assert!(r.drain_exports_at(SPAN + 499).is_empty());
        let out = r.drain_exports_at(SPAN + 500);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn full_mode_re_exports_whole_aggregates() {
        let mut r = relay_with(
            "a",
            100,
            &[0, 1],
            ExportConfig {
                mode: ExportMode::Full,
                ..ExportConfig::default()
            },
        );
        r.apply(site_summary(0, 0, 0..3, 1)).unwrap();
        let first = r.flush_exports();
        r.apply(site_summary(1, 0, 0..3, 1)).unwrap();
        let second = r.flush_exports();
        assert_eq!(second[0].kind, SummaryKind::Full);
        assert_eq!(second[0].epoch.unwrap().epoch, 2);
        assert_eq!(r.ledger().delta_exports, 0);
        let upstream = collect(&[first[0].clone(), second[0].clone()]);
        assert_eq!(
            upstream.window_tree(0, 100).unwrap().encode(),
            r.collector().merged(None, 0, SPAN).encode()
        );
    }

    #[test]
    fn max_bases_bound_sheds_oldest_pins() {
        let mut r = relay_with(
            "a",
            100,
            &[0, 1],
            ExportConfig {
                max_bases: 2,
                ..ExportConfig::default()
            },
        );
        for w in 0..4u64 {
            r.apply(site_summary(0, w, 0..2, w + 1)).unwrap();
        }
        let _ = r.flush_exports();
        // A late site lands in the oldest window: its base was shed,
        // so the re-export is a full rebase, not a delta.
        r.apply(site_summary(1, 0, 0..4, 9)).unwrap();
        let out = r.flush_exports();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, SummaryKind::Full);
        assert_eq!(r.ledger().base_losses, 1);
        // The newest window still has its base pinned.
        r.apply(site_summary(1, 3, 2..4, 10)).unwrap();
        let out = r.flush_exports();
        assert_eq!(out[0].kind, SummaryKind::Delta);
    }

    #[test]
    fn retention_evicts_windows_state_and_bases_together() {
        let mut r = relay("a", 100, &[0, 1]);
        for w in 0..4u64 {
            r.apply(site_summary(0, w, 0..2, w + 1)).unwrap();
        }
        let _ = r.flush_exports();
        assert_eq!(r.collector().stored_windows(), 4);
        let evicted = r.evict_windows_before(2 * SPAN);
        assert_eq!(evicted, 2);
        assert_eq!(r.collector().stored_windows(), 2);
        assert!(r.window_coverage(0).is_empty());
        // Nothing re-exports for the evicted range…
        assert!(r.flush_exports().is_empty());
        // …and a frame arriving for an evicted window **continues**
        // its epoch chain: window 0 had reached epoch 1, so the
        // re-export is a full rebase at epoch 2 — an upstream still
        // holding epoch 1 accepts it; a restart at epoch 1 would be
        // rejected as stale forever.
        r.apply(site_summary(1, 0, 0..3, 9)).unwrap();
        let out = r.flush_exports();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, SummaryKind::Full);
        assert_eq!(out[0].epoch.unwrap().epoch, 2);
        assert_eq!(out[0].provenance.as_deref(), Some(&[1u16][..]));
        // An upstream that received the pre-eviction export composes
        // the whole stream without a single rejection.
        let mut upstream = relay("root", 200, &[0, 1]);
        let mut r2 = relay("a", 100, &[0, 1]);
        r2.apply(site_summary(0, 0, 0..2, 1)).unwrap();
        for e in r2.flush_exports() {
            upstream.ingest_frame(&e.encode()).unwrap();
        }
        r2.evict_windows_before(SPAN);
        r2.apply(site_summary(1, 0, 0..3, 9)).unwrap();
        for e in r2.flush_exports() {
            upstream.ingest_frame(&e.encode()).unwrap();
        }
        assert_eq!(upstream.ledger().rejected, 0);
        assert_eq!(upstream.collector().window_epoch(0, 100), 2);
    }

    #[test]
    fn mark_unshipped_forces_a_full_rebase_that_heals_the_chain() {
        let mut r = relay("a", 100, &[0, 1]);
        let mut upstream = relay("root", 200, &[0, 1]);
        r.apply(site_summary(0, 0, 0..2, 1)).unwrap();
        let first = r.flush_exports();
        upstream.ingest_frame(&first[0].encode()).unwrap();

        // The next two increments drain but are lost in transit.
        r.apply(site_summary(1, 0, 0..2, 1)).unwrap();
        let lost = r.flush_exports();
        assert_eq!(lost.len(), 1);
        // The shipper sheds them and rewinds the window.
        r.mark_unshipped(0);

        // The re-export is a full frame strictly past the upstream's
        // epoch; the chain heals with zero rejections.
        let heal = r.flush_exports();
        assert_eq!(heal.len(), 1);
        assert_eq!(heal[0].kind, SummaryKind::Full);
        assert!(heal[0].epoch.unwrap().epoch > first[0].epoch.unwrap().epoch);
        upstream.ingest_frame(&heal[0].encode()).unwrap();
        assert_eq!(upstream.ledger().rejected, 0);
        assert_eq!(
            upstream.collector().window_tree(0, 100).unwrap().encode(),
            r.collector().merged(None, 0, SPAN).encode()
        );
    }

    #[test]
    fn a_window_missing_one_site_no_longer_advertises_it() {
        // Sites 0 and 1 report windows 0 and 1; site 2 reports only
        // window 0. The lifetime union would advertise site 2 in both
        // exports — per-window provenance must not.
        let mut r = relay("a", 100, &[0, 1, 2]);
        for s in 0..3u16 {
            r.apply(site_summary(s, 0, 0..3, 1)).unwrap();
        }
        for s in 0..2u16 {
            r.apply(site_summary(s, 1, 0..3, 2)).unwrap();
        }
        let exports = r.flush_exports();
        assert_eq!(exports.len(), 2);
        assert_eq!(exports[0].provenance.as_deref(), Some(&[0u16, 1, 2][..]));
        assert_eq!(
            exports[1].provenance.as_deref(),
            Some(&[0u16, 1][..]),
            "window 1 must not advertise the site it never folded"
        );
        assert_eq!(
            r.window_coverage(SPAN).into_iter().collect::<Vec<_>>(),
            vec![0, 1]
        );
        // Lifetime coverage still counts site 2 as live.
        assert!(r.live_coverage().contains(&2));
    }

    #[test]
    fn compose_splits_scope_into_keys_and_missing() {
        let mut r = relay("root", 200, &[0, 1, 2, 3]);
        let mut a = site_summary(100, 0, 0..2, 1);
        a.provenance = Some(vec![0, 1]);
        let mut b = site_summary(101, 0, 2..4, 1);
        b.provenance = Some(vec![2]);
        r.apply(a).unwrap();
        r.apply(b).unwrap();
        // Full-group scopes compose from aggregates.
        let c = r.compose(Some(&[0, 1, 2]));
        assert_eq!(c.keys.as_deref(), Some(&[100u16, 101][..]));
        assert!(c.missing.is_empty());
        // A partial-group scope cannot use that group's aggregate.
        let c = r.compose(Some(&[0, 2]));
        assert_eq!(c.keys.as_deref(), Some(&[101u16][..]));
        assert_eq!(c.missing, vec![0]);
        // A dead site is missing.
        let c = r.compose(Some(&[2, 3]));
        assert_eq!(c.missing, vec![3]);
    }

    #[test]
    fn classified_ingest_acks_applies_and_dedupes_replays() {
        // Tier-1 relay producing v3 export frames…
        let mut a = relay("a", 100, &[0, 1]);
        for s in 0..2u16 {
            a.apply(site_summary(s, 0, 0..3, 1)).unwrap();
        }
        let first = a.flush_exports().remove(0);
        let bytes = first.encode();
        // …classified by its upstream.
        let mut b = relay("b", 200, &[0, 1]);
        let applied = b.ingest_classified(&bytes);
        let FrameOutcome::Applied(pos) = applied else {
            panic!("fresh frame must apply, got {applied:?}");
        };
        assert_eq!(
            (pos.window_start_ms, pos.exporter, pos.epoch),
            (0, 100, 2),
            "ack position names the applied slot (one content epoch per folded frame)"
        );
        // An at-least-once resend is acked at the stored position but
        // never re-applied.
        let replay = b.ingest_classified(&bytes);
        assert_eq!(replay, FrameOutcome::Replayed(pos));
        assert_eq!(b.ledger().replayed, 1);
        assert_eq!(b.collector().window_epoch(0, 100), 2);
        // Garbage is rejected without a position.
        assert_eq!(b.ingest_classified(b"junk"), FrameOutcome::Rejected);
    }

    #[test]
    fn classified_ingest_dedupes_pre_epoch_replays_by_seq() {
        let mut b = relay("b", 200, &[0]);
        let s1 = site_summary(0, 0, 0..3, 7).encode();
        assert!(matches!(b.ingest_classified(&s1), FrameOutcome::Applied(_)));
        // Same pre-epoch frame again: the stored seq matches — replay.
        assert!(matches!(
            b.ingest_classified(&s1),
            FrameOutcome::Replayed(_)
        ));
        // A *newer* pre-epoch frame replaces (legacy semantics).
        let s2 = site_summary(0, 0, 0..4, 8).encode();
        assert!(matches!(b.ingest_classified(&s2), FrameOutcome::Applied(_)));
    }

    #[test]
    fn orphan_delta_triggers_rebase_request_and_the_chain_heals() {
        let mut a = relay_with(
            "a",
            100,
            &[0, 1],
            ExportConfig {
                mode: ExportMode::Delta,
                ..ExportConfig::default()
            },
        );
        for s in 0..2u16 {
            a.apply(site_summary(s, 0, 0..3, 1)).unwrap();
        }
        let full = a.flush_exports().remove(0);
        // Late superset content → the next export is a delta (a
        // shrinking replacement would be non-monotone and rebase).
        a.apply(site_summary(0, 0, 0..6, 2)).unwrap();
        let delta = a.flush_exports().remove(0);
        assert_eq!(delta.kind, SummaryKind::Delta);

        // An upstream that applied both is fine…
        let mut b = relay("b", 200, &[0, 1]);
        assert!(matches!(
            b.ingest_classified(&full.encode()),
            FrameOutcome::Applied(_)
        ));
        assert!(matches!(
            b.ingest_classified(&delta.encode()),
            FrameOutcome::Applied(_)
        ));
        // …but an upstream that lost the base (restart, shorter
        // retention) answers the delta with a rebase-request carrying
        // what it actually holds: nothing.
        let mut fresh = relay("b2", 200, &[0, 1]);
        let outcome = fresh.ingest_classified(&delta.encode());
        let FrameOutcome::NeedsRebase(pos) = outcome else {
            panic!("orphan delta must request a rebase, got {outcome:?}");
        };
        assert_eq!(pos.epoch, 0);
        assert_eq!(fresh.ledger().rebase_requests, 1);

        // The sender honors it: rewind, re-export full, chain heals.
        assert!(a.request_rebase(delta.window.start_ms));
        assert_eq!(a.ledger().rebase_rewinds, 1);
        let rebased = a.flush_exports().remove(0);
        assert_eq!(rebased.kind, SummaryKind::Full);
        // A rewind replays the *same* content epoch as a full frame —
        // the chain repositions, it never forks forward.
        assert_eq!(rebased.epoch.unwrap().epoch, delta.epoch.unwrap().epoch);
        assert!(matches!(
            fresh.ingest_classified(&rebased.encode()),
            FrameOutcome::Applied(_)
        ));
        // The healed upstream now matches the one that never lost it.
        assert_eq!(
            fresh.merged_view(None, 0, SPAN).encode(),
            b.collector().merged(None, 0, SPAN).encode()
        );
        // Unknown windows are ignored, not invented.
        assert!(!a.request_rebase(999_000));
    }

    #[test]
    fn unacked_exports_rewind_only_until_shipped() {
        let mut a = relay("a", 100, &[0]);
        a.apply(site_summary(0, 0, 0..3, 1)).unwrap();
        let e = a.flush_exports().remove(0);
        let epoch = e.epoch.unwrap().epoch;
        // Drained but never acknowledged: a restart must rewind it.
        assert_eq!(a.rewind_unacked_exports(), 1);
        let again = a.flush_exports().remove(0);
        assert_eq!(again.kind, SummaryKind::Full);
        // The replay re-ships the same content epoch, as a full frame.
        assert_eq!(again.epoch.unwrap().epoch, epoch);
        // Acknowledged: nothing left to rewind.
        a.note_shipped(0, again.epoch.unwrap().epoch);
        assert_eq!(a.rewind_unacked_exports(), 0);
        assert!(a.flush_exports().is_empty());
    }

    #[test]
    fn base_pins_are_bounded_by_total_nodes() {
        // A one-node budget can never retain a pinned base, so every
        // export stays a full rebasing frame — bounded memory beats
        // delta bytes when the operator says so.
        let mut r = relay_with(
            "a",
            100,
            &[0],
            ExportConfig {
                mode: ExportMode::Delta,
                max_bases: 1_000,
                max_base_nodes: 1,
                ..ExportConfig::default()
            },
        );
        for seq in 1..=3u64 {
            r.apply(site_summary(0, 0, 0..(seq as u8 * 2), seq))
                .unwrap();
            let e = r.flush_exports().remove(0);
            assert_eq!(
                e.kind,
                SummaryKind::Full,
                "with the base shed, every re-export must rebase"
            );
        }
        assert!(r.ledger().base_losses >= 2);
    }
}
