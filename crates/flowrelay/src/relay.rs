//! One aggregation-tier node.
//!
//! A [`Relay`] sits between site daemons (or deeper relays) and its
//! own upstream. Downstream summary frames land in an embedded
//! [`Collector`] — per-site trees from daemons, pre-aggregated
//! super-site trees from child relays — and every closed window is
//! folded into **one** upstream aggregate with the structural
//! [`FlowTree::merge_many`], re-exported as a version-2 frame whose
//! provenance header names the real sites inside
//! ([`flowdist::summary`]).
//!
//! ## Provenance discipline
//!
//! The provenance checks are what make hierarchical answers equal flat
//! ones:
//!
//! * a frame may only claim sites inside this relay's **expected
//!   coverage** (from the topology) — a mis-wired or hostile exporter
//!   cannot inject a foreign site's traffic;
//! * two different downstreams may never claim the same site — that
//!   would double-count it in every aggregate;
//! * aggregates are `Full` only, and all frames must agree on the
//!   window span.
//!
//! Rejected frames are counted in the [`RelayLedger`], never fatal —
//! the relay outlives hostile peers exactly as the collector does.

use crate::RelayError;
use flowdist::{Collector, DistError, Summary, SummaryKind, WindowId};
use flowkey::Schema;
use flowtree_core::{Config, FlowTree};
use std::collections::{BTreeMap, BTreeSet};

/// Construction parameters of one relay.
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// Display name (usually the topology name).
    pub name: String,
    /// The id this relay's exports carry in their `site` field.
    pub agg_site: u16,
    /// Every real site this relay is expected to cover (own tier plus
    /// everything below it in the topology).
    pub expected: Vec<u16>,
    /// Flow schema of all trees.
    pub schema: Schema,
    /// Tree budget/policies for stored and merged trees.
    pub tree: Config,
}

/// Work counters of one relay.
#[derive(Debug, Clone, Copy, Default)]
pub struct RelayLedger {
    /// Frames accepted.
    pub frames: u64,
    /// Plain per-site frames among them.
    pub site_frames: u64,
    /// Aggregate (provenance-carrying) frames among them.
    pub agg_frames: u64,
    /// Frames rejected (malformed, coverage violations, overlaps…).
    pub rejected: u64,
    /// Upstream aggregates exported.
    pub exported: u64,
    /// Encoded bytes of those exports.
    pub exported_bytes: u64,
    /// Accepted frames for windows already exported upstream (stored
    /// locally, but the upstream aggregate no longer reflects them).
    pub late_downstream: u64,
}

/// How a site-set scope maps onto one relay's stored trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Compose {
    /// Stored keys whose provenance lies inside the scope (`None` =
    /// every stored key, for an all-sites scope).
    pub keys: Option<Vec<u16>>,
    /// Scope sites no composed key covers.
    pub missing: Vec<u16>,
}

/// One aggregation node (see the module docs).
#[derive(Debug)]
pub struct Relay {
    cfg: RelayConfig,
    expected: BTreeSet<u16>,
    collector: Collector,
    /// Stored key → the real sites it has claimed (singleton for site
    /// frames, the provenance union for child aggregates).
    provenance: BTreeMap<u16, BTreeSet<u16>>,
    /// Established window span (first accepted frame wins).
    span_ms: Option<u64>,
    /// Export cursor: every stored window starting below this was
    /// already aggregated upstream.
    exported_below: u64,
    seq: u64,
    ledger: RelayLedger,
}

impl Relay {
    /// Creates an empty relay.
    pub fn new(cfg: RelayConfig) -> Relay {
        let expected = cfg.expected.iter().copied().collect();
        let collector = Collector::new(cfg.schema, cfg.tree);
        Relay {
            expected,
            collector,
            provenance: BTreeMap::new(),
            span_ms: None,
            exported_below: 0,
            seq: 0,
            ledger: RelayLedger::default(),
            cfg,
        }
    }

    /// Builds the relay at `idx` of a validated topology.
    pub fn from_topology(
        topo: &crate::RelayTopology,
        idx: usize,
        schema: Schema,
        tree: Config,
    ) -> Relay {
        let spec = &topo.relays[idx];
        Relay::new(RelayConfig {
            name: spec.name.clone(),
            agg_site: spec.agg_site,
            expected: topo.coverage(idx).into_iter().collect(),
            schema,
            tree,
        })
    }

    /// The relay's name.
    pub fn name(&self) -> &str {
        &self.cfg.name
    }

    /// The id its exports carry.
    pub fn agg_site(&self) -> u16 {
        self.cfg.agg_site
    }

    /// The flow schema.
    pub fn schema(&self) -> Schema {
        self.cfg.schema
    }

    /// The tree configuration.
    pub fn tree_cfg(&self) -> Config {
        self.cfg.tree
    }

    /// Work counters.
    pub fn ledger(&self) -> &RelayLedger {
        &self.ledger
    }

    /// The established window span, once any frame was accepted.
    pub fn span_ms(&self) -> Option<u64> {
        self.span_ms
    }

    /// The embedded collector (stored windows, merged views, queries).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// The sites this relay is expected to cover.
    pub fn expected_coverage(&self) -> &BTreeSet<u16> {
        &self.expected
    }

    /// The sites actually backed by stored data: the provenance union
    /// over downstreams that have delivered at least one window. A
    /// dead downstream simply never enters this set — coverage
    /// degrades, queries keep routing.
    pub fn live_coverage(&self) -> BTreeSet<u16> {
        let stored: BTreeSet<u16> = self.collector.sites().into_iter().collect();
        self.provenance
            .iter()
            .filter(|(k, _)| stored.contains(k))
            .flat_map(|(_, sites)| sites.iter().copied())
            .collect()
    }

    /// Decodes and ingests one downstream frame; malformed or
    /// violating frames are counted and returned as errors, never
    /// fatal to the relay.
    pub fn ingest_frame(&mut self, bytes: &[u8]) -> Result<(), RelayError> {
        let summary = match Summary::decode(bytes, self.cfg.tree) {
            Ok(s) => s,
            Err(e) => {
                self.ledger.rejected += 1;
                return Err(e.into());
            }
        };
        self.apply(summary)
    }

    /// Ingests an already-decoded downstream summary.
    pub fn apply(&mut self, summary: Summary) -> Result<(), RelayError> {
        match self.check_and_apply(summary) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.ledger.rejected += 1;
                Err(e)
            }
        }
    }

    fn check_and_apply(&mut self, summary: Summary) -> Result<(), RelayError> {
        if summary.provenance.is_some() && summary.kind != SummaryKind::Full {
            return Err(DistError::BadFrame("aggregate summaries must be full").into());
        }
        if let Some(span) = self.span_ms {
            if summary.window.span_ms != span {
                return Err(RelayError::SpanMismatch);
            }
        }
        let key = summary.site;
        let claimed: BTreeSet<u16> = summary.covered_sites().into_iter().collect();
        for &site in &claimed {
            if !self.expected.contains(&site) {
                return Err(RelayError::CoverageViolation { site });
            }
            if let Some((_, other)) = self
                .provenance
                .iter()
                .find(|(k, sites)| **k != key && sites.contains(&site))
            {
                debug_assert!(other.contains(&site));
                return Err(RelayError::OverlappingProvenance { site });
            }
        }
        let is_agg = summary.provenance.is_some();
        let window = summary.window;
        self.collector.apply(summary).map_err(RelayError::Dist)?;
        self.span_ms.get_or_insert(window.span_ms);
        self.provenance.entry(key).or_default().extend(claimed);
        self.ledger.frames += 1;
        if is_agg {
            self.ledger.agg_frames += 1;
        } else {
            self.ledger.site_frames += 1;
        }
        if window.start_ms < self.exported_below {
            self.ledger.late_downstream += 1;
        }
        Ok(())
    }

    /// Maps a site-set scope onto stored keys: every stored key whose
    /// claimed sites lie inside the scope composes it; scope sites no
    /// such key claims are reported missing. `None` = all sites (the
    /// relay's full stored set).
    pub fn compose(&self, wanted: Option<&[u16]>) -> Compose {
        match wanted {
            None => {
                let live = self.live_coverage();
                Compose {
                    keys: None,
                    missing: self.expected.difference(&live).copied().collect(),
                }
            }
            Some(sites) => {
                let scope: BTreeSet<u16> = sites.iter().copied().collect();
                let stored: BTreeSet<u16> = self.collector.sites().into_iter().collect();
                let mut keys = Vec::new();
                let mut covered: BTreeSet<u16> = BTreeSet::new();
                for (key, claimed) in &self.provenance {
                    if stored.contains(key) && claimed.is_subset(&scope) {
                        keys.push(*key);
                        covered.extend(claimed.iter().copied());
                    }
                }
                Compose {
                    keys: Some(keys),
                    missing: scope.difference(&covered).copied().collect(),
                }
            }
        }
    }

    /// Exports every complete window not yet exported: a window is
    /// complete once **every** reporting downstream has moved past it
    /// (the minimum over stored keys of their newest window). A
    /// downstream that never reported does not hold the watermark
    /// back. Use [`Relay::flush_exports`] at end of stream.
    pub fn drain_exports(&mut self) -> Vec<Summary> {
        let mut newest_per_key: BTreeMap<u16, u64> = BTreeMap::new();
        for (start, key) in self.collector.window_keys() {
            let e = newest_per_key.entry(key).or_insert(start);
            *e = (*e).max(start);
        }
        let Some(&watermark) = newest_per_key.values().min() else {
            return Vec::new();
        };
        self.export_below(watermark)
    }

    /// Exports every stored window not yet exported, regardless of
    /// downstream watermarks (end of trace / shutdown).
    pub fn flush_exports(&mut self) -> Vec<Summary> {
        self.export_below(u64::MAX)
    }

    fn export_below(&mut self, limit: u64) -> Vec<Summary> {
        let Some(span) = self.span_ms else {
            return Vec::new();
        };
        // One pass over the stored (window, key) pairs groups every
        // exportable window with the keys present in it.
        let mut keys_by_window: BTreeMap<u64, Vec<u16>> = BTreeMap::new();
        for (start, key) in self.collector.window_keys() {
            if start >= self.exported_below && start < limit {
                keys_by_window.entry(start).or_default().push(key);
            }
        }
        let mut out = Vec::with_capacity(keys_by_window.len());
        for (start, present) in keys_by_window {
            let provenance: BTreeSet<u16> = present
                .iter()
                .filter_map(|k| self.provenance.get(k))
                .flat_map(|sites| sites.iter().copied())
                .collect();
            let tree = self.collector.merged(None, start, start + span);
            self.seq += 1;
            let summary = Summary {
                site: self.cfg.agg_site,
                window: WindowId {
                    start_ms: start,
                    span_ms: span,
                },
                seq: self.seq,
                kind: SummaryKind::Full,
                provenance: Some(provenance.into_iter().collect()),
                tree,
            };
            self.ledger.exported += 1;
            // Arithmetic size: the caller encodes once to ship; the
            // ledger must not pay a second full serialization.
            self.ledger.exported_bytes += summary.encoded_size() as u64;
            self.exported_below = self.exported_below.max(start + span);
            out.push(summary);
        }
        out
    }

    /// The merged view of a composed scope (delegates to the embedded
    /// collector's cached-view layer).
    pub fn merged_view(
        &self,
        keys: Option<&[u16]>,
        from_ms: u64,
        to_ms: u64,
    ) -> std::sync::Arc<FlowTree> {
        self.collector.merged_view(keys, from_ms, to_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowkey::FlowKey;
    use flowtree_core::Popularity;

    const SPAN: u64 = 1_000;

    fn site_summary(site: u16, window: u64, hosts: std::ops::Range<u8>, seq: u64) -> Summary {
        let schema = Schema::five_feature();
        let mut tree = FlowTree::new(schema, Config::with_budget(4_096));
        for h in hosts {
            let key: FlowKey =
                format!("src=10.{site}.0.{h}/32 dst=192.0.2.1/32 sport=40000 dport=443 proto=tcp")
                    .parse()
                    .unwrap();
            tree.insert(&key, Popularity::new(1 + h as i64, 100, 1));
        }
        Summary {
            site,
            window: WindowId {
                start_ms: window * SPAN,
                span_ms: SPAN,
            },
            seq,
            kind: SummaryKind::Full,
            provenance: None,
            tree,
        }
    }

    fn relay(name: &str, agg: u16, expected: &[u16]) -> Relay {
        Relay::new(RelayConfig {
            name: name.into(),
            agg_site: agg,
            expected: expected.to_vec(),
            schema: Schema::five_feature(),
            tree: Config::with_budget(100_000),
        })
    }

    #[test]
    fn aggregates_carry_provenance_and_match_local_merge() {
        let mut r = relay("a", 100, &[0, 1, 2]);
        for w in 0..3u64 {
            for s in 0..3u16 {
                r.apply(site_summary(s, w, 0..4, w + 1)).unwrap();
            }
        }
        // Watermark: every key reached window 2 → windows 0 and 1 export.
        let exports = r.drain_exports();
        assert_eq!(exports.len(), 2);
        for (i, e) in exports.iter().enumerate() {
            assert_eq!(e.site, 100);
            assert_eq!(e.window.start_ms, i as u64 * SPAN);
            assert_eq!(e.provenance.as_deref(), Some(&[0u16, 1, 2][..]));
            let local = r
                .collector()
                .merged(None, e.window.start_ms, e.window.end_ms());
            assert_eq!(e.tree.encode(), local.encode());
        }
        // Nothing re-exports; the last window flushes at shutdown.
        assert!(r.drain_exports().is_empty());
        let rest = r.flush_exports();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].window.start_ms, 2 * SPAN);
        assert_eq!(r.ledger().exported, 3);
        // The ledger's arithmetic byte accounting equals the real
        // frame sizes.
        let wire: u64 = exports
            .iter()
            .chain(rest.iter())
            .map(|e| e.encode().len() as u64)
            .sum();
        assert_eq!(r.ledger().exported_bytes, wire);
    }

    #[test]
    fn dead_downstream_degrades_coverage_not_exports() {
        let mut r = relay("a", 100, &[0, 1, 2]);
        // Site 2 never reports.
        for w in 0..2u64 {
            for s in 0..2u16 {
                r.apply(site_summary(s, w, 0..2, w + 1)).unwrap();
            }
        }
        assert_eq!(
            r.live_coverage(),
            [0u16, 1].into_iter().collect::<BTreeSet<_>>()
        );
        let exports = r.flush_exports();
        assert_eq!(exports.len(), 2);
        assert_eq!(exports[0].provenance.as_deref(), Some(&[0u16, 1][..]));
        let c = r.compose(None);
        assert_eq!(c.missing, vec![2]);
    }

    #[test]
    fn coverage_and_overlap_violations_are_rejected_and_counted() {
        let mut r = relay("a", 100, &[0, 1]);
        // Site outside coverage.
        let err = r.apply(site_summary(7, 0, 0..2, 1));
        assert!(matches!(
            err,
            Err(RelayError::CoverageViolation { site: 7 })
        ));
        // A child aggregate claiming site 0…
        let mut agg = site_summary(50, 0, 0..2, 1);
        agg.site = 50;
        agg.provenance = Some(vec![0]);
        // …but 50 is outside expected coverage? Use agg id inside none —
        // coverage checks claimed sites, not the carrier id.
        r.apply(agg).unwrap();
        // …then a plain frame for site 0 from a different key: overlap.
        let err = r.apply(site_summary(0, 0, 0..2, 1));
        assert!(matches!(
            err,
            Err(RelayError::OverlappingProvenance { site: 0 })
        ));
        // Hostile bytes.
        assert!(r.ingest_frame(b"junkjunkjunk").is_err());
        assert_eq!(r.ledger().rejected, 3);
        assert_eq!(r.ledger().frames, 1);
    }

    #[test]
    fn span_mismatch_and_late_downstream_are_flagged() {
        let mut r = relay("a", 100, &[0, 1]);
        r.apply(site_summary(0, 0, 0..2, 1)).unwrap();
        let mut odd = site_summary(1, 0, 0..2, 1);
        odd.window.span_ms = 2_000;
        assert!(matches!(r.apply(odd), Err(RelayError::SpanMismatch)));
        // Export window 0, then site 1 reports it late.
        r.apply(site_summary(0, 1, 0..2, 2)).unwrap();
        let _ = r.flush_exports();
        r.apply(site_summary(1, 0, 0..2, 1)).unwrap();
        assert_eq!(r.ledger().late_downstream, 1);
    }

    #[test]
    fn compose_splits_scope_into_keys_and_missing() {
        let mut r = relay("root", 200, &[0, 1, 2, 3]);
        let mut a = site_summary(100, 0, 0..2, 1);
        a.provenance = Some(vec![0, 1]);
        let mut b = site_summary(101, 0, 2..4, 1);
        b.provenance = Some(vec![2]);
        r.apply(a).unwrap();
        r.apply(b).unwrap();
        // Full-group scopes compose from aggregates.
        let c = r.compose(Some(&[0, 1, 2]));
        assert_eq!(c.keys.as_deref(), Some(&[100u16, 101][..]));
        assert!(c.missing.is_empty());
        // A partial-group scope cannot use that group's aggregate.
        let c = r.compose(Some(&[0, 2]));
        assert_eq!(c.keys.as_deref(), Some(&[101u16][..]));
        assert_eq!(c.missing, vec![0]);
        // A dead site is missing.
        let c = r.compose(Some(&[2, 3]));
        assert_eq!(c.missing, vec![3]);
    }
}
