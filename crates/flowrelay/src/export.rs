//! The durable export shipper: spill-backed pending buffer, ack
//! tracking, reconnect backoff, and a skew-proof clock.
//!
//! `relayd`'s old export loop kept drained frames in a bounded `Vec`,
//! reconnected in a tight loop, and treated a successful `write` as
//! delivery. The [`ExportShipper`] replaces all three:
//!
//! * every drained frame lands in a [`SpillQueue`] **before** any send
//!   (process death loses nothing that was drained);
//! * against an ack-capable upstream (hello handshake,
//!   [`flowdist::control`]) a frame stays pending until the receiver
//!   acknowledges **applying** it; a reconnect resends the whole
//!   unacked suffix and the receiver deduplicates idempotently;
//! * against a legacy (v1–v3) upstream the shipper falls back to
//!   exactly the old fire-and-forget contract: a flushed write
//!   releases the frame;
//! * reconnects use exponential [`Backoff`] with jitter instead of a
//!   tight retry loop, feeding attempt/failure/backoff counters into
//!   the [`RelayLedger`](crate::RelayLedger);
//! * rebase-requests from the receiver rewind the named window
//!   ([`Relay::request_rebase`]) so the next drain ships a full
//!   rebasing frame.
//!
//! A dedicated reader thread per connection decodes control frames
//! into a channel — the pump never does a blocking read mid-frame, so
//! a slow upstream cannot desynchronize the stream.

use crate::relay::Relay;
use flowdist::control::{is_control, ControlFrame, SlotPos, FEATURE_ACKS};
use flowdist::net::{read_frame, write_frame};
use flowdist::{SpillQueue, Summary};
use flowtree_core::Config;
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Mutex;
use std::time::Instant;

/// A wall-anchored **monotonic** clock for the export scheduler: the
/// wall time is sampled once at construction and advanced by
/// `Instant` elapsed time, so a backward OS-clock jump (NTP step,
/// manual set) can neither stall a drain nor double-fire one. Window
/// starts stay comparable to real wall time; only the *progression*
/// is monotonic.
#[derive(Debug, Clone)]
pub struct SteadyClock {
    wall0_ms: u64,
    t0: Instant,
}

impl SteadyClock {
    /// Anchors to the current wall clock.
    pub fn new() -> SteadyClock {
        let wall0_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        SteadyClock {
            wall0_ms,
            t0: Instant::now(),
        }
    }

    /// Milliseconds since the epoch, monotonically non-decreasing.
    pub fn now_ms(&self) -> u64 {
        self.wall0_ms + self.t0.elapsed().as_millis() as u64
    }
}

impl Default for SteadyClock {
    fn default() -> SteadyClock {
        SteadyClock::new()
    }
}

/// Exponential-backoff tuning.
#[derive(Debug, Clone, Copy)]
pub struct BackoffConfig {
    /// First retry delay.
    pub base_ms: u64,
    /// Delay ceiling.
    pub max_ms: u64,
}

impl Default for BackoffConfig {
    fn default() -> BackoffConfig {
        BackoffConfig {
            base_ms: 100,
            max_ms: 5_000,
        }
    }
}

/// Exponential backoff with jitter: after the `n`-th consecutive
/// failure the next attempt waits a uniform draw from `[d/2, d]`
/// where `d = min(max_ms, base_ms · 2ⁿ)` — the usual decorrelation so
/// a fleet of relays does not thundering-herd a recovering upstream.
#[derive(Debug, Clone)]
pub struct Backoff {
    cfg: BackoffConfig,
    failures: u32,
    next_at_ms: u64,
    /// splitmix64 state — no external RNG dependency.
    rng: u64,
    last_delay_ms: u64,
}

impl Backoff {
    /// A fresh backoff (first attempt is immediate).
    pub fn new(cfg: BackoffConfig, seed: u64) -> Backoff {
        Backoff {
            cfg,
            failures: 0,
            next_at_ms: 0,
            rng: seed ^ 0x9E37_79B9_7F4A_7C15,
            last_delay_ms: 0,
        }
    }

    /// Whether the next attempt is due.
    pub fn ready(&self, now_ms: u64) -> bool {
        now_ms >= self.next_at_ms
    }

    /// The attempt succeeded: reset.
    pub fn success(&mut self) {
        self.failures = 0;
        self.next_at_ms = 0;
        self.last_delay_ms = 0;
    }

    /// The attempt failed: schedule the next one and return the
    /// jittered delay.
    pub fn failure(&mut self, now_ms: u64) -> u64 {
        let exp = self.failures.min(20);
        let raw = self
            .cfg
            .base_ms
            .saturating_mul(1u64 << exp)
            .min(self.cfg.max_ms)
            .max(1);
        let low = raw / 2;
        let span = raw - low + 1;
        let delay = low + self.next_u64() % span;
        self.failures = self.failures.saturating_add(1);
        self.next_at_ms = now_ms.saturating_add(delay);
        self.last_delay_ms = delay;
        delay
    }

    /// Consecutive failures so far.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Shipper tuning.
#[derive(Debug, Clone)]
pub struct ShipperConfig {
    /// Upstream address (`host:port`).
    pub upstream: String,
    /// How long to wait for the upstream's hello reply before falling
    /// back to legacy fire-and-forget.
    pub handshake_ms: u64,
    /// How long an acked connection may sit fully-sent with pending
    /// frames and no ack progress before it is recycled. TCP only
    /// loses frames by losing the connection, but a half-dead path
    /// (or a peer that stopped acking) looks healthy forever —
    /// recycling forces the resend-all-unacked reconnect path.
    pub stall_ms: u64,
    /// Tree budget for re-decoding recovered spill frames (their
    /// pending metadata is rebuilt from the bytes).
    pub tree: Config,
    /// Reconnect backoff tuning.
    pub backoff: BackoffConfig,
}

/// Shipper counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShipperStats {
    /// Frames handed to [`ExportShipper::enqueue`].
    pub enqueued: u64,
    /// Frames written to the wire (including resends).
    pub sent_frames: u64,
    /// Bytes written.
    pub sent_bytes: u64,
    /// Frames released by a receiver ack.
    pub acked_frames: u64,
    /// Frames released by the legacy flushed-write contract.
    pub legacy_released: u64,
    /// Rebase-requests honored (window rewound).
    pub rebase_honored: u64,
    /// Rebase-requests for windows this relay no longer tracks.
    pub rebase_unknown: u64,
    /// Acks that matched nothing pending (at-least-once replays of
    /// our own resends, or a hostile peer).
    pub stale_acks: u64,
    /// Zero-epoch acks that claimed to cover epoch-advancing pending
    /// frames — ignored, a v3 frame is only released by an epoch ack.
    pub hostile_acks: u64,
    /// Completed hello handshakes (ack mode negotiated).
    pub handshakes: u64,
    /// Connections recycled because acks stopped arriving while
    /// frames were pending (see [`ShipperConfig::stall_ms`]).
    pub stall_recycles: u64,
    /// Connections that fell back to legacy fire-and-forget.
    pub legacy_sessions: u64,
}

/// What one pending frame is waiting on.
#[derive(Debug, Clone, Copy)]
struct PendingMeta {
    window_start_ms: u64,
    exporter: u16,
    /// The epoch the frame advances its slot to (0 = pre-epoch frame).
    epoch: u64,
    /// When the frame first hit the wire (0 = never sent yet). Resends
    /// keep the first timestamp: ship→ack RTT honestly includes every
    /// reconnect the frame lived through.
    sent_at_ms: u64,
}

struct Conn {
    stream: TcpStream,
    rx: Receiver<ControlFrame>,
    /// Negotiated per-frame acks; false = legacy fire-and-forget.
    acked: bool,
    /// Next spill seq to send on this connection (everything unacked
    /// below it was already sent here).
    send_from: u64,
    /// Last time this connection made progress (sent a frame or
    /// released one on an ack) — the stall clock.
    last_progress_ms: u64,
}

impl Drop for Conn {
    fn drop(&mut self) {
        // Unblocks the reader thread, which exits on the read error.
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// The durable acknowledged export pipeline of one relay (see the
/// module docs).
pub struct ExportShipper {
    cfg: ShipperConfig,
    spill: SpillQueue,
    /// spill seq → what the frame is waiting on.
    meta: BTreeMap<u64, PendingMeta>,
    conn: Option<Conn>,
    backoff: Backoff,
    stats: ShipperStats,
    /// Ship→ack round-trip latency, when the node wired one in.
    rtt: Option<flowmetrics::Histogram>,
}

impl ExportShipper {
    /// Wraps a spill queue (fresh or recovered). Metadata for
    /// recovered frames is rebuilt by decoding their bytes; undecodable
    /// records are dropped from tracking (they will be shed by acks
    /// never matching — counted, not resent forever).
    pub fn new(cfg: ShipperConfig, spill: SpillQueue, seed: u64) -> ExportShipper {
        let mut meta = BTreeMap::new();
        for rec in spill.pending() {
            if let Ok(s) = Summary::decode(&rec.bytes, cfg.tree) {
                meta.insert(rec.seq, meta_of(&s));
            }
        }
        let backoff = Backoff::new(cfg.backoff, seed);
        ExportShipper {
            cfg,
            spill,
            meta,
            conn: None,
            backoff,
            stats: ShipperStats::default(),
            rtt: None,
        }
    }

    /// Wires in a ship→ack RTT histogram: observed once per acked
    /// frame, from first wire write to the releasing ack.
    pub fn set_rtt_histogram(&mut self, hist: flowmetrics::Histogram) {
        self.rtt = Some(hist);
    }

    /// Queues one drained export durably. Returns the window starts of
    /// any frames the byte bound shed — the caller must
    /// [`Relay::mark_unshipped`] them so the loss is healed by a full
    /// rebasing re-export instead of being silent.
    pub fn enqueue(&mut self, summary: &Summary) -> Vec<u64> {
        let bytes = summary.encode();
        self.stats.enqueued += 1;
        let m = meta_of(summary);
        let seq = self.spill.next_seq();
        let shed = self.spill.push(bytes);
        self.meta.insert(seq, m);
        let mut rewind: Vec<u64> = Vec::new();
        for rec in &shed {
            if let Some(m) = self.meta.remove(&rec.seq) {
                rewind.push(m.window_start_ms);
            }
        }
        rewind.sort_unstable();
        rewind.dedup();
        rewind
    }

    /// One delivery round: process any arrived control frames, then
    /// (re)connect and send the unacked suffix. Never blocks beyond
    /// the connect and handshake timeouts. Call with the relay
    /// **unlocked** — the shipper takes the lock itself for ledger and
    /// rewind bookkeeping.
    pub fn pump(&mut self, relay: &Mutex<Relay>, now_ms: u64) {
        if self.conn.is_some() && !self.process_control(relay, now_ms) {
            self.conn = None;
        }
        if self.spill.is_empty() {
            return;
        }
        // A fully-sent acked connection that has gone silent is not
        // delivering: recycle it so the reconnect resends everything
        // unacked.
        if let Some(conn) = &self.conn {
            if conn.acked
                && conn.send_from >= self.spill.next_seq()
                && now_ms.saturating_sub(conn.last_progress_ms) > self.cfg.stall_ms
            {
                self.stats.stall_recycles += 1;
                self.conn = None;
                self.backoff.failure(now_ms);
                return;
            }
        }
        if self.conn.is_none() {
            if !self.backoff.ready(now_ms) {
                return;
            }
            let waited = self.backoff.last_delay_ms;
            match self.connect(now_ms) {
                Ok(conn) => {
                    relay
                        .lock()
                        .expect("relay lock")
                        .note_reconnect(true, waited);
                    self.backoff.success();
                    if conn.acked {
                        self.stats.handshakes += 1;
                    } else {
                        self.stats.legacy_sessions += 1;
                    }
                    self.conn = Some(conn);
                }
                Err(_) => {
                    relay
                        .lock()
                        .expect("relay lock")
                        .note_reconnect(false, waited);
                    self.backoff.failure(now_ms);
                    return;
                }
            }
        }
        if !self.send_pending(now_ms) {
            self.conn = None;
            self.backoff.failure(now_ms);
            return;
        }
        if !self.process_control(relay, now_ms) {
            self.conn = None;
        }
    }

    fn connect(&mut self, now_ms: u64) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(&self.cfg.upstream)?;
        let reader_stream = stream.try_clone()?;
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || reader_loop(reader_stream, tx));
        let mut conn = Conn {
            stream,
            rx,
            acked: false,
            send_from: self.spill.acked_floor(),
            last_progress_ms: now_ms,
        };
        write_frame(
            &mut conn.stream,
            &ControlFrame::Hello {
                features: FEATURE_ACKS,
            }
            .encode(),
        )?;
        match conn
            .rx
            .recv_timeout(std::time::Duration::from_millis(self.cfg.handshake_ms))
        {
            Ok(ControlFrame::Hello { features }) => {
                conn.acked = features & FEATURE_ACKS != 0;
            }
            Ok(_) | Err(RecvTimeoutError::Timeout) => {
                // No hello: a legacy peer that counted ours as one
                // rejected frame. Fire-and-forget, as before.
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "upstream closed during handshake",
                ));
            }
        }
        Ok(conn)
    }

    /// Sends every pending frame not yet sent on this connection.
    /// Returns false when the connection died.
    fn send_pending(&mut self, now_ms: u64) -> bool {
        let Some(conn) = self.conn.as_mut() else {
            return true;
        };
        let mut sent = 0u64;
        let mut sent_bytes = 0u64;
        for rec in self.spill.pending() {
            if rec.seq < conn.send_from {
                continue;
            }
            if write_frame(&mut conn.stream, &rec.bytes).is_err() {
                return false;
            }
            conn.send_from = rec.seq + 1;
            sent += 1;
            sent_bytes += rec.bytes.len() as u64;
            if let Some(m) = self.meta.get_mut(&rec.seq) {
                if m.sent_at_ms == 0 {
                    m.sent_at_ms = now_ms;
                }
            }
        }
        if sent > 0 {
            conn.last_progress_ms = now_ms;
        }
        self.stats.sent_frames += sent;
        self.stats.sent_bytes += sent_bytes;
        if !conn.acked && sent > 0 {
            // Legacy contract: a flushed write is delivery.
            let release = self.spill.next_seq();
            self.stats.legacy_released += self.meta.len() as u64;
            self.meta.clear();
            self.spill.ack_through(release);
        }
        true
    }

    /// Drains arrived control frames. Returns false when the reader
    /// thread is gone (connection closed).
    fn process_control(&mut self, relay: &Mutex<Relay>, now_ms: u64) -> bool {
        loop {
            let frame = match self.conn.as_ref() {
                Some(conn) => conn.rx.try_recv(),
                None => return true,
            };
            match frame {
                Ok(ControlFrame::Ack(slot)) => {
                    if self.handle_ack(slot, relay, now_ms) > 0 {
                        if let Some(conn) = self.conn.as_mut() {
                            conn.last_progress_ms = now_ms;
                        }
                    }
                }
                Ok(ControlFrame::RebaseRequest(slot)) => {
                    let honored = relay
                        .lock()
                        .expect("relay lock")
                        .request_rebase(slot.window_start_ms);
                    if honored {
                        self.stats.rebase_honored += 1;
                    } else {
                        self.stats.rebase_unknown += 1;
                    }
                }
                Ok(ControlFrame::Hello { .. }) => {}
                Err(TryRecvError::Empty) => return true,
                Err(TryRecvError::Disconnected) => return false,
            }
        }
    }

    /// Non-positional ack matching: an ack for `(window, exporter)` at
    /// epoch `e` releases every pending frame of that slot with epoch
    /// ≤ `e`; a zero-epoch ack (v1/v2 receiver position) releases only
    /// the oldest pre-epoch frame of the slot and can never release an
    /// epoch-advancing one. Returns the number of frames released.
    fn handle_ack(&mut self, slot: SlotPos, relay: &Mutex<Relay>, now_ms: u64) -> u64 {
        let candidates: Vec<u64> = self
            .meta
            .iter()
            .filter(|(_, m)| {
                m.window_start_ms == slot.window_start_ms && m.exporter == slot.exporter
            })
            .map(|(seq, _)| *seq)
            .collect();
        if candidates.is_empty() {
            self.stats.stale_acks += 1;
            return 0;
        }
        let mut released = 0u64;
        let observe_rtt = |m: PendingMeta| {
            if let (Some(h), true) = (self.rtt.as_ref(), m.sent_at_ms > 0) {
                h.observe_secs(now_ms.saturating_sub(m.sent_at_ms) as f64 / 1_000.0);
            }
        };
        if slot.epoch == 0 {
            let oldest_pre_epoch = candidates
                .iter()
                .copied()
                .find(|seq| self.meta.get(seq).is_some_and(|m| m.epoch == 0));
            match oldest_pre_epoch {
                Some(seq) => {
                    if let Some(m) = self.meta.remove(&seq) {
                        observe_rtt(m);
                    }
                    released = 1;
                }
                None => {
                    self.stats.hostile_acks += 1;
                    return 0;
                }
            }
        } else {
            for seq in candidates {
                if self.meta.get(&seq).is_some_and(|m| m.epoch <= slot.epoch) {
                    if let Some(m) = self.meta.remove(&seq) {
                        observe_rtt(m);
                    }
                    released += 1;
                }
            }
            if released == 0 {
                self.stats.stale_acks += 1;
                return 0;
            }
        }
        self.stats.acked_frames += released;
        relay
            .lock()
            .expect("relay lock")
            .note_shipped(slot.window_start_ms, slot.epoch);
        let floor = self
            .meta
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.spill.next_seq());
        self.spill.ack_through(floor);
        released
    }

    /// Unacked frames currently pending.
    pub fn pending_len(&self) -> usize {
        self.spill.len()
    }

    /// Payload bytes those pending frames hold (the spill queue's
    /// live footprint).
    pub fn pending_bytes(&self) -> u64 {
        self.spill.pending_bytes()
    }

    /// Whether an upstream connection is currently established.
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Whether the current connection negotiated per-frame acks.
    pub fn acked_mode(&self) -> Option<bool> {
        self.conn.as_ref().map(|c| c.acked)
    }

    /// Shipper counters.
    pub fn stats(&self) -> ShipperStats {
        self.stats
    }

    /// The spill queue's counters (pushed/acked/shed/recovered bytes).
    pub fn spill_stats(&self) -> flowdist::SpillStats {
        self.spill.stats()
    }
}

fn meta_of(s: &Summary) -> PendingMeta {
    PendingMeta {
        window_start_ms: s.window.start_ms,
        exporter: s.site,
        epoch: s.epoch.map(|e| e.epoch).unwrap_or(0),
        sent_at_ms: 0,
    }
}

fn reader_loop(stream: TcpStream, tx: Sender<ControlFrame>) {
    let mut reader = BufReader::new(stream);
    while let Ok(Some(frame)) = read_frame(&mut reader) {
        if is_control(&frame) {
            if let Ok(cf) = ControlFrame::decode(&frame) {
                if tx.send(cf).is_err() {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relay::RelayConfig;
    use flowdist::{SpillConfig, SummaryKind, WindowId};
    use flowkey::Schema;
    use flowtree_core::{FlowTree, Popularity};

    fn clock_is_monotone() -> SteadyClock {
        SteadyClock::new()
    }

    #[test]
    fn steady_clock_never_goes_backwards() {
        let c = clock_is_monotone();
        let mut prev = c.now_ms();
        for _ in 0..1_000 {
            let now = c.now_ms();
            assert!(now >= prev);
            prev = now;
        }
    }

    #[test]
    fn backoff_doubles_with_jitter_and_resets() {
        let cfg = BackoffConfig {
            base_ms: 100,
            max_ms: 2_000,
        };
        let mut b = Backoff::new(cfg, 42);
        let mut expected = 100u64;
        for _ in 0..6 {
            let d = b.failure(0);
            assert!(d >= expected / 2 && d <= expected, "{d} vs {expected}");
            expected = (expected * 2).min(2_000);
        }
        assert!(!b.ready(0));
        b.success();
        assert!(b.ready(0));
        assert_eq!(b.failures(), 0);
        // Deterministic per seed.
        let mut b1 = Backoff::new(cfg, 7);
        let mut b2 = Backoff::new(cfg, 7);
        for _ in 0..5 {
            assert_eq!(b1.failure(0), b2.failure(0));
        }
    }

    fn export(window: u64, epoch: u64) -> Summary {
        let schema = Schema::five_feature();
        let mut tree = FlowTree::new(schema, Config::with_budget(4_096));
        let key: flowkey::FlowKey =
            "src=10.0.0.1/32 dst=192.0.2.1/32 sport=40000 dport=443 proto=tcp"
                .parse()
                .unwrap();
        tree.insert(&key, Popularity::new(epoch as i64 + 1, 100, 1));
        Summary {
            site: 100,
            window: WindowId {
                start_ms: window * 1_000,
                span_ms: 1_000,
            },
            seq: epoch,
            kind: SummaryKind::Full,
            provenance: Some(vec![0]),
            epoch: Some(flowdist::EpochHeader { epoch, base: None }),
            tree,
        }
    }

    fn shipper() -> ExportShipper {
        let cfg = ShipperConfig {
            upstream: "127.0.0.1:1".into(),
            handshake_ms: 10,
            stall_ms: 10_000,
            tree: Config::with_budget(1 << 20),
            backoff: BackoffConfig::default(),
        };
        ExportShipper::new(cfg, SpillQueue::in_memory(SpillConfig::default()), 1)
    }

    fn relay_mutex() -> Mutex<Relay> {
        Mutex::new(Relay::new(RelayConfig {
            name: "t".into(),
            agg_site: 100,
            expected: vec![0],
            schema: Schema::five_feature(),
            tree: Config::with_budget(1 << 20),
            export: Default::default(),
        }))
    }

    #[test]
    fn spill_io_error_degrades_shipper_to_memory_not_poison() {
        // A state dir the *second* segment write must fail in: with a
        // 1-byte segment budget every push rotates, and the rotation
        // target `spill-…1.seg` is pre-created as a *directory* —
        // EISDIR even for root, which ignores read-only mode bits.
        let dir = std::env::temp_dir().join(format!("flowrelay-degrade-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ShipperConfig {
            upstream: "127.0.0.1:1".into(),
            handshake_ms: 10,
            stall_ms: 10_000,
            tree: Config::with_budget(1 << 20),
            backoff: BackoffConfig::default(),
        };
        let spill_cfg = SpillConfig {
            segment_bytes: 1,
            ..SpillConfig::default()
        };
        let spill = SpillQueue::open(&dir, spill_cfg).unwrap();
        std::fs::create_dir_all(dir.join(format!("spill-{:020}.seg", 1))).unwrap();
        let mut s = ExportShipper::new(cfg, spill, 1);
        assert!(s.enqueue(&export(0, 1)).is_empty());
        assert_eq!(s.spill_stats().io_errors, 0, "first segment is healthy");
        // The second enqueue survives the write failure: the frame
        // pends in memory, the event is counted once, and later
        // enqueues and acks proceed as if configured memory-only.
        assert!(s.enqueue(&export(1, 1)).is_empty());
        assert_eq!(s.spill_stats().io_errors, 1);
        assert_eq!(s.pending_len(), 2);
        assert!(s.enqueue(&export(2, 1)).is_empty());
        assert_eq!(s.spill_stats().io_errors, 1, "degrade counted once");
        assert_eq!(s.pending_len(), 3);
        let relay = relay_mutex();
        s.handle_ack(
            SlotPos {
                window_start_ms: 0,
                span_ms: 1_000,
                exporter: 100,
                epoch: 1,
            },
            &relay,
            0,
        );
        assert_eq!(s.pending_len(), 2, "the window-0 frame released");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn acks_release_matching_epochs_and_advance_the_floor() {
        let mut s = shipper();
        let relay = relay_mutex();
        for e in 1..=3u64 {
            assert!(s.enqueue(&export(0, e)).is_empty());
        }
        assert_eq!(s.pending_len(), 3);
        // Ack at epoch 2 releases the first two frames.
        s.handle_ack(
            SlotPos {
                window_start_ms: 0,
                span_ms: 1_000,
                exporter: 100,
                epoch: 2,
            },
            &relay,
            0,
        );
        assert_eq!(s.pending_len(), 1);
        assert_eq!(s.stats().acked_frames, 2);
        // Replayed ack: nothing matches any more.
        s.handle_ack(
            SlotPos {
                window_start_ms: 0,
                span_ms: 1_000,
                exporter: 100,
                epoch: 2,
            },
            &relay,
            0,
        );
        assert_eq!(s.stats().stale_acks, 1);
        // Zero-epoch ack cannot release the remaining v3 frame.
        s.handle_ack(
            SlotPos {
                window_start_ms: 0,
                span_ms: 1_000,
                exporter: 100,
                epoch: 0,
            },
            &relay,
            0,
        );
        assert_eq!(s.stats().hostile_acks, 1);
        assert_eq!(s.pending_len(), 1);
    }

    #[test]
    fn shed_frames_report_their_windows_for_rewind() {
        let cfg = ShipperConfig {
            upstream: "127.0.0.1:1".into(),
            handshake_ms: 10,
            stall_ms: 10_000,
            tree: Config::with_budget(1 << 20),
            backoff: BackoffConfig::default(),
        };
        let spill = SpillQueue::in_memory(SpillConfig {
            max_bytes: 200,
            ..SpillConfig::default()
        });
        let mut s = ExportShipper::new(cfg, spill, 1);
        let mut rewound = Vec::new();
        for e in 1..=6u64 {
            rewound.extend(s.enqueue(&export(e, 1)));
        }
        assert!(
            !rewound.is_empty(),
            "the byte bound shed old frames and reported their windows"
        );
        assert!(s.spill_stats().shed_frames > 0);
    }
}
