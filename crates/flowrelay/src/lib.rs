//! # flowrelay — the hierarchical aggregation tier
//!
//! The journal version of the paper (Saidi et al., *Exploring
//! Network-Wide Flow Data with Flowyager*, IEEE TNSM 2020) deploys
//! Flowtrees not as a flat site→collector star but as a **hierarchy**:
//! sites feed regional aggregation relays, relays feed a root, and a
//! query is answered at the *lowest tier whose coverage contains its
//! scope* instead of re-merging every per-site tree at the top.
//!
//! ```text
//!                      ┌────────┐
//!                      │  root  │   tier 2: one pre-aggregated tree
//!                      └─┬────┬─┘           per (window, region)
//!              ┌─────────┘    └────────┐
//!          ┌───┴────┐             ┌────┴───┐
//!          │ relay A│             │ relay B│  tier 1: per-site trees,
//!          └─┬───┬──┘             └─┬───┬──┘          regional exports
//!          ┌─┘   └─┐              ┌─┘   └─┐
//!        site0   site1          site2   site3   site daemons (flowdist)
//! ```
//!
//! * [`RelayTopology`] — the declarative spec of the tree: who feeds
//!   whom, which real sites each relay owns.
//! * [`Relay`] — one aggregation node: ingests downstream summary
//!   frames (site summaries or other relays' aggregates) over the
//!   existing length-prefixed framing, folds each window's downstream
//!   trees into a **super-site summary** with the structural
//!   [`flowtree_core::FlowTree::merge_many`], and re-exports it
//!   upstream as a version-2 frame carrying a **site-set provenance
//!   header** ([`flowdist::summary`]).
//! * [`QueryRouter`] — the query planner: inspects a query's
//!   site-set and time-range scope and routes it to the cheapest
//!   tier — a relay's own pre-aggregated view when the scope is
//!   covered, falling back to fan-out over per-site trees (reusing
//!   [`flowdist::Collector::merged_view`]) when it is not.
//! * [`server`] — TCP: downstream frame ingest and a line-oriented
//!   query protocol over [`flowdist::net`]'s framing.
//! * [`runtime`] — one deployable node as a value: [`NodeRuntime`]
//!   bundles the listeners, export scheduler, durable shipper,
//!   journal recovery, stats endpoint, live reload, and graceful
//!   drain behind typed [`NodeConfig`]; `relayd` and the `flowctl`
//!   fleet launcher are thin shells over it.
//! * [`spec`] — the hand-rolled fleet-spec format `flowctl` parses:
//!   one INI-ish file describing every site and relay node of a
//!   deployment, validated through [`RelayTopology`].
//! * [`sim`] — stands up a site → relay → root hierarchy in-process
//!   from any packet trace, for tests and benches.
//!
//! The load-bearing invariant, property-tested in
//! `tests/hierarchy_equiv.rs`: with compaction out of play, a
//! root-tier query answer — and the root's re-exported wire bytes —
//! is **identical** to a flat [`flowdist::Collector`] fed the same
//! site windows. Aggregation changes where merges happen, never what
//! they produce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod fleetview;
pub mod journal;
pub mod plan;
pub mod relay;
pub mod runtime;
pub mod server;
pub mod sim;
pub mod spec;
pub mod topology;

pub use export::{Backoff, BackoffConfig, ExportShipper, ShipperConfig, ShipperStats, SteadyClock};
pub use journal::{JournalConfig, RecoveryReport};
pub use plan::{QueryRouter, Route, Routed};
pub use relay::{Compose, ExportConfig, ExportMode, FrameOutcome, Relay, RelayConfig, RelayLedger};
pub use runtime::{DrainReport, NodeConfig, NodeReload, NodeRuntime, RuntimeError};
pub use sim::{run_hierarchy, run_hierarchy_with, DrainCadence, HierarchyOptions, HierarchyReport};
pub use spec::{FleetSpec, RelayNodeSpec, SiteSpec, SpecError};
pub use topology::{RelaySpec, RelayTopology, TopologyError};

use flowdist::DistError;

/// Errors of the aggregation tier.
#[derive(Debug)]
pub enum RelayError {
    /// The underlying frame/codec/socket layer failed.
    Dist(DistError),
    /// A frame claimed coverage of a site outside this relay's
    /// expected coverage.
    CoverageViolation {
        /// The offending site.
        site: u16,
    },
    /// A frame claimed a site already covered by a different
    /// downstream — double counting, rejected.
    OverlappingProvenance {
        /// The doubly-claimed site.
        site: u16,
    },
    /// A frame's window span disagrees with the relay's established
    /// span.
    SpanMismatch,
    /// The topology spec is invalid.
    Topology(TopologyError),
}

impl From<DistError> for RelayError {
    fn from(e: DistError) -> Self {
        RelayError::Dist(e)
    }
}

impl From<TopologyError> for RelayError {
    fn from(e: TopologyError) -> Self {
        RelayError::Topology(e)
    }
}

impl core::fmt::Display for RelayError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RelayError::Dist(e) => write!(f, "distribution layer: {e}"),
            RelayError::CoverageViolation { site } => {
                write!(f, "site {site} outside this relay's coverage")
            }
            RelayError::OverlappingProvenance { site } => {
                write!(f, "site {site} already covered by another downstream")
            }
            RelayError::SpanMismatch => f.write_str("window span mismatch"),
            RelayError::Topology(e) => write!(f, "topology: {e}"),
        }
    }
}

impl std::error::Error for RelayError {}
