//! Query routing over a relay hierarchy.
//!
//! The planner implements the journal version's "answer at the lowest
//! tier that covers the scope": given a parsed [`Query`], it inspects
//! the site-set + time-range scope and
//!
//! 1. picks the **smallest-coverage relay** whose stored trees can
//!    compose the scope's live sites — a tier-1 relay for a regional
//!    question (per-site trees), the root for a network-wide one (one
//!    pre-aggregated tree per window and region) — and runs the
//!    ordinary [`QueryEngine`] over that relay's embedded collector
//!    with the scope rewritten to the composing stored keys;
//! 2. falls back to **fan-out** when no single tier composes the
//!    scope (a question straddling regions but naming only part of
//!    each): every owning tier-1 relay contributes its cached
//!    [`flowdist::Collector::merged_view`] for its slice of the
//!    scope, the slices merge structurally, and the query runs on the
//!    merged tree ([`flowquery::run_on_tree`]);
//! 3. answers `bysite` breakdowns per owning relay, since they need
//!    per-site storage no aggregate retains.
//!
//! Sites the scope asks for that no live downstream backs are
//! reported in [`Routed::missing`] instead of failing the query — a
//! dead site degrades coverage, it never wedges the planner.

use crate::relay::Relay;
use crate::topology::RelayTopology;
use flowquery::ast::{Query, Scope};
use flowquery::{run_on_tree, CoverageGap, QueryEngine, QueryOutput, Row};
use flowtree_core::{FlowTree, Metric, PopEst};
use std::collections::{BTreeMap, BTreeSet};

/// Where the planner sent a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// Answered by one relay's embedded collector; `via_aggregates`
    /// is set when any composed stored tree is a pre-aggregated
    /// super-site summary.
    Relay {
        /// Index into the router's relay slice.
        relay: usize,
        /// Whether pre-aggregated trees answered (the cheap tier).
        via_aggregates: bool,
    },
    /// Merged from several tier-1 relays' per-site views.
    FanOut {
        /// The contributing relay indices.
        relays: Vec<usize>,
    },
    /// Per-site breakdown gathered from the owning relays.
    BySite {
        /// The contributing relay indices.
        relays: Vec<usize>,
    },
}

/// A routed answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Routed {
    /// The query output (same shape as the flat engine's).
    pub output: QueryOutput,
    /// Which tier answered.
    pub route: Route,
    /// Scope sites with no live data anywhere in the hierarchy.
    pub missing: Vec<u16>,
    /// Per-window coverage gaps at the consulted tier(s): scope sites
    /// that have data in range but were **not** folded into a
    /// particular window (per-window provenance, not a lifetime
    /// union) — a window missing one site reports exactly that window,
    /// and no longer advertises the site elsewhere.
    pub missing_windows: Vec<CoverageGap>,
}

/// The planner over one hierarchy (relays indexed as in the topology).
#[derive(Debug)]
pub struct QueryRouter<'a> {
    topo: &'a RelayTopology,
    relays: &'a [Relay],
}

impl<'a> QueryRouter<'a> {
    /// Wraps a topology and its instantiated relays (`relays[i]`
    /// corresponds to `topo.relays[i]`).
    pub fn new(topo: &'a RelayTopology, relays: &'a [Relay]) -> QueryRouter<'a> {
        assert_eq!(topo.relays.len(), relays.len(), "one relay per spec");
        QueryRouter { topo, relays }
    }

    /// The display name of a routed relay index.
    pub fn relay_name(&self, idx: usize) -> &str {
        self.relays[idx].name()
    }

    /// Routes and runs one query.
    pub fn run(&self, query: &Query) -> Routed {
        if let Query::BySite { pattern, scope } = query {
            return self.run_bysite(pattern, scope);
        }
        let scope = query.scope();
        let wanted = self.requested_sites(scope);
        let live = self.live_sites();
        let live_wanted: Vec<u16> = wanted
            .iter()
            .copied()
            .filter(|s| live.contains(s))
            .collect();
        let missing: Vec<u16> = wanted
            .iter()
            .copied()
            .filter(|s| !live.contains(s))
            .collect();

        // Cheapest single tier: smallest expected coverage first,
        // deepest tier breaking ties, that (a) is responsible for the
        // scope and (b) composes every live scope site from stored
        // trees.
        let mut order: Vec<usize> = (0..self.relays.len()).collect();
        order.sort_by_key(|&i| {
            (
                self.relays[i].expected_coverage().len(),
                usize::MAX - self.topo.depth_of(i),
                i,
            )
        });
        for idx in order {
            let relay = &self.relays[idx];
            if !wanted.iter().all(|s| relay.expected_coverage().contains(s)) {
                continue;
            }
            let compose = relay.compose(Some(&live_wanted));
            let keys = compose.keys.expect("explicit scope");
            if !compose.missing.is_empty() {
                continue; // this tier cannot compose the scope exactly
            }
            // A composed key is an aggregate iff it is some relay's
            // export id rather than a real site.
            let via_aggregates = keys
                .iter()
                .any(|k| self.topo.relays.iter().any(|r| r.agg_site == *k));
            let rewritten = with_scope_sites(query, Some(keys));
            let output = QueryEngine::new(relay.collector()).run(&rewritten);
            let missing_windows = self.window_gaps(&[(idx, live_wanted.clone())], scope);
            return Routed {
                output,
                route: Route::Relay {
                    relay: idx,
                    via_aggregates,
                },
                missing,
                missing_windows,
            };
        }
        self.run_fanout(query, &live_wanted, missing)
    }

    /// Per-window coverage gaps across the consulted `(relay, scope
    /// slice)` parts: the union of window starts any part stores in
    /// range, each checked against every part's **per-window**
    /// provenance — so a site that skipped one window is reported for
    /// exactly that window. Sites with no in-range data at their part
    /// are excluded (they are in the lifetime `missing` already).
    fn window_gaps(&self, parts: &[(usize, Vec<u16>)], scope: &Scope) -> Vec<CoverageGap> {
        if let [(idx, sites)] = parts {
            // Single consulted relay: the flat engine's coverage-gap
            // sweep over its collector is exactly this computation.
            return QueryEngine::new(self.relays[*idx].collector()).coverage_gaps(&Scope {
                sites: Some(sites.clone()),
                from_ms: scope.from_ms,
                to_ms: scope.to_ms,
            });
        }
        let in_range = |start: u64| start >= scope.from_ms && start < scope.to_ms;
        let mut starts: BTreeSet<u64> = BTreeSet::new();
        for (idx, _) in parts {
            starts.extend(
                self.relays[*idx]
                    .collector()
                    .window_keys()
                    .into_iter()
                    .map(|(start, _)| start)
                    .filter(|&s| in_range(s)),
            );
        }
        let mut gaps: BTreeMap<u64, BTreeSet<u16>> = BTreeMap::new();
        for (idx, sites) in parts {
            let relay = &self.relays[*idx];
            let coverage: Vec<(u64, BTreeSet<u16>)> = starts
                .iter()
                .map(|&s| (s, relay.window_coverage(s)))
                .collect();
            let lifetime: BTreeSet<u16> = coverage
                .iter()
                .flat_map(|(_, cov)| cov.iter().copied())
                .collect();
            for (start, cov) in &coverage {
                for site in sites {
                    if lifetime.contains(site) && !cov.contains(site) {
                        gaps.entry(*start).or_default().insert(*site);
                    }
                }
            }
        }
        gaps.into_iter()
            .map(|(window_start_ms, missing)| CoverageGap {
                window_start_ms,
                missing: missing.into_iter().collect(),
            })
            .collect()
    }

    /// The scope's requested sites (`None` = every topology site).
    fn requested_sites(&self, scope: &Scope) -> Vec<u16> {
        match &scope.sites {
            Some(s) => {
                let mut v = s.clone();
                v.sort_unstable();
                v.dedup();
                v
            }
            None => self.topo.all_sites().into_iter().collect(),
        }
    }

    /// Every site with live data at its owning tier-1 relay.
    fn live_sites(&self) -> BTreeSet<u16> {
        self.relays
            .iter()
            .flat_map(|r| r.live_coverage().into_iter())
            .collect()
    }

    /// Fan-out: each owning tier-1 relay contributes its slice of the
    /// scope from per-site trees.
    fn run_fanout(&self, query: &Query, live_wanted: &[u16], missing: Vec<u16>) -> Routed {
        let scope = query.scope();
        // Group the live scope sites by owning relay.
        let mut parts: Vec<(usize, Vec<u16>)> = Vec::new();
        for &site in live_wanted {
            let Some(owner) = self.topo.owner_of(site) else {
                continue;
            };
            match parts.iter_mut().find(|(i, _)| *i == owner) {
                Some((_, sites)) => sites.push(site),
                None => parts.push((owner, vec![site])),
            }
        }
        let relays: Vec<usize> = parts.iter().map(|(i, _)| *i).collect();
        let missing_windows = self.window_gaps(&parts, scope);
        let output = match query {
            Query::Pop { pattern, .. } => {
                // Exact: per-window estimates are additive across
                // disjoint site slices, so sum the slices.
                let mut acc = PopEst::ZERO;
                for (idx, sites) in &parts {
                    acc += self.relays[*idx].collector().query(
                        pattern,
                        Some(sites),
                        scope.from_ms,
                        scope.to_ms,
                    );
                }
                QueryOutput::Pop(acc)
            }
            _ => {
                // Merge each owner's cached view of its slice, then
                // evaluate on the single merged tree.
                let (schema, cfg) = match parts.first() {
                    Some((idx, _)) => (self.relays[*idx].schema(), self.relays[*idx].tree_cfg()),
                    None => match self.relays.first() {
                        Some(r) => (r.schema(), r.tree_cfg()),
                        None => {
                            return Routed {
                                output: QueryOutput::Table(Vec::new()),
                                route: Route::FanOut { relays },
                                missing,
                                missing_windows,
                            }
                        }
                    },
                };
                let views: Vec<std::sync::Arc<FlowTree>> = parts
                    .iter()
                    .map(|(idx, sites)| {
                        self.relays[*idx].merged_view(Some(sites), scope.from_ms, scope.to_ms)
                    })
                    .collect();
                let refs: Vec<&FlowTree> = views.iter().map(|v| v.as_ref()).collect();
                let mut merged = FlowTree::new(schema, cfg);
                merged.merge_many(&refs).expect("uniform schema");
                run_on_tree(query, &merged).expect("bysite handled separately")
            }
        };
        Routed {
            output,
            route: Route::FanOut { relays },
            missing,
            missing_windows,
        }
    }

    /// Per-site breakdown: one row per requested site, estimated at
    /// its owning relay (zero for sites with no data), ranked like the
    /// flat engine's `bysite`.
    fn run_bysite(&self, pattern: &flowkey::FlowKey, scope: &Scope) -> Routed {
        let wanted = match &scope.sites {
            Some(_) => self.requested_sites(scope),
            None => self.live_sites().into_iter().collect(),
        };
        let live = self.live_sites();
        let missing: Vec<u16> = wanted
            .iter()
            .copied()
            .filter(|s| !live.contains(s))
            .collect();
        let mut relays: Vec<usize> = Vec::new();
        let mut parts: Vec<(usize, Vec<u16>)> = Vec::new();
        let mut rows: Vec<Row> = Vec::new();
        let mut total = 0.0f64;
        let mut per_site: Vec<(u16, PopEst)> = Vec::new();
        for &site in &wanted {
            let est = match self.topo.owner_of(site) {
                Some(owner) => {
                    if !relays.contains(&owner) {
                        relays.push(owner);
                    }
                    match parts.iter_mut().find(|(i, _)| *i == owner) {
                        Some((_, sites)) => sites.push(site),
                        None => parts.push((owner, vec![site])),
                    }
                    self.relays[owner].collector().query(
                        pattern,
                        Some(&[site]),
                        scope.from_ms,
                        scope.to_ms,
                    )
                }
                None => PopEst::ZERO,
            };
            total += est.get(Metric::Packets);
            per_site.push((site, est));
        }
        let total = total.abs().max(f64::MIN_POSITIVE);
        for (site, est) in per_site {
            rows.push(Row {
                key: pattern.with_site(flowkey::Site::Is(site)),
                est,
                share: est.get(Metric::Packets) / total,
            });
        }
        rows.sort_by(|a, b| {
            b.est
                .packets
                .partial_cmp(&a.est.packets)
                .expect("finite")
                .then(a.key.cmp(&b.key))
        });
        Routed {
            output: QueryOutput::Table(rows),
            route: Route::BySite { relays },
            missing,
            missing_windows: self.window_gaps(&parts, scope),
        }
    }
}

/// A copy of `query` with its scope's site filter replaced (time range
/// untouched) — how the planner maps real-site scopes onto a relay's
/// stored keys.
fn with_scope_sites(query: &Query, sites: Option<Vec<u16>>) -> Query {
    let mut q = query.clone();
    let scope = match &mut q {
        Query::Pop { scope, .. }
        | Query::TopK { scope, .. }
        | Query::Drill { scope, .. }
        | Query::Hhh { scope, .. }
        | Query::BySite { scope, .. } => scope,
    };
    scope.sites = sites;
    q
}
