//! The relay-node runtime: everything `relayd` used to inline, as a
//! library.
//!
//! One [`NodeRuntime`] is one deployable aggregation node — ingest
//! listener, query listener, wall-clock export scheduler, durable
//! shipper, journal/spill recovery, retention, stats endpoint — built
//! from one typed [`NodeConfig`] instead of ~450 lines of flag
//! plumbing. `relayd` is now a thin shell over this module, and the
//! `flowctl` launcher boots whole site→relay→root fleets by starting
//! one `NodeRuntime` per spec node (the site-side twin is
//! [`flowdist::runtime::SiteRuntime`]).
//!
//! The operability contract:
//!
//! * **`start`** binds every socket (a `:0` bind resolves; read the
//!   result back from the addr accessors), recovers journal and spill
//!   state, rewinds unacked exports when an upstream exists, and
//!   spawns the scheduler.
//! * **`reload`** applies a [`NodeReload`] — export mode, linger,
//!   retention, scheduler tick — live, without dropping a socket or a
//!   window. The same deltas arrive over the stats endpoint as
//!   `POST /reload` with `key=value` lines.
//! * **`drain`** is the graceful exit: stop accepting downstreams,
//!   run the scheduler down, flush every window with unshipped
//!   content, and push the pending queue through the acknowledged
//!   shipper until it is empty or the deadline passes. A `kill -9`
//!   anywhere in that sequence recovers byte-identical through the
//!   journal — drain uses only the journaled paths.
//! * **`shutdown`** exits without flushing (the journal still makes
//!   it safe; it is just not graceful).
//! * The **stats endpoint** (when configured) serves `GET /health`,
//!   `GET /stats` (plaintext `key value` lines: the full
//!   [`RelayLedger`] including the spill-shed counters, shipper and
//!   spill-queue state, export config) and `POST /reload`.

use crate::export::{ExportShipper, ShipperConfig, ShipperStats};
use crate::journal::{JournalConfig, RecoveryReport};
use crate::plan::QueryRouter;
use crate::relay::{ExportConfig, ExportMode, Relay, RelayConfig, RelayLedger};
use crate::server::{answer_query, serve_acked_ingest};
use crate::topology::{RelaySpec, RelayTopology};
use crate::{BackoffConfig, SteadyClock};
use flowdist::ops::{spawn_ops, OpsHandle, OpsRequest, OpsResponse};
use flowdist::{FsyncPolicy, SpillConfig, SpillQueue, SpillStats};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Everything one relay node needs, as a value. Field-for-field this
/// supersedes `relayd`'s ad-hoc CLI flags; the defaults are the
/// daemon's documented defaults.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Relay name shown in query routes and log lines.
    pub name: String,
    /// The aggregate-site id this node's exports carry.
    pub agg_site: u16,
    /// Real sites this node covers.
    pub sites: Vec<u16>,
    /// TCP bind for summary-frame ingest (`host:0` picks a port).
    pub ingest: String,
    /// TCP bind for text queries.
    pub query: String,
    /// Optional bind for the plaintext stats endpoint.
    pub stats: Option<String>,
    /// Upstream peer to ship exports to (`None` = root: exports are
    /// logged and dropped).
    pub upstream: Option<String>,
    /// Re-export whole windows or structural deltas.
    pub mode: ExportMode,
    /// Wall-clock grace past a window's end before it exports (ms).
    pub linger_ms: u64,
    /// Export-scheduler tick (ms).
    pub drain_every_ms: u64,
    /// Pinned re-aggregation bases kept.
    pub max_bases: usize,
    /// Tree node budget.
    pub budget: usize,
    /// Evict windows older than this (ms; 0 = keep forever).
    pub retention_ms: u64,
    /// Durable journal + export-spill root (`None` = volatile).
    pub state_dir: Option<PathBuf>,
    /// Fsync policy for journal and spill writes.
    pub fsync: FsyncPolicy,
    /// Pending-export spill bound in bytes; overflow sheds oldest.
    pub spill_max_bytes: u64,
    /// First upstream-reconnect backoff (ms).
    pub reconnect_base_ms: u64,
    /// Upstream-reconnect backoff ceiling (ms).
    pub reconnect_max_ms: u64,
    /// Recycle an upstream connection whose acks went silent (ms).
    pub ack_stall_ms: u64,
    /// Prefix for the node's log lines (default `node[{name}]`).
    pub log_tag: Option<String>,
}

impl NodeConfig {
    /// The daemon defaults for a node called `name`.
    pub fn new(name: impl Into<String>) -> NodeConfig {
        NodeConfig {
            name: name.into(),
            agg_site: 1_000,
            sites: vec![0, 1, 2, 3],
            ingest: "127.0.0.1:0".into(),
            query: "127.0.0.1:0".into(),
            stats: None,
            upstream: None,
            mode: ExportMode::Delta,
            linger_ms: 2_000,
            drain_every_ms: 1_000,
            max_bases: 64,
            budget: 1 << 20,
            retention_ms: 86_400_000,
            state_dir: None,
            fsync: FsyncPolicy::Never,
            spill_max_bytes: 256 << 20,
            reconnect_base_ms: 100,
            reconnect_max_ms: 5_000,
            ack_stall_ms: 10_000,
            log_tag: None,
        }
    }
}

/// The knobs [`NodeRuntime::reload`] applies without a restart. Build
/// one from the node's current state with [`NodeRuntime::reloadable`],
/// change what the new spec says, and apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeReload {
    /// Export mode (full vs delta).
    pub mode: ExportMode,
    /// Export linger (ms).
    pub linger_ms: u64,
    /// Retention horizon (ms; 0 = keep forever).
    pub retention_ms: u64,
    /// Scheduler tick (ms).
    pub drain_every_ms: u64,
    /// Pinned re-aggregation bases kept.
    pub max_bases: usize,
}

/// Why a node failed to start.
#[derive(Debug)]
pub enum RuntimeError {
    /// The node config is structurally invalid.
    Invalid(String),
    /// A socket failed to bind.
    Bind {
        /// Which listener (`ingest`, `query`, `stats`).
        what: &'static str,
        /// The address that failed.
        addr: String,
        /// The bind error.
        err: std::io::Error,
    },
    /// The journal could not be opened/recovered.
    Journal(String),
    /// The export spill queue could not be opened.
    Spill(String),
}

impl core::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RuntimeError::Invalid(w) => write!(f, "invalid node config: {w}"),
            RuntimeError::Bind { what, addr, err } => {
                write!(f, "cannot bind {what} {addr}: {err}")
            }
            RuntimeError::Journal(e) => write!(f, "cannot open journal: {e}"),
            RuntimeError::Spill(e) => write!(f, "cannot open spill dir: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// What a graceful [`NodeRuntime::drain`] hands back.
#[derive(Debug)]
pub struct DrainReport {
    /// Summaries flushed out of the relay at drain time (windows that
    /// still had unshipped content).
    pub flushed: usize,
    /// Export frames still unacknowledged when the deadline passed
    /// (0 = everything pending reached the upstream and was acked, or
    /// the node has no upstream).
    pub pending_at_exit: usize,
    /// The final ledger.
    pub ledger: RelayLedger,
}

/// Runtime logging that survives a closed stderr: a supervisor (or a
/// test harness) dropping the pipe must degrade logging, never kill
/// the node mid-export (`eprintln!` panics on a broken pipe).
fn log(msg: core::fmt::Arguments<'_>) {
    use std::io::Write as _;
    let _ = writeln!(std::io::stderr(), "{msg}");
}

/// Parameters the scheduler re-reads every tick (reload targets that
/// do not live inside [`Relay`]'s own export config).
#[derive(Debug, Clone, Copy)]
struct SchedParams {
    retention_ms: u64,
    drain_every_ms: u64,
}

/// State owned by the scheduler pass, shared with drain and the stats
/// endpoint.
struct SchedState {
    shipper: Option<ExportShipper>,
    journal_fault_logged: bool,
}

/// One running relay node (see the module docs).
pub struct NodeRuntime {
    name: String,
    tag: String,
    ingest_addr: SocketAddr,
    query_addr: SocketAddr,
    relay: Arc<Mutex<Relay>>,
    sched: Arc<Mutex<SchedState>>,
    params: Arc<Mutex<SchedParams>>,
    clock: SteadyClock,
    /// `(stopping, wake)` — the scheduler parks on the condvar with
    /// the tick as timeout, so shutdown and reload wake it instantly.
    run: Arc<(Mutex<bool>, Condvar)>,
    accept_stop: Arc<AtomicBool>,
    ingest_join: Option<std::thread::JoinHandle<()>>,
    query_join: Option<std::thread::JoinHandle<()>>,
    sched_join: Option<std::thread::JoinHandle<()>>,
    ops: Option<OpsHandle>,
    recovery: Option<RecoveryReport>,
    rewound: usize,
    upstream: Option<String>,
}

impl NodeRuntime {
    /// Boots the node: binds sockets, recovers state, spawns the
    /// listener and scheduler threads. Returns once every socket is
    /// bound and recovery is complete.
    pub fn start(cfg: NodeConfig) -> Result<NodeRuntime, RuntimeError> {
        if cfg.sites.is_empty() {
            return Err(RuntimeError::Invalid(
                "a relay node must cover at least one site".into(),
            ));
        }
        let tag = cfg
            .log_tag
            .clone()
            .unwrap_or_else(|| format!("node[{}]", cfg.name));

        // A solo topology so the query router can plan over this node.
        let topo = RelayTopology {
            relays: vec![RelaySpec {
                name: cfg.name.clone(),
                parent: None,
                agg_site: cfg.agg_site,
                sites: cfg.sites.clone(),
            }],
        };
        topo.validate()
            .map_err(|e| RuntimeError::Invalid(e.to_string()))?;
        let relay_cfg = RelayConfig {
            name: cfg.name.clone(),
            agg_site: cfg.agg_site,
            expected: cfg.sites.clone(),
            schema: flowkey::Schema::five_feature(),
            tree: flowtree_core::Config::with_budget(cfg.budget),
            export: ExportConfig {
                mode: cfg.mode,
                linger_ms: cfg.linger_ms,
                max_bases: cfg.max_bases,
                ..ExportConfig::default()
            },
        };
        let (mut relay, recovery) = match &cfg.state_dir {
            Some(dir) => {
                let jcfg = JournalConfig {
                    fsync: cfg.fsync,
                    ..JournalConfig::default()
                };
                let (relay, report) = Relay::open_journaled(relay_cfg, &dir.join("journal"), jcfg)
                    .map_err(|e| RuntimeError::Journal(e.to_string()))?;
                log(format_args!(
                    "{tag}: recovered gen {} — {} snapshot slots, {} WAL records, {} torn bytes truncated",
                    report.generation, report.snapshot_slots, report.wal_records, report.torn_bytes
                ));
                (relay, Some(report))
            }
            None => (Relay::new(relay_cfg), None),
        };
        // Exports drained by a dead process but never acknowledged may
        // or may not have reached the upstream; rewinding re-exports
        // full rebasing frames the upstream deduplicates idempotently.
        // A root (no upstream) must NOT rewind — nobody is missing
        // anything.
        let mut rewound = 0;
        if cfg.upstream.is_some() {
            rewound = relay.rewind_unacked_exports();
            if rewound > 0 {
                log(format_args!(
                    "{tag}: rewound {rewound} unacked exports; their windows will rebase"
                ));
            }
        }
        let relay = Arc::new(Mutex::new(relay));

        // The durable shipper (only with an upstream).
        let shipper = match &cfg.upstream {
            Some(addr) => {
                let spill_cfg = SpillConfig {
                    max_bytes: cfg.spill_max_bytes,
                    fsync: cfg.fsync,
                    ..SpillConfig::default()
                };
                let spill = match &cfg.state_dir {
                    Some(dir) => {
                        let q = SpillQueue::open(&dir.join("spill"), spill_cfg)
                            .map_err(|e| RuntimeError::Spill(e.to_string()))?;
                        if !q.is_empty() {
                            log(format_args!(
                                "{tag}: recovered {} spilled exports, resending",
                                q.len()
                            ));
                        }
                        q
                    }
                    None => SpillQueue::in_memory(spill_cfg),
                };
                Some(ExportShipper::new(
                    ShipperConfig {
                        upstream: addr.clone(),
                        handshake_ms: 1_000,
                        stall_ms: cfg.ack_stall_ms,
                        tree: flowtree_core::Config::with_budget(cfg.budget),
                        backoff: BackoffConfig {
                            base_ms: cfg.reconnect_base_ms,
                            max_ms: cfg.reconnect_max_ms,
                        },
                    },
                    spill,
                    u64::from(cfg.agg_site) ^ (u64::from(std::process::id()) << 17),
                ))
            }
            None => None,
        };
        let sched = Arc::new(Mutex::new(SchedState {
            shipper,
            journal_fault_logged: false,
        }));
        let params = Arc::new(Mutex::new(SchedParams {
            retention_ms: cfg.retention_ms,
            drain_every_ms: cfg.drain_every_ms.max(1),
        }));

        // --- ingest listener (accept-poll, so drain can close it) ----
        let accept_stop = Arc::new(AtomicBool::new(false));
        let ingest = TcpListener::bind(&cfg.ingest).map_err(|err| RuntimeError::Bind {
            what: "ingest",
            addr: cfg.ingest.clone(),
            err,
        })?;
        let ingest_addr = ingest.local_addr().map_err(|err| RuntimeError::Bind {
            what: "ingest",
            addr: cfg.ingest.clone(),
            err,
        })?;
        let ingest_join = {
            let relay = Arc::clone(&relay);
            let stop = Arc::clone(&accept_stop);
            spawn_accept_loop("relay-ingest", ingest, stop, move |mut conn| {
                let relay = Arc::clone(&relay);
                let _ = std::thread::Builder::new()
                    .name("relay-ingest-conn".into())
                    .spawn(move || {
                        // Acknowledged ingest: per-frame ack /
                        // rebase-request replies once the peer says
                        // hello; pure one-way v1–v3 senders get
                        // exactly the legacy silence. Locks the relay
                        // per frame, not per connection.
                        let _ = serve_acked_ingest(&mut conn, &relay);
                    });
            })
            .map_err(|err| RuntimeError::Bind {
                what: "ingest",
                addr: cfg.ingest.clone(),
                err,
            })?
        };

        // --- query listener ------------------------------------------
        let queries = TcpListener::bind(&cfg.query).map_err(|err| RuntimeError::Bind {
            what: "query",
            addr: cfg.query.clone(),
            err,
        })?;
        let query_addr = queries.local_addr().map_err(|err| RuntimeError::Bind {
            what: "query",
            addr: cfg.query.clone(),
            err,
        })?;
        let query_join = {
            let relay = Arc::clone(&relay);
            let topo = topo.clone();
            let stop = Arc::clone(&accept_stop);
            spawn_accept_loop("relay-query", queries, stop, move |conn| {
                let relay = Arc::clone(&relay);
                let topo = topo.clone();
                let _ = std::thread::Builder::new()
                    .name("relay-query-conn".into())
                    .spawn(move || {
                        // Lock per *request*, never per connection: an
                        // idle client sitting on an open connection
                        // must not starve ingest or the export
                        // scheduler. serve_framed keeps one reader for
                        // the connection's lifetime, so pipelined
                        // frames survive its read-ahead.
                        let _ = flowdist::framing::serve_framed(conn, |frame| {
                            let guard = relay.lock().expect("relay lock");
                            let relays = std::slice::from_ref(&*guard);
                            let router = QueryRouter::new(&topo, relays);
                            Some(answer_query(&router, &frame))
                        });
                    });
            })
            .map_err(|err| RuntimeError::Bind {
                what: "query",
                addr: cfg.query.clone(),
                err,
            })?
        };

        // --- export scheduler ----------------------------------------
        let clock = SteadyClock::new();
        let run = Arc::new((Mutex::new(false), Condvar::new()));
        let sched_join = {
            let relay = Arc::clone(&relay);
            let sched = Arc::clone(&sched);
            let params = Arc::clone(&params);
            let run = Arc::clone(&run);
            let clock = clock.clone();
            let tag = tag.clone();
            std::thread::Builder::new()
                .name("relay-sched".into())
                .spawn(move || {
                    let (stop_lock, wake) = &*run;
                    loop {
                        let tick = params.lock().expect("params lock").drain_every_ms;
                        let stopped = {
                            let guard = stop_lock.lock().expect("run lock");
                            let (guard, _) = wake
                                .wait_timeout(guard, Duration::from_millis(tick))
                                .expect("run lock");
                            *guard
                        };
                        if stopped {
                            return;
                        }
                        let p = *params.lock().expect("params lock");
                        scheduler_pass(
                            &relay,
                            &mut sched.lock().expect("sched lock"),
                            &p,
                            &clock,
                            &tag,
                        );
                    }
                })
                .map_err(|err| RuntimeError::Bind {
                    what: "ingest",
                    addr: "scheduler thread".into(),
                    err,
                })?
        };

        // --- stats endpoint ------------------------------------------
        let ops = match &cfg.stats {
            Some(addr) => {
                let relay = Arc::clone(&relay);
                let sched = Arc::clone(&sched);
                let params = Arc::clone(&params);
                let run = Arc::clone(&run);
                let name = cfg.name.clone();
                let is_root = cfg.upstream.is_none();
                let agg_site = cfg.agg_site;
                Some(
                    spawn_ops(addr, move |req| {
                        relay_ops(&name, agg_site, is_root, &relay, &sched, &params, &run, req)
                    })
                    .map_err(|err| RuntimeError::Bind {
                        what: "stats",
                        addr: addr.clone(),
                        err,
                    })?,
                )
            }
            None => None,
        };

        Ok(NodeRuntime {
            name: cfg.name,
            tag,
            ingest_addr,
            query_addr,
            relay,
            sched,
            params,
            clock,
            run,
            accept_stop,
            ingest_join: Some(ingest_join),
            query_join: Some(query_join),
            sched_join: Some(sched_join),
            ops,
            recovery,
            rewound,
            upstream: cfg.upstream,
        })
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bound ingest address.
    pub fn ingest_addr(&self) -> SocketAddr {
        self.ingest_addr
    }

    /// The bound query address.
    pub fn query_addr(&self) -> SocketAddr {
        self.query_addr
    }

    /// The bound stats address, if a stats endpoint was configured.
    pub fn stats_addr(&self) -> Option<SocketAddr> {
        self.ops.as_ref().map(|o| o.local_addr())
    }

    /// The journal recovery report, if the node booted from a state
    /// dir.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Unacked exports rewound at startup.
    pub fn rewound(&self) -> usize {
        self.rewound
    }

    /// A copy of the relay's work ledger.
    pub fn ledger(&self) -> RelayLedger {
        *self.relay.lock().expect("relay lock").ledger()
    }

    /// Export frames currently pending upstream acknowledgment.
    pub fn pending_len(&self) -> usize {
        self.sched
            .lock()
            .expect("sched lock")
            .shipper
            .as_ref()
            .map(|s| s.pending_len())
            .unwrap_or(0)
    }

    /// The node's current reloadable knobs (the baseline to mutate
    /// for a [`NodeRuntime::reload`]).
    pub fn reloadable(&self) -> NodeReload {
        let p = *self.params.lock().expect("params lock");
        let relay = self.relay.lock().expect("relay lock");
        let e = relay.export_config();
        NodeReload {
            mode: e.mode,
            linger_ms: e.linger_ms,
            retention_ms: p.retention_ms,
            drain_every_ms: p.drain_every_ms,
            max_bases: e.max_bases,
        }
    }

    /// Applies a live reconfiguration: export mode/linger/base bound
    /// through [`Relay::set_export_config`], retention and tick
    /// through the scheduler. Takes effect on the next pass (the
    /// scheduler is woken immediately).
    pub fn reload(&self, r: NodeReload) {
        {
            let mut relay = self.relay.lock().expect("relay lock");
            let export = ExportConfig {
                mode: r.mode,
                linger_ms: r.linger_ms,
                max_bases: r.max_bases.max(1),
                ..*relay.export_config()
            };
            relay.set_export_config(export);
        }
        {
            let mut p = self.params.lock().expect("params lock");
            p.retention_ms = r.retention_ms;
            p.drain_every_ms = r.drain_every_ms.max(1);
        }
        self.run.1.notify_all();
        log(format_args!(
            "{}: reloaded — mode {:?}, linger {}ms, retention {}ms, tick {}ms, max-bases {}",
            self.tag, r.mode, r.linger_ms, r.retention_ms, r.drain_every_ms, r.max_bases
        ));
    }

    /// Runs one scheduler pass synchronously (what `--oneshot` and
    /// tests use instead of waiting out a tick).
    pub fn tick_now(&self) {
        let p = *self.params.lock().expect("params lock");
        scheduler_pass(
            &self.relay,
            &mut self.sched.lock().expect("sched lock"),
            &p,
            &self.clock,
            &self.tag,
        );
    }

    /// Gracefully drains and stops the node (see the module docs).
    /// `deadline` bounds how long the flush may chase an unreachable
    /// upstream; whatever is still pending then stays in the spill
    /// queue (journaled, recovered by the next start).
    pub fn drain(mut self, deadline: Duration) -> DrainReport {
        log(format_args!("{}: draining", self.tag));
        // 1. Stop intake: no new downstream (or query) connections.
        self.stop_accepting();
        // 2. Stop the scheduler so this drain is the only export path.
        self.stop_scheduler();
        // 3. Flush every window with unshipped content through the
        //    normal shipper path (spill-before-send, ack-to-release) —
        //    the same journaled code a crash recovers through.
        let due = self.relay.lock().expect("relay lock").flush_exports();
        let flushed = due.len();
        let mut sched = self.sched.lock().expect("sched lock");
        let pending_at_exit = match sched.shipper.as_mut() {
            Some(shipper) => {
                let before = shipper.spill_stats();
                for e in &due {
                    let shed = shipper.enqueue(e);
                    if !shed.is_empty() {
                        let mut guard = self.relay.lock().expect("relay lock");
                        for w in &shed {
                            guard.mark_unshipped(*w);
                        }
                    }
                }
                note_sheds(&self.relay, &before, &shipper.spill_stats());
                let limit = Instant::now() + deadline;
                while shipper.pending_len() > 0 && Instant::now() < limit {
                    shipper.pump(&self.relay, self.clock.now_ms());
                    if shipper.pending_len() == 0 {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                shipper.pending_len()
            }
            None => {
                if flushed > 0 {
                    log(format_args!(
                        "{}: drained {flushed} final exports — no upstream, dropped",
                        self.tag
                    ));
                }
                0
            }
        };
        drop(sched);
        let ledger = *self.relay.lock().expect("relay lock").ledger();
        self.join_listeners();
        if let Some(ops) = self.ops.take() {
            ops.stop();
        }
        log(format_args!(
            "{}: drain complete — {flushed} flushed, {pending_at_exit} still pending",
            self.tag
        ));
        DrainReport {
            flushed,
            pending_at_exit,
            ledger,
        }
    }

    /// Stops the node without flushing. The journal (if any) keeps
    /// this safe; it is just not graceful.
    pub fn shutdown(mut self) {
        self.stop_accepting();
        self.stop_scheduler();
        self.join_listeners();
        if let Some(ops) = self.ops.take() {
            ops.stop();
        }
    }

    /// Whether this node ships upstream (false = root).
    pub fn has_upstream(&self) -> bool {
        self.upstream.is_some()
    }

    fn stop_accepting(&mut self) {
        self.accept_stop.store(true, Ordering::Relaxed);
    }

    fn stop_scheduler(&mut self) {
        *self.run.0.lock().expect("run lock") = true;
        self.run.1.notify_all();
        if let Some(j) = self.sched_join.take() {
            let _ = j.join();
        }
    }

    fn join_listeners(&mut self) {
        for j in [self.ingest_join.take(), self.query_join.take()]
            .into_iter()
            .flatten()
        {
            let _ = j.join();
        }
    }
}

impl Drop for NodeRuntime {
    fn drop(&mut self) {
        self.stop_accepting();
        self.stop_scheduler();
        self.join_listeners();
        if let Some(ops) = self.ops.take() {
            ops.stop();
        }
    }
}

/// Accept-poll loop: a nonblocking listener polled against a stop
/// flag, so stopping a node actually releases its ports (a thread
/// parked in `accept` would hold them until process exit).
fn spawn_accept_loop<F>(
    name: &str,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    on_conn: F,
) -> std::io::Result<std::thread::JoinHandle<()>>
where
    F: Fn(std::net::TcpStream) + Send + 'static,
{
    listener.set_nonblocking(true)?;
    std::thread::Builder::new()
        .name(name.into())
        .spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((conn, _)) => {
                        let _ = conn.set_nonblocking(false);
                        on_conn(conn);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        })
}

/// One scheduler pass: drain due windows, ship (or log-and-drop at a
/// root), apply retention, surface a degraded journal once.
fn scheduler_pass(
    relay: &Arc<Mutex<Relay>>,
    sched: &mut SchedState,
    params: &SchedParams,
    clock: &SteadyClock,
    tag: &str,
) {
    let now = clock.now_ms();
    let due = relay.lock().expect("relay lock").drain_exports_at(now);
    match sched.shipper.as_mut() {
        Some(shipper) => {
            let before = shipper.spill_stats();
            for e in &due {
                let shed = shipper.enqueue(e);
                if !shed.is_empty() {
                    let mut guard = relay.lock().expect("relay lock");
                    for w in &shed {
                        guard.mark_unshipped(*w);
                    }
                    drop(guard);
                    log(format_args!(
                        "{tag}: spill bound shed {} old exports; their windows will rebase",
                        shed.len()
                    ));
                }
            }
            note_sheds(relay, &before, &shipper.spill_stats());
            shipper.pump(relay, now);
        }
        None => {
            for e in &due {
                log(format_args!(
                    "{tag}: export window {} epoch {} ({:?}, {} bytes) — no upstream, dropped",
                    e.window,
                    e.epoch.map(|h| h.epoch).unwrap_or(0),
                    e.kind,
                    e.encoded_size()
                ));
            }
        }
    }
    if params.retention_ms > 0 {
        let cutoff = now.saturating_sub(params.retention_ms);
        let evicted = relay
            .lock()
            .expect("relay lock")
            .evict_windows_before(cutoff);
        if evicted > 0 {
            log(format_args!(
                "{tag}: retention evicted {evicted} windows older than {cutoff}ms"
            ));
        }
    }
    if !sched.journal_fault_logged {
        if let Some(err) = relay.lock().expect("relay lock").journal_error() {
            log(format_args!(
                "{tag}: JOURNAL DEGRADED (still serving, no longer crash-safe): {err}"
            ));
            sched.journal_fault_logged = true;
        }
    }
}

/// Feeds spill-shed deltas across one enqueue batch into the ledger
/// (PR-6 counted sheds only inside the queue; now they are readable).
fn note_sheds(relay: &Arc<Mutex<Relay>>, before: &SpillStats, after: &SpillStats) {
    let frames = after.shed_frames.saturating_sub(before.shed_frames);
    let bytes = after.shed_bytes.saturating_sub(before.shed_bytes);
    if frames > 0 || bytes > 0 {
        relay
            .lock()
            .expect("relay lock")
            .note_spill_shed(frames, bytes);
    }
}

/// Renders the relay node's ops surface.
#[allow(clippy::too_many_arguments)]
fn relay_ops(
    name: &str,
    agg_site: u16,
    is_root: bool,
    relay: &Arc<Mutex<Relay>>,
    sched: &Arc<Mutex<SchedState>>,
    params: &Arc<Mutex<SchedParams>>,
    run: &Arc<(Mutex<bool>, Condvar)>,
    req: &OpsRequest,
) -> OpsResponse {
    let role = if is_root { "root" } else { "relay" };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => {
            let healthy = relay.lock().expect("relay lock").journal_error().is_none();
            OpsResponse::ok(format!(
                "ok {healthy}\nrole {role}\nname {name}\nagg_site {agg_site}"
            ))
        }
        ("GET", "/stats" | "/") => {
            let (ledger, export, journal_degraded) = {
                let guard = relay.lock().expect("relay lock");
                (
                    *guard.ledger(),
                    *guard.export_config(),
                    guard.journal_error().is_some(),
                )
            };
            let p = *params.lock().expect("params lock");
            let (pending, connected, acked_mode, shipper, spill) = {
                let guard = sched.lock().expect("sched lock");
                match guard.shipper.as_ref() {
                    Some(s) => (
                        s.pending_len(),
                        s.is_connected(),
                        s.acked_mode(),
                        Some(s.stats()),
                        Some(s.spill_stats()),
                    ),
                    None => (0, false, None, None, None),
                }
            };
            let mut body = String::with_capacity(1024);
            let mut line = |k: &str, v: String| {
                body.push_str(k);
                body.push(' ');
                body.push_str(&v);
                body.push('\n');
            };
            line("role", role.into());
            line("name", name.into());
            line("agg_site", agg_site.to_string());
            line("mode", format!("{:?}", export.mode).to_lowercase());
            line("linger_ms", export.linger_ms.to_string());
            line("retention_ms", p.retention_ms.to_string());
            line("drain_every_ms", p.drain_every_ms.to_string());
            line("max_bases", export.max_bases.to_string());
            line("journal_degraded", journal_degraded.to_string());
            line("frames", ledger.frames.to_string());
            line("site_frames", ledger.site_frames.to_string());
            line("agg_frames", ledger.agg_frames.to_string());
            line("rejected", ledger.rejected.to_string());
            line("replayed", ledger.replayed.to_string());
            line("exported", ledger.exported.to_string());
            line("exported_bytes", ledger.exported_bytes.to_string());
            line("full_exports", ledger.full_exports.to_string());
            line("delta_exports", ledger.delta_exports.to_string());
            line("delta_fallbacks", ledger.delta_fallbacks.to_string());
            line("base_losses", ledger.base_losses.to_string());
            line("late_downstream", ledger.late_downstream.to_string());
            line("rebase_requests", ledger.rebase_requests.to_string());
            line("rebase_rewinds", ledger.rebase_rewinds.to_string());
            line("reconnect_attempts", ledger.reconnect_attempts.to_string());
            line("reconnect_failures", ledger.reconnect_failures.to_string());
            line("backoff_ms_total", ledger.backoff_ms_total.to_string());
            line("spill_sheds", ledger.spill_sheds.to_string());
            line("spill_shed_bytes", ledger.spill_shed_bytes.to_string());
            line("export_pending", pending.to_string());
            line("upstream_connected", connected.to_string());
            line(
                "acked_mode",
                match acked_mode {
                    Some(true) => "acked".into(),
                    Some(false) => "legacy".into(),
                    None => "none".into(),
                },
            );
            if let Some(s) = shipper {
                render_shipper(&mut line, &s);
            }
            if let Some(s) = spill {
                line("spill_pushed_frames", s.pushed_frames.to_string());
                line("spill_pushed_bytes", s.pushed_bytes.to_string());
                line("spill_acked_floor", s.acked_frames.to_string());
                line("spill_recovered_frames", s.recovered_frames.to_string());
                line("spill_torn_bytes", s.torn_bytes.to_string());
                line("spill_io_errors", s.io_errors.to_string());
            }
            OpsResponse::ok(body)
        }
        ("POST", "/reload") => match parse_reload_body(&req.body, relay, params) {
            Ok(applied) => {
                run.1.notify_all();
                OpsResponse::ok(applied)
            }
            Err(e) => OpsResponse::bad_request(e),
        },
        _ => OpsResponse::not_found(),
    }
}

fn render_shipper(line: &mut impl FnMut(&str, String), s: &ShipperStats) {
    line("ship_enqueued", s.enqueued.to_string());
    line("ship_sent_frames", s.sent_frames.to_string());
    line("ship_sent_bytes", s.sent_bytes.to_string());
    line("ship_acked_frames", s.acked_frames.to_string());
    line("ship_legacy_released", s.legacy_released.to_string());
    line("ship_rebase_honored", s.rebase_honored.to_string());
    line("ship_stall_recycles", s.stall_recycles.to_string());
    line("ship_handshakes", s.handshakes.to_string());
    line("ship_legacy_sessions", s.legacy_sessions.to_string());
}

/// Applies a `POST /reload` body (`key=value` lines; keys `mode`,
/// `linger-ms`, `retention-ms`, `drain-every-ms`, `max-bases`) to the
/// live node. Unknown keys fail the whole request so a typoed reload
/// never half-applies silently.
fn parse_reload_body(
    body: &str,
    relay: &Arc<Mutex<Relay>>,
    params: &Arc<Mutex<SchedParams>>,
) -> Result<String, String> {
    let mut relay_guard = relay.lock().expect("relay lock");
    let mut export = *relay_guard.export_config();
    let mut p = *params.lock().expect("params lock");
    let mut applied = Vec::new();
    for raw in body.lines() {
        let lineno = raw.trim();
        if lineno.is_empty() || lineno.starts_with('#') {
            continue;
        }
        let Some((k, v)) = lineno.split_once('=') else {
            return Err(format!("malformed reload line: {lineno}"));
        };
        let (k, v) = (k.trim(), v.trim());
        match k {
            "mode" => {
                export.mode = match v {
                    "full" => ExportMode::Full,
                    "delta" => ExportMode::Delta,
                    _ => return Err(format!("mode must be full or delta, got {v}")),
                }
            }
            "linger-ms" => export.linger_ms = parse_u64(k, v)?,
            "max-bases" => export.max_bases = parse_u64(k, v)?.max(1) as usize,
            "retention-ms" => p.retention_ms = parse_u64(k, v)?,
            "drain-every-ms" => p.drain_every_ms = parse_u64(k, v)?.max(1),
            _ => return Err(format!("unknown reload key: {k}")),
        }
        applied.push(format!("{k}={v}"));
    }
    relay_guard.set_export_config(export);
    *params.lock().expect("params lock") = p;
    Ok(if applied.is_empty() {
        "unchanged".into()
    } else {
        format!("applied {}", applied.join(" "))
    })
}

fn parse_u64(k: &str, v: &str) -> Result<u64, String> {
    v.parse()
        .map_err(|_| format!("{k} must be an integer, got {v}"))
}
