//! The relay-node runtime: everything `relayd` used to inline, as a
//! library.
//!
//! One [`NodeRuntime`] is one deployable aggregation node — ingest
//! listener, query listener, wall-clock export scheduler, durable
//! shipper, journal/spill recovery, retention, stats endpoint — built
//! from one typed [`NodeConfig`] instead of ~450 lines of flag
//! plumbing. `relayd` is now a thin shell over this module, and the
//! `flowctl` launcher boots whole site→relay→root fleets by starting
//! one `NodeRuntime` per spec node (the site-side twin is
//! [`flowdist::runtime::SiteRuntime`]).
//!
//! The operability contract:
//!
//! * **`start`** binds every socket (a `:0` bind resolves; read the
//!   result back from the addr accessors), recovers journal and spill
//!   state, rewinds unacked exports when an upstream exists, and
//!   spawns the scheduler.
//! * **`reload`** applies a [`NodeReload`] — export mode, linger,
//!   retention, scheduler tick — live, without dropping a socket or a
//!   window. The same deltas arrive over the stats endpoint as
//!   `POST /reload` with `key=value` lines.
//! * **`drain`** is the graceful exit: stop accepting downstreams,
//!   run the scheduler down, flush every window with unshipped
//!   content, and push the pending queue through the acknowledged
//!   shipper until it is empty or the deadline passes. A `kill -9`
//!   anywhere in that sequence recovers byte-identical through the
//!   journal — drain uses only the journaled paths.
//! * **`shutdown`** exits without flushing (the journal still makes
//!   it safe; it is just not graceful).
//! * The **stats endpoint** (when configured) serves `GET /health`,
//!   `GET /stats` (plaintext `key value` lines: the full
//!   [`RelayLedger`] including the spill-shed counters, shipper and
//!   spill-queue state, export config) and `POST /reload`.

use crate::export::{ExportShipper, ShipperConfig, ShipperStats};
use crate::journal::{JournalConfig, RecoveryReport};
use crate::plan::QueryRouter;
use crate::relay::{ExportConfig, ExportMode, Relay, RelayConfig, RelayLedger};
use crate::server::{answer_query, serve_acked_ingest_timed};
use crate::topology::{RelaySpec, RelayTopology};
use crate::{BackoffConfig, SteadyClock};
use flowdist::ops::{spawn_ops, OpsHandle, OpsRequest, OpsResponse};
use flowdist::runtime::health_tail;
use flowdist::{FsyncPolicy, SpillConfig, SpillQueue, SpillStats};
use flowmetrics::{EventRing, KvValue, Registry, Stopwatch};
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Everything one relay node needs, as a value. Field-for-field this
/// supersedes `relayd`'s ad-hoc CLI flags; the defaults are the
/// daemon's documented defaults.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Relay name shown in query routes and log lines.
    pub name: String,
    /// The aggregate-site id this node's exports carry.
    pub agg_site: u16,
    /// Real sites this node covers.
    pub sites: Vec<u16>,
    /// TCP bind for summary-frame ingest (`host:0` picks a port).
    pub ingest: String,
    /// TCP bind for text queries.
    pub query: String,
    /// Optional bind for the plaintext stats endpoint.
    pub stats: Option<String>,
    /// Upstream peer to ship exports to (`None` = root: exports are
    /// logged and dropped).
    pub upstream: Option<String>,
    /// Re-export whole windows or structural deltas.
    pub mode: ExportMode,
    /// Wall-clock grace past a window's end before it exports (ms).
    pub linger_ms: u64,
    /// Export-scheduler tick (ms).
    pub drain_every_ms: u64,
    /// Pinned re-aggregation bases kept.
    pub max_bases: usize,
    /// Total tree nodes the pinned bases may hold together — the
    /// memory-honest bound on base state (a few huge bases cost more
    /// than many small ones; see `ExportConfig::max_base_nodes`).
    pub max_base_nodes: usize,
    /// Tree node budget.
    pub budget: usize,
    /// Evict windows older than this (ms; 0 = keep forever).
    pub retention_ms: u64,
    /// Durable journal + export-spill root (`None` = volatile).
    pub state_dir: Option<PathBuf>,
    /// Fsync policy for journal and spill writes.
    pub fsync: FsyncPolicy,
    /// Pending-export spill bound in bytes; overflow sheds oldest.
    pub spill_max_bytes: u64,
    /// First upstream-reconnect backoff (ms).
    pub reconnect_base_ms: u64,
    /// Upstream-reconnect backoff ceiling (ms).
    pub reconnect_max_ms: u64,
    /// Recycle an upstream connection whose acks went silent (ms).
    pub ack_stall_ms: u64,
    /// Prefix for the node's log lines (default `node[{name}]`).
    pub log_tag: Option<String>,
}

impl NodeConfig {
    /// The daemon defaults for a node called `name`.
    pub fn new(name: impl Into<String>) -> NodeConfig {
        NodeConfig {
            name: name.into(),
            agg_site: 1_000,
            sites: vec![0, 1, 2, 3],
            ingest: "127.0.0.1:0".into(),
            query: "127.0.0.1:0".into(),
            stats: None,
            upstream: None,
            mode: ExportMode::Delta,
            linger_ms: 2_000,
            drain_every_ms: 1_000,
            max_bases: 64,
            max_base_nodes: ExportConfig::default().max_base_nodes,
            budget: 1 << 20,
            retention_ms: 86_400_000,
            state_dir: None,
            fsync: FsyncPolicy::Never,
            spill_max_bytes: 256 << 20,
            reconnect_base_ms: 100,
            reconnect_max_ms: 5_000,
            ack_stall_ms: 10_000,
            log_tag: None,
        }
    }
}

/// The knobs [`NodeRuntime::reload`] applies without a restart. Build
/// one from the node's current state with [`NodeRuntime::reloadable`],
/// change what the new spec says, and apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeReload {
    /// Export mode (full vs delta).
    pub mode: ExportMode,
    /// Export linger (ms).
    pub linger_ms: u64,
    /// Retention horizon (ms; 0 = keep forever).
    pub retention_ms: u64,
    /// Scheduler tick (ms).
    pub drain_every_ms: u64,
    /// Pinned re-aggregation bases kept.
    pub max_bases: usize,
    /// Total node budget across the pinned bases.
    pub max_base_nodes: usize,
}

/// Why a node failed to start.
#[derive(Debug)]
pub enum RuntimeError {
    /// The node config is structurally invalid.
    Invalid(String),
    /// A socket failed to bind.
    Bind {
        /// Which listener (`ingest`, `query`, `stats`).
        what: &'static str,
        /// The address that failed.
        addr: String,
        /// The bind error.
        err: std::io::Error,
    },
    /// The journal could not be opened/recovered.
    Journal(String),
    /// The export spill queue could not be opened.
    Spill(String),
}

impl core::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RuntimeError::Invalid(w) => write!(f, "invalid node config: {w}"),
            RuntimeError::Bind { what, addr, err } => {
                write!(f, "cannot bind {what} {addr}: {err}")
            }
            RuntimeError::Journal(e) => write!(f, "cannot open journal: {e}"),
            RuntimeError::Spill(e) => write!(f, "cannot open spill dir: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// What a graceful [`NodeRuntime::drain`] hands back.
#[derive(Debug)]
pub struct DrainReport {
    /// Summaries flushed out of the relay at drain time (windows that
    /// still had unshipped content).
    pub flushed: usize,
    /// Export frames still unacknowledged when the deadline passed
    /// (0 = everything pending reached the upstream and was acked, or
    /// the node has no upstream).
    pub pending_at_exit: usize,
    /// The final ledger.
    pub ledger: RelayLedger,
}

/// Runtime logging that survives a closed stderr: a supervisor (or a
/// test harness) dropping the pipe must degrade logging, never kill
/// the node mid-export (`eprintln!` panics on a broken pipe).
fn log(msg: core::fmt::Arguments<'_>) {
    use std::io::Write as _;
    let _ = writeln!(std::io::stderr(), "{msg}");
}

/// Parameters the scheduler re-reads every tick (reload targets that
/// do not live inside [`Relay`]'s own export config).
#[derive(Debug, Clone, Copy)]
struct SchedParams {
    retention_ms: u64,
    drain_every_ms: u64,
}

/// State owned by the scheduler pass, shared with drain and the stats
/// endpoint.
struct SchedState {
    shipper: Option<ExportShipper>,
    journal_fault_logged: bool,
    /// Where scheduler-detected operational events land (`/events`).
    events: EventRing,
    /// Ledger counters as of the last event sweep — the deltas become
    /// events.
    seen: LedgerSeen,
}

/// The ledger counters the event detector watches. Only *changes*
/// matter; the absolute values already live in the ledger itself.
#[derive(Debug, Clone, Copy, Default)]
struct LedgerSeen {
    delta_fallbacks: u64,
    base_losses: u64,
    rebase_rewinds: u64,
    spill_sheds: u64,
}

impl LedgerSeen {
    fn of(l: &RelayLedger) -> LedgerSeen {
        LedgerSeen {
            delta_fallbacks: l.delta_fallbacks,
            base_losses: l.base_losses,
            rebase_rewinds: l.rebase_rewinds,
            spill_sheds: l.spill_sheds,
        }
    }
}

/// Shared observability state of one relay node: the metric registry
/// behind `GET /metrics`, the event ring behind `GET /events`, and the
/// boot instant behind `/health`'s `uptime_ms`.
#[derive(Debug, Clone)]
struct RelayTelemetry {
    registry: Registry,
    events: EventRing,
    started: Instant,
}

fn epoch_ms_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// One running relay node (see the module docs).
pub struct NodeRuntime {
    name: String,
    tag: String,
    ingest_addr: SocketAddr,
    query_addr: SocketAddr,
    relay: Arc<Mutex<Relay>>,
    sched: Arc<Mutex<SchedState>>,
    params: Arc<Mutex<SchedParams>>,
    clock: SteadyClock,
    /// `(stopping, wake)` — the scheduler parks on the condvar with
    /// the tick as timeout, so shutdown and reload wake it instantly.
    run: Arc<(Mutex<bool>, Condvar)>,
    accept_stop: Arc<AtomicBool>,
    ingest_join: Option<std::thread::JoinHandle<()>>,
    query_join: Option<std::thread::JoinHandle<()>>,
    sched_join: Option<std::thread::JoinHandle<()>>,
    ops: Option<OpsHandle>,
    recovery: Option<RecoveryReport>,
    rewound: usize,
    upstream: Option<String>,
}

impl NodeRuntime {
    /// Boots the node: binds sockets, recovers state, spawns the
    /// listener and scheduler threads. Returns once every socket is
    /// bound and recovery is complete.
    pub fn start(cfg: NodeConfig) -> Result<NodeRuntime, RuntimeError> {
        if cfg.sites.is_empty() {
            return Err(RuntimeError::Invalid(
                "a relay node must cover at least one site".into(),
            ));
        }
        let tag = cfg
            .log_tag
            .clone()
            .unwrap_or_else(|| format!("node[{}]", cfg.name));

        // A solo topology so the query router can plan over this node.
        let topo = RelayTopology {
            relays: vec![RelaySpec {
                name: cfg.name.clone(),
                parent: None,
                agg_site: cfg.agg_site,
                sites: cfg.sites.clone(),
            }],
        };
        topo.validate()
            .map_err(|e| RuntimeError::Invalid(e.to_string()))?;
        let relay_cfg = RelayConfig {
            name: cfg.name.clone(),
            agg_site: cfg.agg_site,
            expected: cfg.sites.clone(),
            schema: flowkey::Schema::five_feature(),
            tree: flowtree_core::Config::with_budget(cfg.budget),
            export: ExportConfig {
                mode: cfg.mode,
                linger_ms: cfg.linger_ms,
                max_bases: cfg.max_bases,
                max_base_nodes: cfg.max_base_nodes,
            },
        };
        let (mut relay, recovery) = match &cfg.state_dir {
            Some(dir) => {
                let jcfg = JournalConfig {
                    fsync: cfg.fsync,
                    ..JournalConfig::default()
                };
                let (relay, report) = Relay::open_journaled(relay_cfg, &dir.join("journal"), jcfg)
                    .map_err(|e| RuntimeError::Journal(e.to_string()))?;
                log(format_args!(
                    "{tag}: recovered gen {} — {} snapshot slots, {} WAL records, {} torn bytes truncated",
                    report.generation, report.snapshot_slots, report.wal_records, report.torn_bytes
                ));
                (relay, Some(report))
            }
            None => (Relay::new(relay_cfg), None),
        };
        // Exports drained by a dead process but never acknowledged may
        // or may not have reached the upstream; rewinding re-exports
        // full rebasing frames the upstream deduplicates idempotently.
        // A root (no upstream) must NOT rewind — nobody is missing
        // anything.
        let mut rewound = 0;
        if cfg.upstream.is_some() {
            rewound = relay.rewind_unacked_exports();
            if rewound > 0 {
                log(format_args!(
                    "{tag}: rewound {rewound} unacked exports; their windows will rebase"
                ));
            }
        }
        let telemetry = RelayTelemetry {
            registry: Registry::new(),
            events: EventRing::new(256),
            started: Instant::now(),
        };
        if let Some(report) = &recovery {
            if report.wal_records > 0 || report.snapshot_slots > 0 {
                telemetry.events.push(
                    epoch_ms_now(),
                    "crash_restart",
                    format!(
                        "gen {} wal_records {} torn_bytes {}",
                        report.generation, report.wal_records, report.torn_bytes
                    ),
                );
            }
        }
        if rewound > 0 {
            telemetry.events.push(
                epoch_ms_now(),
                "rewound",
                format!("unacked_exports {rewound}"),
            );
        }
        let update_hist = telemetry.registry.histogram(
            "flowtree_tree_update_seconds",
            "One downstream summary frame classified and merged into the windowed trees.",
        );
        let query_hist = telemetry.registry.histogram(
            "flowtree_query_seconds",
            "One query planned, routed over the stored windows, and rendered.",
        );
        let relay = Arc::new(Mutex::new(relay));

        // The durable shipper (only with an upstream).
        let shipper = match &cfg.upstream {
            Some(addr) => {
                let spill_cfg = SpillConfig {
                    max_bytes: cfg.spill_max_bytes,
                    fsync: cfg.fsync,
                    ..SpillConfig::default()
                };
                let spill = match &cfg.state_dir {
                    Some(dir) => {
                        let q = SpillQueue::open(&dir.join("spill"), spill_cfg)
                            .map_err(|e| RuntimeError::Spill(e.to_string()))?;
                        if !q.is_empty() {
                            log(format_args!(
                                "{tag}: recovered {} spilled exports, resending",
                                q.len()
                            ));
                        }
                        q
                    }
                    None => SpillQueue::in_memory(spill_cfg),
                };
                let mut shipper = ExportShipper::new(
                    ShipperConfig {
                        upstream: addr.clone(),
                        handshake_ms: 1_000,
                        stall_ms: cfg.ack_stall_ms,
                        tree: flowtree_core::Config::with_budget(cfg.budget),
                        backoff: BackoffConfig {
                            base_ms: cfg.reconnect_base_ms,
                            max_ms: cfg.reconnect_max_ms,
                        },
                    },
                    spill,
                    u64::from(cfg.agg_site) ^ (u64::from(std::process::id()) << 17),
                );
                shipper.set_rtt_histogram(telemetry.registry.histogram(
                    "flowtree_export_rtt_seconds",
                    "Ship-to-ack round trip of one export frame (first wire write to releasing ack).",
                ));
                Some(shipper)
            }
            None => None,
        };
        // Seed the event detector with the recovered ledger so a
        // journaled restart does not replay pre-crash counts as fresh
        // events.
        let seen = LedgerSeen::of(relay.lock().expect("relay lock").ledger());
        let sched = Arc::new(Mutex::new(SchedState {
            shipper,
            journal_fault_logged: false,
            events: telemetry.events.clone(),
            seen,
        }));
        let params = Arc::new(Mutex::new(SchedParams {
            retention_ms: cfg.retention_ms,
            drain_every_ms: cfg.drain_every_ms.max(1),
        }));

        // --- ingest listener (accept-poll, so drain can close it) ----
        let accept_stop = Arc::new(AtomicBool::new(false));
        let ingest = TcpListener::bind(&cfg.ingest).map_err(|err| RuntimeError::Bind {
            what: "ingest",
            addr: cfg.ingest.clone(),
            err,
        })?;
        let ingest_addr = ingest.local_addr().map_err(|err| RuntimeError::Bind {
            what: "ingest",
            addr: cfg.ingest.clone(),
            err,
        })?;
        let ingest_join = {
            let relay = Arc::clone(&relay);
            let stop = Arc::clone(&accept_stop);
            let update_hist = update_hist.clone();
            spawn_accept_loop("relay-ingest", ingest, stop, move |mut conn| {
                let relay = Arc::clone(&relay);
                let update_hist = update_hist.clone();
                let _ = std::thread::Builder::new()
                    .name("relay-ingest-conn".into())
                    .spawn(move || {
                        // Acknowledged ingest: per-frame ack /
                        // rebase-request replies once the peer says
                        // hello; pure one-way v1–v3 senders get
                        // exactly the legacy silence. Locks the relay
                        // per frame, not per connection.
                        let _ = serve_acked_ingest_timed(&mut conn, &relay, Some(&update_hist));
                    });
            })
            .map_err(|err| RuntimeError::Bind {
                what: "ingest",
                addr: cfg.ingest.clone(),
                err,
            })?
        };

        // --- query listener ------------------------------------------
        let queries = TcpListener::bind(&cfg.query).map_err(|err| RuntimeError::Bind {
            what: "query",
            addr: cfg.query.clone(),
            err,
        })?;
        let query_addr = queries.local_addr().map_err(|err| RuntimeError::Bind {
            what: "query",
            addr: cfg.query.clone(),
            err,
        })?;
        let query_join = {
            let relay = Arc::clone(&relay);
            let topo = topo.clone();
            let stop = Arc::clone(&accept_stop);
            let query_hist = query_hist.clone();
            spawn_accept_loop("relay-query", queries, stop, move |conn| {
                let relay = Arc::clone(&relay);
                let topo = topo.clone();
                let query_hist = query_hist.clone();
                let _ = std::thread::Builder::new()
                    .name("relay-query-conn".into())
                    .spawn(move || {
                        // Lock per *request*, never per connection: an
                        // idle client sitting on an open connection
                        // must not starve ingest or the export
                        // scheduler. serve_framed keeps one reader for
                        // the connection's lifetime, so pipelined
                        // frames survive its read-ahead.
                        let _ = flowdist::framing::serve_framed(conn, |frame| {
                            let sw = Stopwatch::start();
                            let guard = relay.lock().expect("relay lock");
                            let relays = std::slice::from_ref(&*guard);
                            let router = QueryRouter::new(&topo, relays);
                            let out = answer_query(&router, &frame);
                            drop(guard);
                            sw.observe(&query_hist);
                            Some(out)
                        });
                    });
            })
            .map_err(|err| RuntimeError::Bind {
                what: "query",
                addr: cfg.query.clone(),
                err,
            })?
        };

        // --- export scheduler ----------------------------------------
        let clock = SteadyClock::new();
        let run = Arc::new((Mutex::new(false), Condvar::new()));
        let sched_join = {
            let relay = Arc::clone(&relay);
            let sched = Arc::clone(&sched);
            let params = Arc::clone(&params);
            let run = Arc::clone(&run);
            let clock = clock.clone();
            let tag = tag.clone();
            std::thread::Builder::new()
                .name("relay-sched".into())
                .spawn(move || {
                    let (stop_lock, wake) = &*run;
                    loop {
                        let tick = params.lock().expect("params lock").drain_every_ms;
                        let stopped = {
                            let guard = stop_lock.lock().expect("run lock");
                            let (guard, _) = wake
                                .wait_timeout(guard, Duration::from_millis(tick))
                                .expect("run lock");
                            *guard
                        };
                        if stopped {
                            return;
                        }
                        let p = *params.lock().expect("params lock");
                        scheduler_pass(
                            &relay,
                            &mut sched.lock().expect("sched lock"),
                            &p,
                            &clock,
                            &tag,
                        );
                    }
                })
                .map_err(|err| RuntimeError::Bind {
                    what: "ingest",
                    addr: "scheduler thread".into(),
                    err,
                })?
        };

        // --- stats endpoint ------------------------------------------
        let ops = match &cfg.stats {
            Some(addr) => {
                let relay = Arc::clone(&relay);
                let sched = Arc::clone(&sched);
                let params = Arc::clone(&params);
                let run = Arc::clone(&run);
                let name = cfg.name.clone();
                let is_root = cfg.upstream.is_none();
                let agg_site = cfg.agg_site;
                let tel = telemetry.clone();
                Some(
                    spawn_ops(addr, move |req| {
                        relay_ops(
                            &name, agg_site, is_root, &relay, &sched, &params, &run, &tel, req,
                        )
                    })
                    .map_err(|err| RuntimeError::Bind {
                        what: "stats",
                        addr: addr.clone(),
                        err,
                    })?,
                )
            }
            None => None,
        };

        Ok(NodeRuntime {
            name: cfg.name,
            tag,
            ingest_addr,
            query_addr,
            relay,
            sched,
            params,
            clock,
            run,
            accept_stop,
            ingest_join: Some(ingest_join),
            query_join: Some(query_join),
            sched_join: Some(sched_join),
            ops,
            recovery,
            rewound,
            upstream: cfg.upstream,
        })
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bound ingest address.
    pub fn ingest_addr(&self) -> SocketAddr {
        self.ingest_addr
    }

    /// The bound query address.
    pub fn query_addr(&self) -> SocketAddr {
        self.query_addr
    }

    /// The bound stats address, if a stats endpoint was configured.
    pub fn stats_addr(&self) -> Option<SocketAddr> {
        self.ops.as_ref().map(|o| o.local_addr())
    }

    /// The journal recovery report, if the node booted from a state
    /// dir.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Unacked exports rewound at startup.
    pub fn rewound(&self) -> usize {
        self.rewound
    }

    /// A copy of the relay's work ledger.
    pub fn ledger(&self) -> RelayLedger {
        *self.relay.lock().expect("relay lock").ledger()
    }

    /// Export frames currently pending upstream acknowledgment.
    pub fn pending_len(&self) -> usize {
        self.sched
            .lock()
            .expect("sched lock")
            .shipper
            .as_ref()
            .map(|s| s.pending_len())
            .unwrap_or(0)
    }

    /// The node's current reloadable knobs (the baseline to mutate
    /// for a [`NodeRuntime::reload`]).
    pub fn reloadable(&self) -> NodeReload {
        let p = *self.params.lock().expect("params lock");
        let relay = self.relay.lock().expect("relay lock");
        let e = relay.export_config();
        NodeReload {
            mode: e.mode,
            linger_ms: e.linger_ms,
            retention_ms: p.retention_ms,
            drain_every_ms: p.drain_every_ms,
            max_bases: e.max_bases,
            max_base_nodes: e.max_base_nodes,
        }
    }

    /// Applies a live reconfiguration: export mode/linger/base bound
    /// through [`Relay::set_export_config`], retention and tick
    /// through the scheduler. Takes effect on the next pass (the
    /// scheduler is woken immediately).
    pub fn reload(&self, r: NodeReload) {
        {
            let mut relay = self.relay.lock().expect("relay lock");
            let export = ExportConfig {
                mode: r.mode,
                linger_ms: r.linger_ms,
                max_bases: r.max_bases.max(1),
                max_base_nodes: r.max_base_nodes.max(1),
            };
            relay.set_export_config(export);
        }
        {
            let mut p = self.params.lock().expect("params lock");
            p.retention_ms = r.retention_ms;
            p.drain_every_ms = r.drain_every_ms.max(1);
        }
        self.run.1.notify_all();
        log(format_args!(
            "{}: reloaded — mode {:?}, linger {}ms, retention {}ms, tick {}ms, max-bases {}",
            self.tag, r.mode, r.linger_ms, r.retention_ms, r.drain_every_ms, r.max_bases
        ));
    }

    /// Runs one scheduler pass synchronously (what `--oneshot` and
    /// tests use instead of waiting out a tick).
    pub fn tick_now(&self) {
        let p = *self.params.lock().expect("params lock");
        scheduler_pass(
            &self.relay,
            &mut self.sched.lock().expect("sched lock"),
            &p,
            &self.clock,
            &self.tag,
        );
    }

    /// Gracefully drains and stops the node (see the module docs).
    /// `deadline` bounds how long the flush may chase an unreachable
    /// upstream; whatever is still pending then stays in the spill
    /// queue (journaled, recovered by the next start).
    pub fn drain(mut self, deadline: Duration) -> DrainReport {
        log(format_args!("{}: draining", self.tag));
        // 1. Stop intake: no new downstream (or query) connections.
        self.stop_accepting();
        // 2. Stop the scheduler so this drain is the only export path.
        self.stop_scheduler();
        // 3. Flush every window with unshipped content through the
        //    normal shipper path (spill-before-send, ack-to-release) —
        //    the same journaled code a crash recovers through.
        let due = self.relay.lock().expect("relay lock").flush_exports();
        let flushed = due.len();
        let mut sched = self.sched.lock().expect("sched lock");
        let pending_at_exit = match sched.shipper.as_mut() {
            Some(shipper) => {
                let before = shipper.spill_stats();
                for e in &due {
                    let shed = shipper.enqueue(e);
                    if !shed.is_empty() {
                        let mut guard = self.relay.lock().expect("relay lock");
                        for w in &shed {
                            guard.mark_unshipped(*w);
                        }
                    }
                }
                note_sheds(&self.relay, &before, &shipper.spill_stats());
                let limit = Instant::now() + deadline;
                while shipper.pending_len() > 0 && Instant::now() < limit {
                    shipper.pump(&self.relay, self.clock.now_ms());
                    if shipper.pending_len() == 0 {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                shipper.pending_len()
            }
            None => {
                if flushed > 0 {
                    log(format_args!(
                        "{}: drained {flushed} final exports — no upstream, dropped",
                        self.tag
                    ));
                }
                0
            }
        };
        drop(sched);
        let ledger = *self.relay.lock().expect("relay lock").ledger();
        self.join_listeners();
        if let Some(ops) = self.ops.take() {
            ops.stop();
        }
        log(format_args!(
            "{}: drain complete — {flushed} flushed, {pending_at_exit} still pending",
            self.tag
        ));
        DrainReport {
            flushed,
            pending_at_exit,
            ledger,
        }
    }

    /// Stops the node without flushing. The journal (if any) keeps
    /// this safe; it is just not graceful.
    pub fn shutdown(mut self) {
        self.stop_accepting();
        self.stop_scheduler();
        self.join_listeners();
        if let Some(ops) = self.ops.take() {
            ops.stop();
        }
    }

    /// Whether this node ships upstream (false = root).
    pub fn has_upstream(&self) -> bool {
        self.upstream.is_some()
    }

    fn stop_accepting(&mut self) {
        self.accept_stop.store(true, Ordering::Relaxed);
    }

    fn stop_scheduler(&mut self) {
        *self.run.0.lock().expect("run lock") = true;
        self.run.1.notify_all();
        if let Some(j) = self.sched_join.take() {
            let _ = j.join();
        }
    }

    fn join_listeners(&mut self) {
        for j in [self.ingest_join.take(), self.query_join.take()]
            .into_iter()
            .flatten()
        {
            let _ = j.join();
        }
    }
}

impl Drop for NodeRuntime {
    fn drop(&mut self) {
        self.stop_accepting();
        self.stop_scheduler();
        self.join_listeners();
        if let Some(ops) = self.ops.take() {
            ops.stop();
        }
    }
}

/// Accept-poll loop: a nonblocking listener polled against a stop
/// flag, so stopping a node actually releases its ports (a thread
/// parked in `accept` would hold them until process exit).
fn spawn_accept_loop<F>(
    name: &str,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    on_conn: F,
) -> std::io::Result<std::thread::JoinHandle<()>>
where
    F: Fn(std::net::TcpStream) + Send + 'static,
{
    listener.set_nonblocking(true)?;
    std::thread::Builder::new()
        .name(name.into())
        .spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((conn, _)) => {
                        let _ = conn.set_nonblocking(false);
                        on_conn(conn);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        })
}

/// One scheduler pass: drain due windows, ship (or log-and-drop at a
/// root), apply retention, surface a degraded journal once.
fn scheduler_pass(
    relay: &Arc<Mutex<Relay>>,
    sched: &mut SchedState,
    params: &SchedParams,
    clock: &SteadyClock,
    tag: &str,
) {
    let now = clock.now_ms();
    let due = relay.lock().expect("relay lock").drain_exports_at(now);
    match sched.shipper.as_mut() {
        Some(shipper) => {
            let before = shipper.spill_stats();
            for e in &due {
                let shed = shipper.enqueue(e);
                if !shed.is_empty() {
                    let mut guard = relay.lock().expect("relay lock");
                    for w in &shed {
                        guard.mark_unshipped(*w);
                    }
                    drop(guard);
                    log(format_args!(
                        "{tag}: spill bound shed {} old exports; their windows will rebase",
                        shed.len()
                    ));
                }
            }
            note_sheds(relay, &before, &shipper.spill_stats());
            shipper.pump(relay, now);
        }
        None => {
            for e in &due {
                log(format_args!(
                    "{tag}: export window {} epoch {} ({:?}, {} bytes) — no upstream, dropped",
                    e.window,
                    e.epoch.map(|h| h.epoch).unwrap_or(0),
                    e.kind,
                    e.encoded_size()
                ));
            }
        }
    }
    if params.retention_ms > 0 {
        let cutoff = now.saturating_sub(params.retention_ms);
        let evicted = relay
            .lock()
            .expect("relay lock")
            .evict_windows_before(cutoff);
        if evicted > 0 {
            log(format_args!(
                "{tag}: retention evicted {evicted} windows older than {cutoff}ms"
            ));
        }
    }
    if !sched.journal_fault_logged {
        if let Some(err) = relay.lock().expect("relay lock").journal_error() {
            log(format_args!(
                "{tag}: JOURNAL DEGRADED (still serving, no longer crash-safe): {err}"
            ));
            sched.journal_fault_logged = true;
        }
    }
    note_ledger_events(relay, sched, now);
}

/// Turns ledger-counter movement since the last pass into `/events`
/// entries — the *why* behind the counters (a delta fell back to a
/// full frame, a window rebased, the spill bound shed exports).
fn note_ledger_events(relay: &Arc<Mutex<Relay>>, sched: &mut SchedState, ts_ms: u64) {
    let l = *relay.lock().expect("relay lock").ledger();
    let seen = sched.seen;
    let events = &sched.events;
    let emit = |kind: &'static str, delta: u64| {
        if delta > 0 {
            events.push(ts_ms, kind, format!("count {delta}"));
        }
    };
    emit(
        "delta_fallback",
        l.delta_fallbacks.saturating_sub(seen.delta_fallbacks),
    );
    emit("base_loss", l.base_losses.saturating_sub(seen.base_losses));
    emit(
        "rebase",
        l.rebase_rewinds.saturating_sub(seen.rebase_rewinds),
    );
    emit("spill_shed", l.spill_sheds.saturating_sub(seen.spill_sheds));
    sched.seen = LedgerSeen::of(&l);
}

/// Feeds spill-shed deltas across one enqueue batch into the ledger
/// (PR-6 counted sheds only inside the queue; now they are readable).
fn note_sheds(relay: &Arc<Mutex<Relay>>, before: &SpillStats, after: &SpillStats) {
    let frames = after.shed_frames.saturating_sub(before.shed_frames);
    let bytes = after.shed_bytes.saturating_sub(before.shed_bytes);
    if frames > 0 || bytes > 0 {
        relay
            .lock()
            .expect("relay lock")
            .note_spill_shed(frames, bytes);
    }
}

/// One coherent observation of the node, gathered under the relay and
/// scheduler locks once per ops request — the single source the
/// legacy plaintext page, `/stats.json`, and the `/metrics` sync all
/// render from, so the three can never drift.
struct ObsSnap {
    export: ExportConfig,
    params: SchedParams,
    journal_degraded: bool,
    ledger: RelayLedger,
    stored_windows: usize,
    lag_ms: u64,
    pending: usize,
    pending_bytes: u64,
    connected: bool,
    acked_mode: Option<bool>,
    shipper: Option<ShipperStats>,
    spill: Option<SpillStats>,
}

fn observe(
    relay: &Arc<Mutex<Relay>>,
    sched: &Arc<Mutex<SchedState>>,
    params: &Arc<Mutex<SchedParams>>,
) -> ObsSnap {
    let now_ms = epoch_ms_now();
    let (ledger, export, journal_degraded, stored_windows, lag_ms) = {
        let guard = relay.lock().expect("relay lock");
        (
            *guard.ledger(),
            *guard.export_config(),
            guard.journal_error().is_some(),
            guard.stored_window_count(),
            guard.export_watermark_lag_ms(now_ms),
        )
    };
    let p = *params.lock().expect("params lock");
    let guard = sched.lock().expect("sched lock");
    let (pending, pending_bytes, connected, acked_mode, shipper, spill) =
        match guard.shipper.as_ref() {
            Some(s) => (
                s.pending_len(),
                s.pending_bytes(),
                s.is_connected(),
                s.acked_mode(),
                Some(s.stats()),
                Some(s.spill_stats()),
            ),
            None => (0, 0, false, None, None, None),
        };
    drop(guard);
    ObsSnap {
        export,
        params: p,
        journal_degraded,
        ledger,
        stored_windows,
        lag_ms,
        pending,
        pending_bytes,
        connected,
        acked_mode,
        shipper,
        spill,
    }
}

/// The relay node's stats as ordered key/value pairs — key set and
/// order are exactly the pre-JSON plaintext page's.
fn relay_stat_pairs(role: &str, name: &str, agg_site: u16, o: &ObsSnap) -> Vec<(String, KvValue)> {
    let mut pairs: Vec<(String, KvValue)> = Vec::with_capacity(48);
    let mut kv = |k: &str, v: KvValue| pairs.push((k.to_string(), v));
    kv("role", role.into());
    kv("name", name.into());
    kv("agg_site", KvValue::U64(u64::from(agg_site)));
    kv("mode", format!("{:?}", o.export.mode).to_lowercase().into());
    kv("linger_ms", KvValue::U64(o.export.linger_ms));
    kv("retention_ms", KvValue::U64(o.params.retention_ms));
    kv("drain_every_ms", KvValue::U64(o.params.drain_every_ms));
    kv("max_bases", KvValue::U64(o.export.max_bases as u64));
    kv("journal_degraded", KvValue::Bool(o.journal_degraded));
    let l = &o.ledger;
    kv("frames", KvValue::U64(l.frames));
    kv("site_frames", KvValue::U64(l.site_frames));
    kv("agg_frames", KvValue::U64(l.agg_frames));
    kv("rejected", KvValue::U64(l.rejected));
    kv("replayed", KvValue::U64(l.replayed));
    kv("exported", KvValue::U64(l.exported));
    kv("exported_bytes", KvValue::U64(l.exported_bytes));
    kv("full_exports", KvValue::U64(l.full_exports));
    kv("delta_exports", KvValue::U64(l.delta_exports));
    kv("delta_fallbacks", KvValue::U64(l.delta_fallbacks));
    kv("base_losses", KvValue::U64(l.base_losses));
    kv("late_downstream", KvValue::U64(l.late_downstream));
    kv("rebase_requests", KvValue::U64(l.rebase_requests));
    kv("rebase_rewinds", KvValue::U64(l.rebase_rewinds));
    kv("reconnect_attempts", KvValue::U64(l.reconnect_attempts));
    kv("reconnect_failures", KvValue::U64(l.reconnect_failures));
    kv("backoff_ms_total", KvValue::U64(l.backoff_ms_total));
    kv("spill_sheds", KvValue::U64(l.spill_sheds));
    kv("spill_shed_bytes", KvValue::U64(l.spill_shed_bytes));
    kv("export_pending", KvValue::U64(o.pending as u64));
    kv("upstream_connected", KvValue::Bool(o.connected));
    kv(
        "acked_mode",
        match o.acked_mode {
            Some(true) => "acked",
            Some(false) => "legacy",
            None => "none",
        }
        .into(),
    );
    if let Some(s) = &o.shipper {
        kv("ship_enqueued", KvValue::U64(s.enqueued));
        kv("ship_sent_frames", KvValue::U64(s.sent_frames));
        kv("ship_sent_bytes", KvValue::U64(s.sent_bytes));
        kv("ship_acked_frames", KvValue::U64(s.acked_frames));
        kv("ship_legacy_released", KvValue::U64(s.legacy_released));
        kv("ship_rebase_honored", KvValue::U64(s.rebase_honored));
        kv("ship_stall_recycles", KvValue::U64(s.stall_recycles));
        kv("ship_handshakes", KvValue::U64(s.handshakes));
        kv("ship_legacy_sessions", KvValue::U64(s.legacy_sessions));
    }
    if let Some(s) = &o.spill {
        kv("spill_pushed_frames", KvValue::U64(s.pushed_frames));
        kv("spill_pushed_bytes", KvValue::U64(s.pushed_bytes));
        kv("spill_acked_floor", KvValue::U64(s.acked_frames));
        kv("spill_recovered_frames", KvValue::U64(s.recovered_frames));
        kv("spill_torn_bytes", KvValue::U64(s.torn_bytes));
        kv("spill_io_errors", KvValue::U64(s.io_errors));
    }
    // New observability-layer keys, appended so legacy scrapers keep
    // their line positions.
    kv("stored_windows", KvValue::U64(o.stored_windows as u64));
    kv("export_watermark_lag_ms", KvValue::U64(o.lag_ms));
    kv("export_pending_bytes", KvValue::U64(o.pending_bytes));
    kv(
        "max_base_nodes",
        KvValue::U64(o.export.max_base_nodes as u64),
    );
    pairs
}

/// Mirrors one observation into the node's registry so a `/metrics`
/// scrape sees the ledger, shipper, and spill counters as first-class
/// Prometheus series next to the live latency histograms.
fn sync_relay_registry(tel: &RelayTelemetry, role: &str, name: &str, o: &ObsSnap) {
    let reg = &tel.registry;
    reg.gauge_with(
        "flowtree_build_info",
        "Constant 1; identity in labels.",
        &[
            ("role", role),
            ("node", name),
            ("version", flowdist::runtime::build_version()),
        ],
    )
    .set(1);
    reg.gauge("flowtree_uptime_seconds", "Seconds since this node booted.")
        .set(tel.started.elapsed().as_secs() as i64);
    let c = |name: &str, help: &str, v: u64| reg.counter(name, help).set(v);
    let g = |name: &str, help: &str, v: i64| reg.gauge(name, help).set(v);
    let l = &o.ledger;
    c(
        "flowtree_relay_frames_total",
        "Downstream summary frames accepted.",
        l.frames,
    );
    c(
        "flowtree_relay_site_frames_total",
        "Plain per-site frames among them.",
        l.site_frames,
    );
    c(
        "flowtree_relay_agg_frames_total",
        "Aggregate (provenance-carrying) frames among them.",
        l.agg_frames,
    );
    c(
        "flowtree_relay_rejected_total",
        "Frames rejected (malformed, coverage violations, overlaps).",
        l.rejected,
    );
    c(
        "flowtree_relay_replayed_total",
        "At-least-once replays recognized and acked without re-applying.",
        l.replayed,
    );
    c(
        "flowtree_relay_exported_total",
        "Aggregates exported upstream (full and delta frames).",
        l.exported,
    );
    c(
        "flowtree_relay_exported_bytes_total",
        "Encoded bytes of those exports.",
        l.exported_bytes,
    );
    c(
        "flowtree_relay_full_exports_total",
        "Full frames among the exports.",
        l.full_exports,
    );
    c(
        "flowtree_relay_delta_exports_total",
        "Delta frames among the exports.",
        l.delta_exports,
    );
    c(
        "flowtree_relay_delta_fallbacks_total",
        "Deltas that fell back to full frames.",
        l.delta_fallbacks,
    );
    c(
        "flowtree_relay_base_losses_total",
        "Fallbacks caused by a dropped re-aggregation base.",
        l.base_losses,
    );
    c(
        "flowtree_relay_late_downstream_total",
        "Frames accepted for windows already exported upstream.",
        l.late_downstream,
    );
    c(
        "flowtree_relay_rebase_requests_total",
        "Deltas whose declared base was ahead; answered with a rebase-request.",
        l.rebase_requests,
    );
    c(
        "flowtree_relay_rebase_rewinds_total",
        "Windows rewound to full rebasing re-exports on downstream request.",
        l.rebase_rewinds,
    );
    c(
        "flowtree_relay_reconnect_attempts_total",
        "Upstream connection attempts by the export shipper.",
        l.reconnect_attempts,
    );
    c(
        "flowtree_relay_reconnect_failures_total",
        "Failed connection attempts among them.",
        l.reconnect_failures,
    );
    c(
        "flowtree_relay_backoff_ms_total",
        "Milliseconds the shipper backed off between attempts.",
        l.backoff_ms_total,
    );
    c(
        "flowtree_relay_spill_sheds_total",
        "Pending exports shed by the spill byte bound.",
        l.spill_sheds,
    );
    c(
        "flowtree_relay_spill_shed_bytes_total",
        "Payload bytes those shed frames carried.",
        l.spill_shed_bytes,
    );
    g(
        "flowtree_stored_windows",
        "Windows the export scheduler currently tracks.",
        o.stored_windows as i64,
    );
    g(
        "flowtree_export_watermark_lag_seconds",
        "Age of the oldest window with unexported content (0 = keeping up).",
        (o.lag_ms / 1_000) as i64,
    );
    g(
        "flowtree_export_pending_frames",
        "Export frames awaiting upstream acknowledgment.",
        o.pending as i64,
    );
    g(
        "flowtree_spill_pending_bytes",
        "Payload bytes the pending exports hold in the spill queue.",
        o.pending_bytes as i64,
    );
    g(
        "flowtree_upstream_connected",
        "1 when an upstream connection is established.",
        i64::from(o.connected),
    );
    if let Some(s) = &o.shipper {
        c(
            "flowtree_ship_enqueued_total",
            "Frames handed to the durable shipper.",
            s.enqueued,
        );
        c(
            "flowtree_ship_sent_frames_total",
            "Frames written to the wire (including resends).",
            s.sent_frames,
        );
        c(
            "flowtree_ship_sent_bytes_total",
            "Bytes written to the wire.",
            s.sent_bytes,
        );
        c(
            "flowtree_ship_acked_frames_total",
            "Frames released by a receiver ack.",
            s.acked_frames,
        );
        c(
            "flowtree_ship_legacy_released_total",
            "Frames released by the legacy flushed-write contract.",
            s.legacy_released,
        );
        c(
            "flowtree_ship_rebase_honored_total",
            "Rebase-requests honored (window rewound).",
            s.rebase_honored,
        );
        c(
            "flowtree_ship_stale_acks_total",
            "Acks that matched nothing pending.",
            s.stale_acks,
        );
        c(
            "flowtree_ship_hostile_acks_total",
            "Zero-epoch acks that claimed epoch-advancing frames; ignored.",
            s.hostile_acks,
        );
        c(
            "flowtree_ship_stall_recycles_total",
            "Connections recycled because acks went silent.",
            s.stall_recycles,
        );
        c(
            "flowtree_ship_handshakes_total",
            "Completed hello handshakes (ack mode negotiated).",
            s.handshakes,
        );
        c(
            "flowtree_ship_legacy_sessions_total",
            "Connections that fell back to legacy fire-and-forget.",
            s.legacy_sessions,
        );
    }
    if let Some(s) = &o.spill {
        c(
            "flowtree_spill_pushed_frames_total",
            "Frames pushed into the spill queue.",
            s.pushed_frames,
        );
        c(
            "flowtree_spill_pushed_bytes_total",
            "Payload bytes pushed into the spill queue.",
            s.pushed_bytes,
        );
        c(
            "flowtree_spill_acked_frames_total",
            "Frames released from the spill queue by acks.",
            s.acked_frames,
        );
        c(
            "flowtree_spill_shed_frames_total",
            "Frames shed by the spill byte bound.",
            s.shed_frames,
        );
        c(
            "flowtree_spill_shed_bytes_total",
            "Payload bytes the shed frames carried.",
            s.shed_bytes,
        );
        c(
            "flowtree_spill_recovered_frames_total",
            "Frames recovered from disk at startup.",
            s.recovered_frames,
        );
        c(
            "flowtree_spill_torn_bytes_total",
            "Torn tail bytes truncated during recovery.",
            s.torn_bytes,
        );
        c(
            "flowtree_spill_io_errors_total",
            "Spill writes degraded to memory-only by I/O errors.",
            s.io_errors,
        );
    }
    c(
        "flowtree_events_total",
        "Operational events recorded (including ones the ring evicted).",
        tel.events.total(),
    );
}

/// Renders the relay node's ops surface.
#[allow(clippy::too_many_arguments)]
fn relay_ops(
    name: &str,
    agg_site: u16,
    is_root: bool,
    relay: &Arc<Mutex<Relay>>,
    sched: &Arc<Mutex<SchedState>>,
    params: &Arc<Mutex<SchedParams>>,
    run: &Arc<(Mutex<bool>, Condvar)>,
    tel: &RelayTelemetry,
    req: &OpsRequest,
) -> OpsResponse {
    let role = if is_root { "root" } else { "relay" };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => {
            let healthy = relay.lock().expect("relay lock").journal_error().is_none();
            OpsResponse::ok(format!(
                "ok {healthy}\nrole {role}\nname {name}\nagg_site {agg_site}\n{}",
                health_tail(tel.started)
            ))
        }
        ("GET", "/stats" | "/") => {
            let o = observe(relay, sched, params);
            OpsResponse::ok(flowmetrics::render_kv_text(&relay_stat_pairs(
                role, name, agg_site, &o,
            )))
        }
        ("GET", "/stats.json") => {
            let o = observe(relay, sched, params);
            OpsResponse::ok(flowmetrics::render_kv_json(&relay_stat_pairs(
                role, name, agg_site, &o,
            )))
        }
        ("GET", "/metrics") => {
            let o = observe(relay, sched, params);
            sync_relay_registry(tel, role, name, &o);
            OpsResponse::ok(tel.registry.render_prometheus())
        }
        ("GET", "/events") => OpsResponse::ok(tel.events.render_text()),
        ("POST", "/reload") => match parse_reload_body(&req.body, relay, params) {
            Ok(applied) => {
                run.1.notify_all();
                tel.events.push(epoch_ms_now(), "reload", applied.clone());
                OpsResponse::ok(applied)
            }
            Err(e) => OpsResponse::bad_request(e),
        },
        _ => OpsResponse::not_found(),
    }
}

/// Applies a `POST /reload` body (`key=value` lines; keys `mode`,
/// `linger-ms`, `retention-ms`, `drain-every-ms`, `max-bases`,
/// `max-base-nodes`) to the live node. Unknown keys fail the whole
/// request so a typoed reload never half-applies silently.
fn parse_reload_body(
    body: &str,
    relay: &Arc<Mutex<Relay>>,
    params: &Arc<Mutex<SchedParams>>,
) -> Result<String, String> {
    let mut relay_guard = relay.lock().expect("relay lock");
    let mut export = *relay_guard.export_config();
    let mut p = *params.lock().expect("params lock");
    let mut applied = Vec::new();
    for raw in body.lines() {
        let lineno = raw.trim();
        if lineno.is_empty() || lineno.starts_with('#') {
            continue;
        }
        let Some((k, v)) = lineno.split_once('=') else {
            return Err(format!("malformed reload line: {lineno}"));
        };
        let (k, v) = (k.trim(), v.trim());
        match k {
            "mode" => {
                export.mode = match v {
                    "full" => ExportMode::Full,
                    "delta" => ExportMode::Delta,
                    _ => return Err(format!("mode must be full or delta, got {v}")),
                }
            }
            "linger-ms" => export.linger_ms = parse_u64(k, v)?,
            "max-bases" => export.max_bases = parse_u64(k, v)?.max(1) as usize,
            "max-base-nodes" => export.max_base_nodes = parse_u64(k, v)?.max(1) as usize,
            "retention-ms" => p.retention_ms = parse_u64(k, v)?,
            "drain-every-ms" => p.drain_every_ms = parse_u64(k, v)?.max(1),
            _ => return Err(format!("unknown reload key: {k}")),
        }
        applied.push(format!("{k}={v}"));
    }
    relay_guard.set_export_config(export);
    *params.lock().expect("params lock") = p;
    Ok(if applied.is_empty() {
        "unchanged".into()
    } else {
        format!("applied {}", applied.join(" "))
    })
}

fn parse_u64(k: &str, v: &str) -> Result<u64, String> {
    v.parse()
        .map_err(|_| format!("{k} must be an integer, got {v}"))
}
