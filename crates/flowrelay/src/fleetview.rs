//! Fleet-wide metrics view: scrape every node's `/metrics`, validate
//! the exposition, and fold the series into one per-tier table —
//! the engine behind `flowctl top` and `flowctl scrape`.
//!
//! The scraper speaks the same hand-rolled HTTP/1.0 subset the ops
//! endpoints serve ([`flowdist::ops::ops_request`]); the parser reads
//! the Prometheus text format the in-tree [`flowmetrics`] registry
//! renders. [`validate_exposition`] doubles as the conformance
//! checker CI runs against every live node: name charset,
//! `# HELP`/`# TYPE` presence, cumulative bucket monotonicity, and
//! the `+Inf` bucket equalling `_count`.

use flowdist::ops::ops_request;
use std::collections::BTreeMap;

/// One scraped node: identity from `flowtree_build_info`, every
/// sample folded to `name → value` (label sets summed away).
#[derive(Debug, Clone)]
pub struct NodeMetrics {
    /// The stats address scraped.
    pub addr: String,
    /// `site`, `relay`, or `root` (from `flowtree_build_info{role=…}`).
    pub role: String,
    /// Node name (`site3`, `west`, …).
    pub node: String,
    /// Build version the node reports.
    pub version: String,
    /// Label-free series values; labeled series of one family sum.
    pub series: BTreeMap<String, f64>,
}

impl NodeMetrics {
    /// A series value, 0.0 when the node does not expose it.
    pub fn get(&self, name: &str) -> f64 {
        self.series.get(name).copied().unwrap_or(0.0)
    }
}

/// Splits one sample line into `(name, labels, value)`; `labels` is
/// the raw `k="v",…` interior (empty when unlabeled).
fn split_sample(line: &str) -> Option<(&str, &str, f64)> {
    let line = line.trim();
    let (ident, value) = match line.find('{') {
        Some(b) => {
            let close = line.rfind('}')?;
            let value = line.get(close + 1..)?.trim();
            (
                (&line[..b], line.get(b + 1..close)?),
                value.parse::<f64>().ok()?,
            )
        }
        None => {
            let (name, value) = line.rsplit_once(char::is_whitespace)?;
            ((name.trim(), ""), value.trim().parse::<f64>().ok()?)
        }
    };
    Some((ident.0, ident.1, value))
}

/// Pulls one label's value out of a raw label interior.
fn label_value<'a>(labels: &'a str, key: &str) -> Option<&'a str> {
    for part in labels.split("\",") {
        let part = part.trim().trim_end_matches('"');
        if let Some(rest) = part.strip_prefix(key) {
            if let Some(v) = rest.strip_prefix("=\"") {
                return Some(v);
            }
        }
    }
    None
}

fn valid_sample_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses a Prometheus text page into `name → value`, summing a
/// family's label sets (the fleet view wants totals, not label
/// breakdowns). Histogram `_bucket` samples are skipped; `_sum` and
/// `_count` come through as plain series.
pub fn parse_series(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, _labels, value)) = split_sample(line) else {
            continue;
        };
        if name.ends_with("_bucket") {
            continue;
        }
        *out.entry(name.to_string()).or_insert(0.0) += value;
    }
    out
}

/// Validates one Prometheus text page against the exposition rules the
/// fleet promises:
///
/// 1. every sample name is `[a-zA-Z_:][a-zA-Z0-9_:]*`;
/// 2. every family has a `# HELP` and a `# TYPE` line;
/// 3. histogram buckets are cumulative (monotone non-decreasing in
///    `le` order) and the `+Inf` bucket equals `_count`.
///
/// Returns the first violation as `Err`.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut helped: BTreeMap<String, bool> = BTreeMap::new(); // family → has TYPE
    fn family_of(helped: &BTreeMap<String, bool>, name: &str) -> String {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(stem) = name.strip_suffix(suffix) {
                if helped.contains_key(stem) {
                    return stem.to_string();
                }
            }
        }
        name.to_string()
    }
    // histogram name → (last cumulative count, last bound, inf, count)
    #[derive(Default)]
    struct HistCheck {
        last_cum: u64,
        last_bound: f64,
        seen_finite: bool,
        inf: Option<u64>,
        count: Option<u64>,
        any_bucket: bool,
    }
    let mut hists: BTreeMap<String, HistCheck> = BTreeMap::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let fam = rest.split_whitespace().next().unwrap_or_default();
            helped.entry(fam.to_string()).or_insert(false);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let fam = rest.split_whitespace().next().unwrap_or_default();
            helped.insert(fam.to_string(), true);
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let Some((name, labels, value)) = split_sample(line) else {
            return Err(format!("line {}: unparsable sample: {raw}", no + 1));
        };
        if !valid_sample_name(name) {
            return Err(format!("line {}: invalid metric name {name}", no + 1));
        }
        let fam = family_of(&helped, name);
        match helped.get(&fam) {
            None => return Err(format!("line {}: {fam} has no # HELP", no + 1)),
            Some(false) => return Err(format!("line {}: {fam} has no # TYPE", no + 1)),
            Some(true) => {}
        }
        if name.ends_with("_bucket") {
            let h = hists.entry(fam.clone()).or_default();
            h.any_bucket = true;
            let cum = value as u64;
            let le = label_value(labels, "le")
                .ok_or_else(|| format!("line {}: bucket without le label", no + 1))?;
            if le == "+Inf" {
                h.inf = Some(cum);
            } else {
                let bound: f64 = le
                    .parse()
                    .map_err(|_| format!("line {}: bad le bound {le}", no + 1))?;
                if h.inf.is_some() || (h.seen_finite && bound < h.last_bound) {
                    return Err(format!("line {}: buckets out of le order", no + 1));
                }
                h.last_bound = bound;
                h.seen_finite = true;
            }
            if cum < h.last_cum {
                return Err(format!(
                    "line {}: bucket counts not cumulative ({cum} < {})",
                    no + 1,
                    h.last_cum
                ));
            }
            h.last_cum = cum;
        } else if let Some(stem) = name.strip_suffix("_count") {
            if hists.contains_key(stem) {
                hists.get_mut(stem).expect("present").count = Some(value as u64);
            }
        }
    }
    for (fam, h) in &hists {
        if !h.any_bucket {
            continue;
        }
        match (h.inf, h.count) {
            (Some(inf), Some(count)) if inf == count => {}
            (inf, count) => {
                return Err(format!(
                    "histogram {fam}: +Inf bucket {inf:?} != _count {count:?}"
                ))
            }
        }
    }
    Ok(())
}

/// Scrapes one node's `/metrics`, validates the exposition, and
/// resolves its identity from `flowtree_build_info`.
pub fn scrape(addr: &str) -> Result<NodeMetrics, String> {
    let (status, body) =
        ops_request(addr, "GET", "/metrics", "").map_err(|e| format!("{addr}: {e}"))?;
    if status != 200 {
        return Err(format!("{addr}: /metrics returned {status}"));
    }
    validate_exposition(&body).map_err(|e| format!("{addr}: {e}"))?;
    let (mut role, mut node, mut version) = (String::new(), String::new(), String::new());
    for line in body.lines() {
        if let Some((name, labels, _)) = split_sample(line) {
            if name == "flowtree_build_info" {
                role = label_value(labels, "role").unwrap_or_default().to_string();
                node = label_value(labels, "node").unwrap_or_default().to_string();
                version = label_value(labels, "version")
                    .unwrap_or_default()
                    .to_string();
                break;
            }
        }
    }
    if role.is_empty() {
        return Err(format!("{addr}: no flowtree_build_info series"));
    }
    Ok(NodeMetrics {
        addr: addr.to_string(),
        role,
        node,
        version,
        series: parse_series(&body),
    })
}

/// One aggregated tier of the fleet table.
#[derive(Debug, Clone, PartialEq)]
pub struct TierRow {
    /// `site`, `relay`, or `root`.
    pub role: String,
    /// Nodes in the tier.
    pub nodes: usize,
    /// Ingest units accepted across the tier (records for sites,
    /// downstream frames for relays).
    pub ingested: u64,
    /// Tier-wide ingest rate per second, averaged over each node's
    /// uptime.
    pub rate_per_sec: f64,
    /// Everything the tier dropped or rejected.
    pub drops: u64,
    /// Worst export-watermark lag in the tier (seconds).
    pub max_lag_secs: u64,
    /// Export frames still awaiting acknowledgment.
    pub pending: u64,
    /// Operational events recorded across the tier.
    pub events: u64,
}

/// Folds scraped nodes into per-tier rows, sites first, then relays,
/// then the root.
pub fn aggregate(nodes: &[NodeMetrics]) -> Vec<TierRow> {
    let mut rows: Vec<TierRow> = Vec::new();
    for role in ["site", "relay", "root"] {
        let members: Vec<&NodeMetrics> = nodes.iter().filter(|n| n.role == role).collect();
        if members.is_empty() {
            continue;
        }
        let mut row = TierRow {
            role: role.to_string(),
            nodes: members.len(),
            ingested: 0,
            rate_per_sec: 0.0,
            drops: 0,
            max_lag_secs: 0,
            pending: 0,
            events: 0,
        };
        for n in members {
            let (ingested, drops) = if role == "site" {
                (
                    n.get("flowtree_ingest_records_total"),
                    n.get("flowtree_ingest_decode_errors_total")
                        + n.get("flowtree_ingest_quota_packet_drops_total")
                        + n.get("flowtree_ingest_quota_record_drops_total")
                        + n.get("flowtree_ingest_records_no_template_total")
                        + n.get("flowtree_late_drops_total")
                        + n.get("flowtree_frames_dropped_total")
                        + n.get("flowtree_forward_abandoned_total"),
                )
            } else {
                (
                    n.get("flowtree_relay_frames_total"),
                    n.get("flowtree_relay_rejected_total")
                        + n.get("flowtree_relay_spill_sheds_total"),
                )
            };
            row.ingested += ingested as u64;
            row.drops += drops as u64;
            let uptime = n.get("flowtree_uptime_seconds").max(1.0);
            row.rate_per_sec += ingested / uptime;
            row.max_lag_secs = row
                .max_lag_secs
                .max(n.get("flowtree_export_watermark_lag_seconds") as u64);
            row.pending += n.get("flowtree_export_pending_frames") as u64;
            row.events += n.get("flowtree_events_total") as u64;
        }
        rows.push(row);
    }
    rows
}

/// Renders the aggregated fleet view as a fixed-width table.
pub fn render_table(rows: &[TierRow]) -> String {
    let mut out = String::from(
        "TIER   NODES   INGESTED     RATE/S      DROPS  MAX_LAG_S    PENDING     EVENTS\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<6} {:>5} {:>10} {:>10.1} {:>10} {:>10} {:>10} {:>10}\n",
            r.role,
            r.nodes,
            r.ingested,
            r.rate_per_sec,
            r.drops,
            r.max_lag_secs,
            r.pending,
            r.events
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# HELP flowtree_build_info Constant 1; identity in labels.
# TYPE flowtree_build_info gauge
flowtree_build_info{role=\"site\",node=\"site3\",version=\"0.2.0\"} 1
# HELP flowtree_ingest_records_total Flow records extracted.
# TYPE flowtree_ingest_records_total counter
flowtree_ingest_records_total 400
# HELP flowtree_decode_seconds Decode latency.
# TYPE flowtree_decode_seconds histogram
flowtree_decode_seconds_bucket{le=\"0.001\"} 3
flowtree_decode_seconds_bucket{le=\"0.01\"} 5
flowtree_decode_seconds_bucket{le=\"+Inf\"} 6
flowtree_decode_seconds_sum 0.5
flowtree_decode_seconds_count 6
";

    #[test]
    fn good_page_validates_and_parses() {
        validate_exposition(GOOD).expect("valid page");
        let series = parse_series(GOOD);
        assert_eq!(series["flowtree_ingest_records_total"], 400.0);
        assert_eq!(series["flowtree_decode_seconds_count"], 6.0);
        assert!(!series.contains_key("flowtree_decode_seconds_bucket"));
    }

    #[test]
    fn missing_type_is_rejected() {
        let bad = "# HELP x_total c\nx_total 1\n";
        assert!(validate_exposition(bad).unwrap_err().contains("no # TYPE"));
    }

    #[test]
    fn missing_help_is_rejected() {
        let bad = "x_total 1\n";
        assert!(validate_exposition(bad).unwrap_err().contains("no # HELP"));
    }

    #[test]
    fn bad_name_is_rejected() {
        let bad = "# HELP bad-name c\n# TYPE bad-name counter\nbad-name 1\n";
        assert!(validate_exposition(bad)
            .unwrap_err()
            .contains("invalid metric name"));
    }

    #[test]
    fn non_cumulative_buckets_are_rejected() {
        let bad = "\
# HELP h x
# TYPE h histogram
h_bucket{le=\"0.1\"} 5
h_bucket{le=\"1\"} 3
h_bucket{le=\"+Inf\"} 5
h_sum 1
h_count 5
";
        assert!(validate_exposition(bad)
            .unwrap_err()
            .contains("not cumulative"));
    }

    #[test]
    fn inf_bucket_must_equal_count() {
        let bad = "\
# HELP h x
# TYPE h histogram
h_bucket{le=\"1\"} 3
h_bucket{le=\"+Inf\"} 5
h_sum 1
h_count 4
";
        assert!(validate_exposition(bad).unwrap_err().contains("+Inf"));
    }

    #[test]
    fn labeled_series_sum_in_the_fleet_view() {
        let page = "\
# HELP c_total c
# TYPE c_total counter
c_total{k=\"a\"} 2
c_total{k=\"b\"} 3
";
        validate_exposition(page).expect("valid");
        assert_eq!(parse_series(page)["c_total"], 5.0);
    }

    #[test]
    fn aggregate_folds_tiers_and_tracks_max_lag() {
        let mk = |role: &str, node: &str, series: &[(&str, f64)]| NodeMetrics {
            addr: "127.0.0.1:1".into(),
            role: role.into(),
            node: node.into(),
            version: "0.2.0".into(),
            series: series.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        };
        let nodes = vec![
            mk(
                "site",
                "site0",
                &[
                    ("flowtree_ingest_records_total", 100.0),
                    ("flowtree_uptime_seconds", 10.0),
                    ("flowtree_ingest_decode_errors_total", 2.0),
                ],
            ),
            mk(
                "site",
                "site1",
                &[
                    ("flowtree_ingest_records_total", 300.0),
                    ("flowtree_uptime_seconds", 10.0),
                ],
            ),
            mk(
                "relay",
                "west",
                &[
                    ("flowtree_relay_frames_total", 40.0),
                    ("flowtree_export_watermark_lag_seconds", 7.0),
                    ("flowtree_export_pending_frames", 3.0),
                    ("flowtree_uptime_seconds", 10.0),
                ],
            ),
            mk(
                "root",
                "root",
                &[
                    ("flowtree_relay_frames_total", 40.0),
                    ("flowtree_uptime_seconds", 10.0),
                ],
            ),
        ];
        let rows = aggregate(&nodes);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].role, "site");
        assert_eq!(rows[0].nodes, 2);
        assert_eq!(rows[0].ingested, 400);
        assert_eq!(rows[0].drops, 2);
        assert!((rows[0].rate_per_sec - 40.0).abs() < 1e-9);
        assert_eq!(rows[1].role, "relay");
        assert_eq!(rows[1].max_lag_secs, 7);
        assert_eq!(rows[1].pending, 3);
        let table = render_table(&rows);
        assert!(table.starts_with("TIER"));
        assert_eq!(table.lines().count(), 4);
    }
}
