//! The declarative fleet spec `flowctl` launches from.
//!
//! One plain-text file describes a whole deployment — every site
//! daemon and every relay tier — so a site→relay→root fleet boots
//! from `flowctl run fleet.spec` instead of N hand-wired processes.
//! The format is deliberately tiny (hand-rolled, no serde): INI-ish
//! sections, `key = value` lines, `#`/`;` comments.
//!
//! ```text
//! [defaults]              # inherited by every node unless overridden
//! mode = delta
//! linger-ms = 1000
//! stats = 127.0.0.1:0     # give every node a stats endpoint
//!
//! [site 0]                # one UDP-ingest site daemon, site id 0
//! listen = 127.0.0.1:0
//! upstream = west         # the *relay name* it feeds
//!
//! [relay west]            # one aggregation relay called "west"
//! agg-site = 1001
//! sites = 0,1
//! parent = root           # omit on the root
//!
//! [relay root]
//! agg-site = 2000
//! ```
//!
//! Recognised keys — `[site N]`: `listen`, `upstream` (required),
//! `stats`, `window-ms`, `batch`, `budget`, the ingest-hardening
//! knobs `receive-buffer-bytes`, `packet-rate`, `packet-burst`,
//! `record-rate`, `record-burst`, `max-exporters`,
//! `max-open-windows` (see the README's Hardening section), plus the
//! scaling knobs `lanes`, `recv-batch`, `reuseport`, `pin-cores`
//! (see the README's Performance section).
//! `[relay NAME]`:
//! `agg-site` (required), `sites`, `parent`, `ingest`, `query`,
//! `stats`, `mode`, `linger-ms`, `drain-every-ms`, `max-bases`,
//! `max-base-nodes`, `budget`, `retention-ms`, `state-dir`, `fsync`,
//! `spill-max-bytes`, `reconnect-base-ms`, `reconnect-max-ms`,
//! `ack-stall-ms`.
//! `[defaults]` accepts any of these except the identity keys
//! (`upstream`, `parent`, `agg-site`, `sites`, `state-dir`) plus
//! `state-root` (each relay with no explicit `state-dir` gets
//! `<state-root>/<name>`). Sockets default to `127.0.0.1:0`; read the
//! resolved addresses back from the runtimes.
//!
//! [`FleetSpec::parse`] validates everything validatable without
//! binding a socket: the relay tree through
//! [`RelayTopology::validate`], and that every site feeds an existing
//! relay that directly owns its id.

use crate::runtime::NodeConfig;
use crate::topology::{RelaySpec, RelayTopology, TopologyError};
use flowdist::FsyncPolicy;
use std::path::PathBuf;

/// One site daemon in a fleet spec.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// The site id (from the `[site N]` header).
    pub site: u16,
    /// UDP bind for NetFlow-style record ingest.
    pub listen: String,
    /// Name of the relay this site ships its summaries to.
    pub upstream: String,
    /// Optional bind for the plaintext stats endpoint.
    pub stats: Option<String>,
    /// Aggregation window width (ms).
    pub window_ms: u64,
    /// Pipeline flush batch.
    pub batch: usize,
    /// Tree node budget.
    pub budget: usize,
    /// Requested UDP `SO_RCVBUF` (best-effort; `None` = OS default).
    pub receive_buffer_bytes: Option<usize>,
    /// Per-exporter admission quotas (0 rates = unlimited).
    pub admission: flowdist::AdmissionConfig,
    /// Open-window bucket budget for the ingest pipeline (0 =
    /// unbounded).
    pub max_open_windows: u64,
    /// Independent listen→pipeline ingest lanes (1 = single reader).
    pub lanes: usize,
    /// Datagrams pulled per receive syscall.
    pub recv_batch: usize,
    /// Multi-socket `SO_REUSEPORT` mode for `lanes > 1` where
    /// supported.
    pub reuseport: bool,
    /// Pin lane threads and shard workers to cores.
    pub pin_cores: bool,
}

/// One relay node in a fleet spec: the full [`NodeConfig`] (its
/// `upstream` is resolved by the launcher from `parent` at boot) plus
/// the parent link.
#[derive(Debug, Clone)]
pub struct RelayNodeSpec {
    /// Everything the node runtime needs (`upstream` left `None`;
    /// the launcher fills it with the parent's resolved ingest
    /// address).
    pub node: NodeConfig,
    /// Parent relay name; `None` for the root.
    pub parent: Option<String>,
}

/// A parsed, structurally-validated fleet description.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Site daemons, in file order.
    pub sites: Vec<SiteSpec>,
    /// Relay nodes, in file order.
    pub relays: Vec<RelayNodeSpec>,
}

/// Why a spec failed to parse or validate.
#[derive(Debug)]
pub enum SpecError {
    /// A line the parser cannot read (1-based line number).
    Syntax {
        /// The offending line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A section is missing a required key, or the fleet is
    /// structurally incoherent.
    Invalid(String),
    /// The relay tree itself is invalid.
    Topology(TopologyError),
}

impl core::fmt::Display for SpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpecError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            SpecError::Invalid(msg) => f.write_str(msg),
            SpecError::Topology(e) => write!(f, "relay topology: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<TopologyError> for SpecError {
    fn from(e: TopologyError) -> SpecError {
        SpecError::Topology(e)
    }
}

/// The `[defaults]` section, applied to every node that does not
/// override a key.
#[derive(Debug, Clone, Default)]
struct Defaults {
    mode: Option<String>,
    linger_ms: Option<u64>,
    drain_every_ms: Option<u64>,
    max_bases: Option<usize>,
    budget: Option<usize>,
    retention_ms: Option<u64>,
    fsync: Option<String>,
    spill_max_bytes: Option<u64>,
    reconnect_base_ms: Option<u64>,
    reconnect_max_ms: Option<u64>,
    ack_stall_ms: Option<u64>,
    window_ms: Option<u64>,
    batch: Option<usize>,
    stats: Option<String>,
    state_root: Option<String>,
    receive_buffer_bytes: Option<usize>,
    packet_rate: Option<u64>,
    packet_burst: Option<u64>,
    record_rate: Option<u64>,
    record_burst: Option<u64>,
    max_exporters: Option<usize>,
    max_open_windows: Option<u64>,
    lanes: Option<usize>,
    recv_batch: Option<usize>,
    reuseport: Option<bool>,
    pin_cores: Option<bool>,
    max_base_nodes: Option<usize>,
}

/// What section the parser is currently inside.
enum Section {
    None,
    Defaults,
    Site(usize),
    Relay(usize),
}

impl FleetSpec {
    /// Parses and validates a spec (see the module docs for the
    /// format).
    pub fn parse(text: &str) -> Result<FleetSpec, SpecError> {
        let syntax = |line: usize, msg: String| SpecError::Syntax { line, msg };
        let mut defaults = Defaults::default();
        // Raw per-section key/value lists; defaults are applied after
        // the whole file is read so a trailing [defaults] section
        // still counts.
        // (line, key, value) triples, grouped per section.
        type RawLines = Vec<(usize, String, String)>;
        let mut sites: Vec<(u16, RawLines)> = Vec::new();
        let mut relays: Vec<(String, RawLines)> = Vec::new();
        let mut cur = Section::None;
        let mut default_lines: Vec<(usize, String, String)> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = match raw.find(['#', ';']) {
                Some(pos) => &raw[..pos],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let Some(header) = header.strip_suffix(']') else {
                    return Err(syntax(
                        lineno,
                        format!("unterminated section header: {raw}"),
                    ));
                };
                let header = header.trim();
                cur = if header == "defaults" {
                    Section::Defaults
                } else if let Some(id) = header.strip_prefix("site ") {
                    let site: u16 = id
                        .trim()
                        .parse()
                        .map_err(|_| syntax(lineno, format!("site id must be a u16, got {id}")))?;
                    if sites.iter().any(|(s, _)| *s == site) {
                        return Err(syntax(lineno, format!("duplicate section [site {site}]")));
                    }
                    sites.push((site, Vec::new()));
                    Section::Site(sites.len() - 1)
                } else if let Some(name) = header.strip_prefix("relay ") {
                    let name = name.trim().to_string();
                    if name.is_empty() {
                        return Err(syntax(lineno, "relay section needs a name".into()));
                    }
                    if relays.iter().any(|(n, _)| *n == name) {
                        return Err(syntax(lineno, format!("duplicate section [relay {name}]")));
                    }
                    relays.push((name, Vec::new()));
                    Section::Relay(relays.len() - 1)
                } else {
                    return Err(syntax(
                        lineno,
                        format!(
                            "unknown section [{header}] (expected defaults, site N, relay NAME)"
                        ),
                    ));
                };
                continue;
            }
            let Some((k, v)) = line.split_once('=') else {
                return Err(syntax(lineno, format!("expected key = value, got: {raw}")));
            };
            let (k, v) = (k.trim().to_string(), v.trim().to_string());
            match cur {
                Section::None => {
                    return Err(syntax(lineno, format!("key {k} before any section")));
                }
                Section::Defaults => default_lines.push((lineno, k, v)),
                Section::Site(idx) => sites[idx].1.push((lineno, k, v)),
                Section::Relay(idx) => relays[idx].1.push((lineno, k, v)),
            }
        }

        for (lineno, k, v) in default_lines {
            match k.as_str() {
                "mode" => defaults.mode = Some(parse_mode_name(lineno, &v)?),
                "linger-ms" => defaults.linger_ms = Some(parse_num(lineno, &k, &v)?),
                "drain-every-ms" => defaults.drain_every_ms = Some(parse_num(lineno, &k, &v)?),
                "max-bases" => defaults.max_bases = Some(parse_num(lineno, &k, &v)?),
                "budget" => defaults.budget = Some(parse_num(lineno, &k, &v)?),
                "retention-ms" => defaults.retention_ms = Some(parse_num(lineno, &k, &v)?),
                "fsync" => defaults.fsync = Some(parse_fsync_name(lineno, &v)?),
                "spill-max-bytes" => defaults.spill_max_bytes = Some(parse_num(lineno, &k, &v)?),
                "reconnect-base-ms" => {
                    defaults.reconnect_base_ms = Some(parse_num(lineno, &k, &v)?)
                }
                "reconnect-max-ms" => defaults.reconnect_max_ms = Some(parse_num(lineno, &k, &v)?),
                "ack-stall-ms" => defaults.ack_stall_ms = Some(parse_num(lineno, &k, &v)?),
                "window-ms" => defaults.window_ms = Some(parse_num(lineno, &k, &v)?),
                "batch" => defaults.batch = Some(parse_num(lineno, &k, &v)?),
                "stats" => defaults.stats = Some(v),
                "state-root" => defaults.state_root = Some(v),
                "receive-buffer-bytes" => {
                    defaults.receive_buffer_bytes = Some(parse_num(lineno, &k, &v)?)
                }
                "packet-rate" => defaults.packet_rate = Some(parse_num(lineno, &k, &v)?),
                "packet-burst" => defaults.packet_burst = Some(parse_num(lineno, &k, &v)?),
                "record-rate" => defaults.record_rate = Some(parse_num(lineno, &k, &v)?),
                "record-burst" => defaults.record_burst = Some(parse_num(lineno, &k, &v)?),
                "max-exporters" => defaults.max_exporters = Some(parse_num(lineno, &k, &v)?),
                "max-open-windows" => defaults.max_open_windows = Some(parse_num(lineno, &k, &v)?),
                "lanes" => defaults.lanes = Some(parse_num(lineno, &k, &v)?),
                "recv-batch" => defaults.recv_batch = Some(parse_num(lineno, &k, &v)?),
                "reuseport" => defaults.reuseport = Some(parse_bool(lineno, &k, &v)?),
                "pin-cores" => defaults.pin_cores = Some(parse_bool(lineno, &k, &v)?),
                "max-base-nodes" => defaults.max_base_nodes = Some(parse_num(lineno, &k, &v)?),
                _ => {
                    return Err(syntax(lineno, format!("unknown [defaults] key: {k}")));
                }
            }
        }

        let mut out_sites = Vec::with_capacity(sites.len());
        for (site, lines) in sites {
            let mut admission = flowdist::AdmissionConfig::default();
            if let Some(v) = defaults.packet_rate {
                admission.packet_rate = v;
            }
            if let Some(v) = defaults.packet_burst {
                admission.packet_burst = v;
            }
            if let Some(v) = defaults.record_rate {
                admission.record_rate = v;
            }
            if let Some(v) = defaults.record_burst {
                admission.record_burst = v;
            }
            if let Some(v) = defaults.max_exporters {
                admission.max_exporters = v;
            }
            let mut s = SiteSpec {
                site,
                listen: "127.0.0.1:0".into(),
                upstream: String::new(),
                stats: defaults.stats.clone(),
                window_ms: defaults.window_ms.unwrap_or(300_000),
                batch: defaults.batch.unwrap_or(flowdist::pipeline::DEFAULT_BATCH),
                budget: defaults.budget.unwrap_or(1 << 16),
                receive_buffer_bytes: defaults.receive_buffer_bytes,
                admission,
                max_open_windows: defaults.max_open_windows.unwrap_or(256),
                lanes: defaults.lanes.unwrap_or(1),
                recv_batch: defaults.recv_batch.unwrap_or(32),
                reuseport: defaults.reuseport.unwrap_or(true),
                pin_cores: defaults.pin_cores.unwrap_or(false),
            };
            for (lineno, k, v) in lines {
                match k.as_str() {
                    "listen" => s.listen = v,
                    "upstream" => s.upstream = v,
                    "stats" => s.stats = Some(v),
                    "window-ms" => s.window_ms = parse_num(lineno, &k, &v)?,
                    "batch" => s.batch = parse_num(lineno, &k, &v)?,
                    "budget" => s.budget = parse_num(lineno, &k, &v)?,
                    "receive-buffer-bytes" => {
                        s.receive_buffer_bytes = Some(parse_num(lineno, &k, &v)?)
                    }
                    "packet-rate" => s.admission.packet_rate = parse_num(lineno, &k, &v)?,
                    "packet-burst" => s.admission.packet_burst = parse_num(lineno, &k, &v)?,
                    "record-rate" => s.admission.record_rate = parse_num(lineno, &k, &v)?,
                    "record-burst" => s.admission.record_burst = parse_num(lineno, &k, &v)?,
                    "max-exporters" => s.admission.max_exporters = parse_num(lineno, &k, &v)?,
                    "max-open-windows" => s.max_open_windows = parse_num(lineno, &k, &v)?,
                    "lanes" => s.lanes = parse_num(lineno, &k, &v)?,
                    "recv-batch" => s.recv_batch = parse_num(lineno, &k, &v)?,
                    "reuseport" => s.reuseport = parse_bool(lineno, &k, &v)?,
                    "pin-cores" => s.pin_cores = parse_bool(lineno, &k, &v)?,
                    _ => {
                        return Err(syntax(lineno, format!("unknown [site {site}] key: {k}")));
                    }
                }
            }
            if s.upstream.is_empty() {
                return Err(SpecError::Invalid(format!(
                    "[site {site}] needs upstream = <relay name>"
                )));
            }
            out_sites.push(s);
        }

        let mut out_relays = Vec::with_capacity(relays.len());
        for (name, lines) in relays {
            let mut node = NodeConfig::new(name.clone());
            node.sites = Vec::new();
            node.stats = defaults.stats.clone();
            if let Some(m) = &defaults.mode {
                node.mode = mode_from_name(m);
            }
            if let Some(v) = defaults.linger_ms {
                node.linger_ms = v;
            }
            if let Some(v) = defaults.drain_every_ms {
                node.drain_every_ms = v;
            }
            if let Some(v) = defaults.max_bases {
                node.max_bases = v;
            }
            if let Some(v) = defaults.max_base_nodes {
                node.max_base_nodes = v;
            }
            if let Some(v) = defaults.budget {
                node.budget = v;
            }
            if let Some(v) = defaults.retention_ms {
                node.retention_ms = v;
            }
            if let Some(f) = &defaults.fsync {
                node.fsync = fsync_from_name(f);
            }
            if let Some(v) = defaults.spill_max_bytes {
                node.spill_max_bytes = v;
            }
            if let Some(v) = defaults.reconnect_base_ms {
                node.reconnect_base_ms = v;
            }
            if let Some(v) = defaults.reconnect_max_ms {
                node.reconnect_max_ms = v;
            }
            if let Some(v) = defaults.ack_stall_ms {
                node.ack_stall_ms = v;
            }
            if let Some(root) = &defaults.state_root {
                node.state_dir = Some(PathBuf::from(root).join(&name));
            }
            let mut parent = None;
            let mut agg_site_set = false;
            for (lineno, k, v) in lines {
                match k.as_str() {
                    "agg-site" => {
                        node.agg_site = parse_num(lineno, &k, &v)?;
                        agg_site_set = true;
                    }
                    "sites" => node.sites = parse_site_list(lineno, &v)?,
                    "parent" => parent = Some(v),
                    "ingest" => node.ingest = v,
                    "query" => node.query = v,
                    "stats" => node.stats = Some(v),
                    "mode" => node.mode = mode_from_name(&parse_mode_name(lineno, &v)?),
                    "linger-ms" => node.linger_ms = parse_num(lineno, &k, &v)?,
                    "drain-every-ms" => node.drain_every_ms = parse_num(lineno, &k, &v)?,
                    "max-bases" => node.max_bases = parse_num(lineno, &k, &v)?,
                    "max-base-nodes" => node.max_base_nodes = parse_num(lineno, &k, &v)?,
                    "budget" => node.budget = parse_num(lineno, &k, &v)?,
                    "retention-ms" => node.retention_ms = parse_num(lineno, &k, &v)?,
                    "state-dir" => node.state_dir = Some(PathBuf::from(v)),
                    "fsync" => node.fsync = fsync_from_name(&parse_fsync_name(lineno, &v)?),
                    "spill-max-bytes" => node.spill_max_bytes = parse_num(lineno, &k, &v)?,
                    "reconnect-base-ms" => node.reconnect_base_ms = parse_num(lineno, &k, &v)?,
                    "reconnect-max-ms" => node.reconnect_max_ms = parse_num(lineno, &k, &v)?,
                    "ack-stall-ms" => node.ack_stall_ms = parse_num(lineno, &k, &v)?,
                    _ => {
                        return Err(syntax(lineno, format!("unknown [relay {name}] key: {k}")));
                    }
                }
            }
            if !agg_site_set {
                return Err(SpecError::Invalid(format!(
                    "[relay {name}] needs agg-site = <id>"
                )));
            }
            out_relays.push(RelayNodeSpec { node, parent });
        }

        let spec = FleetSpec {
            sites: out_sites,
            relays: out_relays,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// The relay tree this spec describes.
    pub fn topology(&self) -> RelayTopology {
        RelayTopology {
            relays: self
                .relays
                .iter()
                .map(|r| RelaySpec {
                    name: r.node.name.clone(),
                    parent: r.parent.clone(),
                    agg_site: r.node.agg_site,
                    sites: r.node.sites.clone(),
                })
                .collect(),
        }
    }

    /// Everything checkable without binding a socket: the relay tree,
    /// and that every site feeds a relay that directly owns its id.
    /// (`parse` already calls this.)
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.relays.is_empty() {
            return Err(SpecError::Invalid(
                "a fleet needs at least one relay".into(),
            ));
        }
        self.topology().validate()?;
        for s in &self.sites {
            let Some(r) = self.relays.iter().find(|r| r.node.name == s.upstream) else {
                return Err(SpecError::Invalid(format!(
                    "[site {}] upstream {} names no relay in this spec",
                    s.site, s.upstream
                )));
            };
            if !r.node.sites.contains(&s.site) {
                return Err(SpecError::Invalid(format!(
                    "[site {}] feeds relay {} which does not list it in sites = …",
                    s.site, s.upstream
                )));
            }
        }
        Ok(())
    }

    /// Relay names parents-first (root, then its children, tier by
    /// tier): the boot order that lets a child resolve its parent's
    /// `:0` ingest bind to a concrete address.
    pub fn boot_order(&self) -> Vec<String> {
        let topo = self.topology();
        let mut order = vec![topo.root()];
        let mut i = 0;
        while i < order.len() {
            order.extend(topo.children_of(order[i]));
            i += 1;
        }
        order
            .into_iter()
            .map(|i| topo.relays[i].name.clone())
            .collect()
    }

    /// The relay node spec called `name`, if any.
    pub fn relay(&self, name: &str) -> Option<&RelayNodeSpec> {
        self.relays.iter().find(|r| r.node.name == name)
    }

    /// Every real site `name` covers — its direct `sites = …` plus
    /// everything owned below it. This (not the direct list) is what
    /// a launched node's `expected` coverage must be: a mid relay
    /// with no direct sites still ingests and re-exports everything
    /// its children own.
    pub fn coverage(&self, name: &str) -> Vec<u16> {
        let topo = self.topology();
        match topo.index_of(name) {
            Some(idx) => topo.coverage(idx).into_iter().collect(),
            None => Vec::new(),
        }
    }

    /// Boots every relay in this process, root first, and returns the
    /// runtimes in boot order. This is the launcher's relay wiring in
    /// one place: each node's expected coverage is its whole subtree
    /// (not just its direct `sites = …` — the root usually owns none),
    /// and each child's `upstream` is its parent's *resolved* ingest
    /// address, so `:0` binds work.
    pub fn boot_relays(
        &self,
    ) -> Result<Vec<crate::runtime::NodeRuntime>, crate::runtime::RuntimeError> {
        let mut ingest: std::collections::HashMap<String, std::net::SocketAddr> =
            std::collections::HashMap::new();
        let mut out = Vec::new();
        for name in self.boot_order() {
            let r = self.relay(&name).expect("boot_order names spec relays");
            let mut node = r.node.clone();
            node.sites = self.coverage(&name);
            if let Some(parent) = &r.parent {
                node.upstream = Some(ingest[parent].to_string());
            }
            let rt = crate::runtime::NodeRuntime::start(node)?;
            ingest.insert(name, rt.ingest_addr());
            out.push(rt);
        }
        Ok(out)
    }
}

fn parse_num<T: std::str::FromStr>(line: usize, k: &str, v: &str) -> Result<T, SpecError> {
    v.parse().map_err(|_| SpecError::Syntax {
        line,
        msg: format!("{k} must be an integer, got {v}"),
    })
}

fn parse_bool(line: usize, k: &str, v: &str) -> Result<bool, SpecError> {
    match v {
        "1" | "true" | "on" => Ok(true),
        "0" | "false" | "off" => Ok(false),
        _ => Err(SpecError::Syntax {
            line,
            msg: format!("{k} must be 0/1 (or true/false), got {v}"),
        }),
    }
}

fn parse_site_list(line: usize, v: &str) -> Result<Vec<u16>, SpecError> {
    v.split(',')
        .map(|s| {
            s.trim().parse().map_err(|_| SpecError::Syntax {
                line,
                msg: format!("sites must be comma-separated u16 ids, got {v}"),
            })
        })
        .collect()
}

fn parse_mode_name(line: usize, v: &str) -> Result<String, SpecError> {
    match v {
        "full" | "delta" => Ok(v.to_string()),
        _ => Err(SpecError::Syntax {
            line,
            msg: format!("mode must be full or delta, got {v}"),
        }),
    }
}

fn mode_from_name(v: &str) -> crate::relay::ExportMode {
    match v {
        "full" => crate::relay::ExportMode::Full,
        _ => crate::relay::ExportMode::Delta,
    }
}

fn parse_fsync_name(line: usize, v: &str) -> Result<String, SpecError> {
    match v {
        "always" | "never" => Ok(v.to_string()),
        _ => Err(SpecError::Syntax {
            line,
            msg: format!("fsync must be always or never, got {v}"),
        }),
    }
}

fn fsync_from_name(v: &str) -> FsyncPolicy {
    match v {
        "always" => FsyncPolicy::Always,
        _ => FsyncPolicy::Never,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relay::ExportMode;

    const SPEC: &str = "\
# three-tier example
[defaults]
mode = delta
linger-ms = 700
stats = 127.0.0.1:0
window-ms = 60000

[site 0]
listen = 127.0.0.1:0
upstream = west

[site 1]
upstream = west
window-ms = 30000   ; per-site override

[site 2]
upstream = east

[relay west]
agg-site = 1001
sites = 0,1
parent = root
mode = full

[relay east]
agg-site = 1002
sites = 2
parent = root

[relay root]
agg-site = 2000
";

    #[test]
    fn parses_defaults_overrides_and_boot_order() {
        let spec = FleetSpec::parse(SPEC).unwrap();
        assert_eq!(spec.sites.len(), 3);
        assert_eq!(spec.relays.len(), 3);
        // Defaults applied, overrides win.
        assert_eq!(spec.sites[0].window_ms, 60_000);
        assert_eq!(spec.sites[1].window_ms, 30_000);
        assert_eq!(spec.sites[0].stats.as_deref(), Some("127.0.0.1:0"));
        let west = spec.relay("west").unwrap();
        assert_eq!(west.node.mode, ExportMode::Full);
        assert_eq!(west.node.linger_ms, 700);
        assert_eq!(west.parent.as_deref(), Some("root"));
        let root = spec.relay("root").unwrap();
        assert_eq!(root.node.mode, ExportMode::Delta);
        assert!(root.parent.is_none());
        assert!(root.node.sites.is_empty());
        // Root first, children after.
        let order = spec.boot_order();
        assert_eq!(order[0], "root");
        assert!(order.contains(&"west".into()) && order.contains(&"east".into()));
        spec.topology().validate().unwrap();
    }

    #[test]
    fn rejects_incoherent_fleets() {
        // Site feeding a relay that does not exist.
        let err = FleetSpec::parse(
            "[site 0]\nupstream = ghost\n[relay root]\nagg-site = 100\nsites = 0\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");
        // Site feeding a relay that does not own it.
        let err = FleetSpec::parse(
            "[site 5]\nupstream = root\n[relay root]\nagg-site = 100\nsites = 0\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("does not list it"), "{err}");
        // Relay tree breakage surfaces through topology validation.
        let err = FleetSpec::parse(
            "[relay a]\nagg-site = 100\nsites = 0\n[relay b]\nagg-site = 101\nsites = 1\n",
        )
        .unwrap_err();
        assert!(matches!(err, SpecError::Topology(_)), "{err}");
        // Missing required keys.
        let err = FleetSpec::parse("[relay root]\nsites = 0\n").unwrap_err();
        assert!(err.to_string().contains("agg-site"), "{err}");
        let err =
            FleetSpec::parse("[site 0]\n[relay root]\nagg-site = 9\nsites = 0\n").unwrap_err();
        assert!(err.to_string().contains("upstream"), "{err}");
    }

    #[test]
    fn lane_and_base_knobs_parse_with_defaults_and_overrides() {
        let spec = FleetSpec::parse(
            "\
[defaults]
lanes = 4
recv-batch = 16
reuseport = off
pin-cores = on
max-base-nodes = 500000

[site 0]
listen = 127.0.0.1:0
upstream = root

[site 1]
upstream = root
lanes = 2
recv-batch = 64
reuseport = on
pin-cores = 0

[relay root]
agg-site = 100
sites = 0,1
max-base-nodes = 250000
",
        )
        .unwrap();
        // Defaults inherited.
        assert_eq!(spec.sites[0].lanes, 4);
        assert_eq!(spec.sites[0].recv_batch, 16);
        assert!(!spec.sites[0].reuseport);
        assert!(spec.sites[0].pin_cores);
        // Per-site overrides win, with both boolean spellings.
        assert_eq!(spec.sites[1].lanes, 2);
        assert_eq!(spec.sites[1].recv_batch, 64);
        assert!(spec.sites[1].reuseport);
        assert!(!spec.sites[1].pin_cores);
        // The per-relay key beats the [defaults] value.
        let root = spec.relay("root").unwrap();
        assert_eq!(root.node.max_base_nodes, 250_000);

        // Built-in defaults when nothing is said.
        let spec =
            FleetSpec::parse("[site 0]\nupstream = root\n[relay root]\nagg-site = 1\nsites = 0\n")
                .unwrap();
        assert_eq!(spec.sites[0].lanes, 1);
        assert_eq!(spec.sites[0].recv_batch, 32);
        assert!(spec.sites[0].reuseport);
        assert!(!spec.sites[0].pin_cores);

        // A bad boolean names the offending value.
        let err = FleetSpec::parse("[defaults]\nreuseport = sideways\n").unwrap_err();
        assert!(err.to_string().contains("sideways"), "{err}");
    }

    #[test]
    fn rejects_syntax_errors_with_line_numbers() {
        let err = FleetSpec::parse("[defaults]\nbogus-key = 1\n").unwrap_err();
        assert!(matches!(err, SpecError::Syntax { line: 2, .. }), "{err}");
        let err = FleetSpec::parse("stray = 1\n").unwrap_err();
        assert!(matches!(err, SpecError::Syntax { line: 1, .. }), "{err}");
        let err = FleetSpec::parse("[what is this]\n").unwrap_err();
        assert!(matches!(err, SpecError::Syntax { line: 1, .. }), "{err}");
        let err = FleetSpec::parse("[relay r]\nmode = sideways\n").unwrap_err();
        assert!(err.to_string().contains("sideways"), "{err}");
    }
}
