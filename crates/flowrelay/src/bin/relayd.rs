//! `relayd` — a socketed aggregation-relay daemon.
//!
//! Wires the library's TCP surfaces ([`flowrelay::server`]) and the
//! wall-clock export scheduler ([`Relay::drain_exports_at`]) behind
//! CLI flags, so a relay runs as a process instead of a library call:
//!
//! * an **ingest** listener accepting length-prefixed summary frames
//!   from site daemons or deeper relays (any number of connections,
//!   one thread each; malformed frames are counted, never fatal);
//! * a **query** listener speaking the status-byte + route-header text
//!   protocol over the same framing;
//! * an **export scheduler** thread draining complete windows every
//!   tick against a monotonic wall-anchored clock
//!   ([`flowrelay::SteadyClock`] — an OS clock stepped backwards can
//!   neither stall nor double-fire a drain) — incrementally
//!   re-exporting windows that keep receiving late frames, as
//!   structural deltas by default — and shipping them to `--upstream`
//!   through the durable [`flowrelay::ExportShipper`]: every drained
//!   frame is spilled (to disk under `--state-dir`, else in memory)
//!   before any send, stays pending until the upstream acknowledges
//!   applying it (legacy upstreams fall back to fire-and-forget), and
//!   reconnects use exponential backoff with jitter. Without an
//!   upstream exports are logged and dropped (e.g. at the root).
//!   `--retention-ms` evicts old windows (trees, ledger, export
//!   state) so a long-running daemon stays bounded.
//!
//! With `--state-dir` the relay is **crash-safe**: stored windows,
//! epoch chains, and export positions live in a snapshot+WAL journal
//! ([`flowrelay::journal`]) and spilled exports in CRC-checked spill
//! segments ([`flowdist::spill`]); a restarted daemon resumes exactly
//! where the dead process stood, rewinding any exports that were
//! drained but never acknowledged so the chain heals by rebase
//! instead of forking.
//!
//! ```sh
//! relayd --name west --agg-site 101 --sites 0,1,2,3 \
//!        --ingest 127.0.0.1:7401 --query 127.0.0.1:7402 \
//!        --upstream 127.0.0.1:7501 --mode delta --linger-ms 2000 \
//!        --state-dir /var/lib/flowrelay/west
//! ```

use flowdist::net::{read_frame, write_frame};
use flowdist::{FsyncPolicy, SpillConfig, SpillQueue};
use flowrelay::server::{answer_query, serve_acked_ingest};
use flowrelay::{
    BackoffConfig, ExportConfig, ExportMode, ExportShipper, JournalConfig, QueryRouter, Relay,
    RelayConfig, RelaySpec, RelayTopology, ShipperConfig, SteadyClock,
};
use flowtree_core::Config;
use std::io::BufReader;
use std::net::TcpListener;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const HELP: &str = "\
relayd — socketed Flowtree aggregation relay

USAGE:
    relayd [FLAGS]

FLAGS:
    --name NAME           relay name shown in query routes  [default: relay]
    --agg-site ID         id this relay's exports carry     [default: 1000]
    --sites A,B,..        real sites this relay covers      [default: 0,1,2,3]
    --ingest ADDR         TCP bind for summary-frame ingest [default: 127.0.0.1:7401]
    --query ADDR          TCP bind for text queries         [default: 127.0.0.1:7402]
    --upstream ADDR       ship exports to this TCP peer     [default: none — exports are logged and dropped]
    --mode full|delta     re-export whole windows or deltas [default: delta]
    --linger-ms N         wall-clock grace past a window's end before it exports [default: 2000]
    --drain-every-ms N    export-scheduler tick             [default: 1000]
    --max-bases N         pinned re-aggregation bases kept  [default: 64]
    --budget N            tree node budget                  [default: 1048576]
    --retention-ms N      evict windows older than this (0 = keep forever) [default: 86400000]
    --state-dir DIR       durable journal + export spill root; a restart
                          resumes stored windows, epoch chains, and unacked
                          exports                            [default: none — volatile]
    --fsync always|never  fsync journal/spill writes (never survives kill -9
                          via the page cache; always also survives power loss)
                                                             [default: never]
    --spill-max-bytes N   pending-export spill bound; overflow sheds oldest
                          and rebases their windows           [default: 268435456]
    --reconnect-base-ms N first upstream-reconnect backoff    [default: 100]
    --reconnect-max-ms N  upstream-reconnect backoff ceiling  [default: 5000]
    --ack-stall-ms N      recycle an upstream connection whose acks went
                          silent while exports are pending    [default: 10000]
    --oneshot             drain once, print counters, exit (smoke testing)
    --help                print this help
";

/// Tiny `--key value` scanner (no clap offline).
struct Args(Vec<String>);

impl Args {
    fn get(&self, name: &str) -> Option<&str> {
        let flag = format!("--{name}");
        self.0
            .iter()
            .position(|a| *a == flag)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|a| *a == format!("--{name}"))
    }
}

/// Runtime logging that survives a closed stderr: a supervisor (or a
/// test harness) dropping the pipe must degrade logging, never kill
/// the daemon mid-export (`eprintln!` panics on a broken pipe).
fn log(msg: core::fmt::Arguments<'_>) {
    use std::io::Write as _;
    let _ = writeln!(std::io::stderr(), "{msg}");
}

fn main() {
    let args = Args(std::env::args().skip(1).collect());
    if args.has("help") {
        print!("{HELP}");
        return;
    }

    let name = args.get("name").unwrap_or("relay").to_string();
    let agg_site: u16 = args
        .get("agg-site")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000);
    let sites: Vec<u16> = args
        .get("sites")
        .unwrap_or("0,1,2,3")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let ingest_addr = args.get("ingest").unwrap_or("127.0.0.1:7401").to_string();
    let query_addr = args.get("query").unwrap_or("127.0.0.1:7402").to_string();
    let upstream = args.get("upstream").map(str::to_string);
    let mode = match args.get("mode") {
        Some("full") => ExportMode::Full,
        _ => ExportMode::Delta,
    };
    let linger_ms: u64 = args
        .get("linger-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let drain_every: u64 = args
        .get("drain-every-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000);
    let max_bases: usize = args
        .get("max-bases")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let budget: usize = args
        .get("budget")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 20);
    let retention_ms: u64 = args
        .get("retention-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(86_400_000);
    let state_dir = args.get("state-dir").map(str::to_string);
    let fsync = match args.get("fsync") {
        Some("always") => FsyncPolicy::Always,
        _ => FsyncPolicy::Never,
    };
    let spill_max_bytes: u64 = args
        .get("spill-max-bytes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(256 << 20);
    let reconnect_base_ms: u64 = args
        .get("reconnect-base-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let reconnect_max_ms: u64 = args
        .get("reconnect-max-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000);
    let ack_stall_ms: u64 = args
        .get("ack-stall-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    if sites.is_empty() {
        eprintln!("relayd: --sites must name at least one site");
        std::process::exit(2);
    }

    // A solo topology so the query router can plan over this node.
    let topo = RelayTopology {
        relays: vec![RelaySpec {
            name: name.clone(),
            parent: None,
            agg_site,
            sites: sites.clone(),
        }],
    };
    if let Err(e) = topo.validate() {
        eprintln!("relayd: invalid configuration: {e}");
        std::process::exit(2);
    }
    let relay_cfg = RelayConfig {
        name: name.clone(),
        agg_site,
        expected: sites.clone(),
        schema: flowkey::Schema::five_feature(),
        tree: Config::with_budget(budget),
        export: ExportConfig {
            mode,
            linger_ms,
            max_bases,
            ..ExportConfig::default()
        },
    };
    let mut relay = match &state_dir {
        Some(dir) => {
            let jcfg = JournalConfig {
                fsync,
                ..JournalConfig::default()
            };
            match Relay::open_journaled(relay_cfg, &Path::new(dir).join("journal"), jcfg) {
                Ok((relay, report)) => {
                    log(format_args!(
                        "relayd[{name}]: recovered gen {} — {} snapshot slots, {} WAL records, {} torn bytes truncated",
                        report.generation,
                        report.snapshot_slots,
                        report.wal_records,
                        report.torn_bytes
                    ));
                    relay
                }
                Err(e) => {
                    eprintln!("relayd: cannot open state dir {dir}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => Relay::new(relay_cfg),
    };
    // Exports drained by the dead process but never acknowledged may
    // or may not have reached the upstream; rewinding them re-exports
    // full rebasing frames the upstream deduplicates idempotently. A
    // root (no upstream) must NOT rewind — nobody is missing anything.
    if upstream.is_some() {
        let rewound = relay.rewind_unacked_exports();
        if rewound > 0 {
            log(format_args!(
                "relayd[{name}]: rewound {rewound} unacked exports; their windows will rebase"
            ));
        }
    }
    let relay = Arc::new(Mutex::new(relay));

    // --- ingest listener -------------------------------------------------
    let ingest = TcpListener::bind(&ingest_addr).unwrap_or_else(|e| {
        eprintln!("relayd: cannot bind ingest {ingest_addr}: {e}");
        std::process::exit(1);
    });
    let ingest_resolved = ingest
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| ingest_addr.clone());
    {
        let relay = Arc::clone(&relay);
        std::thread::Builder::new()
            .name("relayd-ingest".into())
            .spawn(move || {
                for conn in ingest.incoming() {
                    let Ok(mut conn) = conn else { continue };
                    let relay = Arc::clone(&relay);
                    let _ = std::thread::Builder::new()
                        .name("relayd-ingest-conn".into())
                        .spawn(move || {
                            // Acknowledged ingest: per-frame ack /
                            // rebase-request replies once the peer
                            // says hello; pure one-way v1–v3 senders
                            // get exactly the legacy silence. Locks
                            // the relay per frame, not per connection.
                            let _ = serve_acked_ingest(&mut conn, &relay);
                        });
                }
            })
            .expect("spawn ingest thread");
    }

    // --- query listener --------------------------------------------------
    let queries = TcpListener::bind(&query_addr).unwrap_or_else(|e| {
        eprintln!("relayd: cannot bind query {query_addr}: {e}");
        std::process::exit(1);
    });
    // Resolved addresses (a `:0` bind picks a port) — parseable, so
    // scripts and tests can discover where the daemon actually lives.
    eprintln!(
        "relayd[{name}]: ingest on {ingest_resolved}, queries on {}, mode {mode:?}",
        queries
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| query_addr.clone()),
    );
    {
        let relay = Arc::clone(&relay);
        std::thread::Builder::new()
            .name("relayd-query".into())
            .spawn(move || {
                for conn in queries.incoming() {
                    let Ok(mut conn) = conn else { continue };
                    let relay = Arc::clone(&relay);
                    let topo = topo.clone();
                    let _ = std::thread::Builder::new()
                        .name("relayd-query-conn".into())
                        .spawn(move || {
                            // Lock per *request*, never per
                            // connection: an idle client sitting on
                            // an open connection must not starve
                            // ingest or the export scheduler. The
                            // reader persists across requests so
                            // pipelined frames survive its read-ahead.
                            let Ok(read_half) = conn.try_clone() else {
                                return;
                            };
                            let mut reader = BufReader::new(read_half);
                            loop {
                                let frame = match read_frame(&mut reader) {
                                    Ok(Some(f)) => f,
                                    Ok(None) | Err(_) => return,
                                };
                                let response = {
                                    let guard = relay.lock().expect("relay lock");
                                    let relays = std::slice::from_ref(&*guard);
                                    let router = QueryRouter::new(&topo, relays);
                                    answer_query(&router, &frame)
                                };
                                if write_frame(&mut conn, &response).is_err() {
                                    return;
                                }
                            }
                        });
                }
            })
            .expect("spawn query thread");
    }

    // --- export scheduler (monotonic-clock watermarks) -------------------
    let oneshot = args.has("oneshot");
    let clock = SteadyClock::new();
    // Drained exports go through the durable shipper: spilled before
    // any send (draining advances the relay's per-window export state,
    // so silently losing one would fork the epoch chain), resent until
    // the upstream acknowledges applying them, shed-with-rebase when
    // the spill bound overflows during a long outage.
    let mut shipper: Option<ExportShipper> = match &upstream {
        Some(addr) => {
            let spill_cfg = SpillConfig {
                max_bytes: spill_max_bytes,
                fsync,
                ..SpillConfig::default()
            };
            let spill = match &state_dir {
                Some(dir) => match SpillQueue::open(&Path::new(dir).join("spill"), spill_cfg) {
                    Ok(q) => {
                        if !q.is_empty() {
                            log(format_args!(
                                "relayd[{name}]: recovered {} spilled exports, resending",
                                q.len()
                            ));
                        }
                        q
                    }
                    Err(e) => {
                        eprintln!("relayd: cannot open spill dir under {dir}: {e}");
                        std::process::exit(1);
                    }
                },
                None => SpillQueue::in_memory(spill_cfg),
            };
            Some(ExportShipper::new(
                ShipperConfig {
                    upstream: addr.clone(),
                    handshake_ms: 1_000,
                    stall_ms: ack_stall_ms,
                    tree: Config::with_budget(budget),
                    backoff: BackoffConfig {
                        base_ms: reconnect_base_ms,
                        max_ms: reconnect_max_ms,
                    },
                },
                spill,
                u64::from(agg_site) ^ (u64::from(std::process::id()) << 17),
            ))
        }
        None => None,
    };
    let mut journal_fault_logged = false;
    loop {
        std::thread::sleep(Duration::from_millis(if oneshot { 0 } else { drain_every }));
        let due = relay
            .lock()
            .expect("relay lock")
            .drain_exports_at(clock.now_ms());
        match &mut shipper {
            Some(shipper) => {
                for e in &due {
                    let shed = shipper.enqueue(e);
                    if !shed.is_empty() {
                        let mut guard = relay.lock().expect("relay lock");
                        for w in &shed {
                            guard.mark_unshipped(*w);
                        }
                        drop(guard);
                        log(format_args!(
                            "relayd[{name}]: spill bound shed {} old exports; their windows will rebase",
                            shed.len()
                        ));
                    }
                }
                shipper.pump(&relay, clock.now_ms());
            }
            None => {
                for e in &due {
                    log(format_args!(
                        "relayd[{name}]: export window {} epoch {} ({:?}, {} bytes) — no upstream, dropped",
                        e.window,
                        e.epoch.map(|h| h.epoch).unwrap_or(0),
                        e.kind,
                        e.encoded_size()
                    ));
                }
            }
        }
        if retention_ms > 0 {
            let cutoff = clock.now_ms().saturating_sub(retention_ms);
            let evicted = relay
                .lock()
                .expect("relay lock")
                .evict_windows_before(cutoff);
            if evicted > 0 {
                log(format_args!(
                    "relayd[{name}]: retention evicted {evicted} windows older than {cutoff}ms"
                ));
            }
        }
        if !journal_fault_logged {
            if let Some(err) = relay.lock().expect("relay lock").journal_error() {
                log(format_args!(
                    "relayd[{name}]: JOURNAL DEGRADED (still serving, no longer crash-safe): {err}"
                ));
                journal_fault_logged = true;
            }
        }
        if oneshot {
            let guard = relay.lock().expect("relay lock");
            let l = guard.ledger();
            let pending = shipper.as_ref().map(|s| s.pending_len()).unwrap_or(0);
            log(format_args!(
                "relayd[{name}]: frames {} (rejected {}, replayed {}), exports {} ({} full / {} delta), bytes {} ({} full / {} delta), pending {}, rebases {} (rewound {}), reconnects {} ({} failed, {}ms backoff)",
                l.frames,
                l.rejected,
                l.replayed,
                l.exported,
                l.full_exports,
                l.delta_exports,
                l.exported_bytes,
                l.full_export_bytes,
                l.delta_export_bytes,
                pending,
                l.rebase_requests,
                l.rebase_rewinds,
                l.reconnect_attempts,
                l.reconnect_failures,
                l.backoff_ms_total
            ));
            return;
        }
    }
}
