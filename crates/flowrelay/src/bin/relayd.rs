//! `relayd` — a socketed aggregation-relay daemon.
//!
//! A thin CLI shell over [`flowrelay::runtime::NodeRuntime`], which
//! owns everything the daemon used to wire by hand: the ingest and
//! query listeners, the monotonic-clock export scheduler, the durable
//! acknowledged shipper, journal/spill recovery under `--state-dir`,
//! retention, and the optional `--stats` endpoint (GET `/health`,
//! GET `/stats`, POST `/reload`). `relayd` itself only parses flags,
//! prints the startup line, and decides when to exit.
//!
//! With `--stdin-control` the daemon reads commands from stdin —
//! `status`, `reload key=value …`, `drain` — and treats EOF as a
//! drain request, so a supervisor (`flowctl`) that dies takes its
//! children down gracefully instead of leaving orphans.
//!
//! ```sh
//! relayd --name west --agg-site 101 --sites 0,1,2,3 \
//!        --ingest 127.0.0.1:7401 --query 127.0.0.1:7402 \
//!        --upstream 127.0.0.1:7501 --mode delta --linger-ms 2000 \
//!        --state-dir /var/lib/flowrelay/west --stats 127.0.0.1:7403
//! ```

use flowdist::FsyncPolicy;
use flowrelay::{ExportMode, NodeConfig, NodeRuntime};
use std::io::BufRead;
use std::path::PathBuf;
use std::time::Duration;

const HELP: &str = "\
relayd — socketed Flowtree aggregation relay

USAGE:
    relayd [FLAGS]

FLAGS:
    --name NAME           relay name shown in query routes  [default: relay]
    --agg-site ID         id this relay's exports carry     [default: 1000]
    --sites A,B,..        real sites this relay covers      [default: 0,1,2,3]
    --ingest ADDR         TCP bind for summary-frame ingest [default: 127.0.0.1:7401]
    --query ADDR          TCP bind for text queries         [default: 127.0.0.1:7402]
    --stats ADDR          plaintext health/stats endpoint (GET /health,
                          GET /stats, POST /reload)          [default: none]
    --upstream ADDR       ship exports to this TCP peer     [default: none — exports are logged and dropped]
    --mode full|delta     re-export whole windows or deltas [default: delta]
    --linger-ms N         wall-clock grace past a window's end before it exports [default: 2000]
    --drain-every-ms N    export-scheduler tick             [default: 1000]
    --max-bases N         pinned re-aggregation bases kept  [default: 64]
    --max-base-nodes N    total tree nodes the pinned bases may hold
                          together (memory-honest base bound) [default: 1048576]
    --budget N            tree node budget                  [default: 1048576]
    --retention-ms N      evict windows older than this (0 = keep forever) [default: 86400000]
    --state-dir DIR       durable journal + export spill root; a restart
                          resumes stored windows, epoch chains, and unacked
                          exports                            [default: none — volatile]
    --fsync always|never  fsync journal/spill writes (never survives kill -9
                          via the page cache; always also survives power loss)
                                                             [default: never]
    --spill-max-bytes N   pending-export spill bound; overflow sheds oldest
                          and rebases their windows           [default: 268435456]
    --reconnect-base-ms N first upstream-reconnect backoff    [default: 100]
    --reconnect-max-ms N  upstream-reconnect backoff ceiling  [default: 5000]
    --ack-stall-ms N      recycle an upstream connection whose acks went
                          silent while exports are pending    [default: 10000]
    --drain-deadline-ms N how long a graceful drain chases an unreachable
                          upstream before leaving the rest spilled [default: 10000]
    --stdin-control       read status/reload/drain commands from stdin;
                          EOF drains and exits (supervision seam)
    --oneshot             drain once, print counters, exit (smoke testing)
    --help                print this help
";

/// Tiny `--key value` scanner (no clap offline). A repeated flag's
/// last value wins, so wrappers can append overrides.
struct Args(Vec<String>);

impl Args {
    fn get(&self, name: &str) -> Option<&str> {
        let flag = format!("--{name}");
        self.0
            .iter()
            .rposition(|a| *a == flag)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|a| *a == format!("--{name}"))
    }
}

/// Runtime logging that survives a closed stderr: a supervisor (or a
/// test harness) dropping the pipe must degrade logging, never kill
/// the daemon mid-export (`eprintln!` panics on a broken pipe).
fn log(msg: core::fmt::Arguments<'_>) {
    use std::io::Write as _;
    let _ = writeln!(std::io::stderr(), "{msg}");
}

fn main() {
    let args = Args(std::env::args().skip(1).collect());
    if args.has("help") {
        print!("{HELP}");
        return;
    }

    let name = args.get("name").unwrap_or("relay").to_string();
    let mut cfg = NodeConfig::new(name.clone());
    cfg.log_tag = Some(format!("relayd[{name}]"));
    cfg.agg_site = args.num("agg-site", 1_000);
    cfg.sites = args
        .get("sites")
        .unwrap_or("0,1,2,3")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    cfg.ingest = args.get("ingest").unwrap_or("127.0.0.1:7401").to_string();
    cfg.query = args.get("query").unwrap_or("127.0.0.1:7402").to_string();
    cfg.stats = args.get("stats").map(str::to_string);
    cfg.upstream = args.get("upstream").map(str::to_string);
    cfg.mode = match args.get("mode") {
        Some("full") => ExportMode::Full,
        _ => ExportMode::Delta,
    };
    cfg.linger_ms = args.num("linger-ms", 2_000);
    cfg.drain_every_ms = args.num("drain-every-ms", 1_000);
    cfg.max_bases = args.num("max-bases", 64);
    cfg.max_base_nodes = args.num("max-base-nodes", 1 << 20);
    cfg.budget = args.num("budget", 1 << 20);
    cfg.retention_ms = args.num("retention-ms", 86_400_000);
    cfg.state_dir = args.get("state-dir").map(PathBuf::from);
    cfg.fsync = match args.get("fsync") {
        Some("always") => FsyncPolicy::Always,
        _ => FsyncPolicy::Never,
    };
    cfg.spill_max_bytes = args.num("spill-max-bytes", 256 << 20);
    cfg.reconnect_base_ms = args.num("reconnect-base-ms", 100);
    cfg.reconnect_max_ms = args.num("reconnect-max-ms", 5_000);
    cfg.ack_stall_ms = args.num("ack-stall-ms", 10_000);
    let drain_deadline = Duration::from_millis(args.num("drain-deadline-ms", 10_000));
    let mode = cfg.mode;

    let runtime = match NodeRuntime::start(cfg) {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("relayd: {e}");
            // Config errors exit 2 (usage), environment errors 1.
            let code = match e {
                flowrelay::RuntimeError::Invalid(_) => 2,
                _ => 1,
            };
            std::process::exit(code);
        }
    };
    // Resolved addresses (a `:0` bind picks a port) — parseable, so
    // scripts and tests can discover where the daemon actually lives.
    eprintln!(
        "relayd[{name}]: ingest on {}, queries on {}, mode {mode:?}",
        runtime.ingest_addr(),
        runtime.query_addr(),
    );
    if let Some(addr) = runtime.stats_addr() {
        log(format_args!("relayd[{name}]: stats on {addr}"));
    }

    if args.has("oneshot") {
        runtime.tick_now();
        let l = runtime.ledger();
        let pending = runtime.pending_len();
        log(format_args!(
            "relayd[{name}]: frames {} (rejected {}, replayed {}), exports {} ({} full / {} delta), bytes {} ({} full / {} delta), pending {}, rebases {} (rewound {}), reconnects {} ({} failed, {}ms backoff)",
            l.frames,
            l.rejected,
            l.replayed,
            l.exported,
            l.full_exports,
            l.delta_exports,
            l.exported_bytes,
            l.full_export_bytes,
            l.delta_export_bytes,
            pending,
            l.rebase_requests,
            l.rebase_rewinds,
            l.reconnect_attempts,
            l.reconnect_failures,
            l.backoff_ms_total
        ));
        runtime.shutdown();
        return;
    }

    if args.has("stdin-control") {
        control_loop(&name, runtime, drain_deadline);
        return;
    }

    // No control channel: the runtime's threads do all the work; park.
    loop {
        std::thread::sleep(Duration::from_secs(3_600));
    }
}

/// Reads commands from stdin until EOF or `drain`. EOF counts as a
/// drain request: when the supervisor that holds our stdin dies, the
/// daemon flushes and exits instead of lingering as an orphan.
fn control_loop(name: &str, runtime: NodeRuntime, drain_deadline: Duration) {
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        match cmd {
            "" => {}
            "status" => {
                let l = runtime.ledger();
                println!(
                    "status frames={} rejected={} exported={} pending={} spill_sheds={}",
                    l.frames,
                    l.rejected,
                    l.exported,
                    runtime.pending_len(),
                    l.spill_sheds
                );
            }
            "reload" => {
                let mut r = runtime.reloadable();
                let mut bad = None;
                for kv in rest.split_whitespace() {
                    let Some((k, v)) = kv.split_once('=') else {
                        bad = Some(format!("malformed reload arg: {kv}"));
                        break;
                    };
                    let parsed = v.parse::<u64>();
                    match (k, parsed) {
                        ("mode", _) if v == "full" => r.mode = ExportMode::Full,
                        ("mode", _) if v == "delta" => r.mode = ExportMode::Delta,
                        ("linger-ms", Ok(n)) => r.linger_ms = n,
                        ("retention-ms", Ok(n)) => r.retention_ms = n,
                        ("drain-every-ms", Ok(n)) => r.drain_every_ms = n,
                        ("max-bases", Ok(n)) => r.max_bases = n as usize,
                        ("max-base-nodes", Ok(n)) => r.max_base_nodes = n as usize,
                        _ => {
                            bad = Some(format!("bad reload arg: {kv}"));
                            break;
                        }
                    }
                }
                match bad {
                    Some(msg) => println!("error {msg}"),
                    None => {
                        runtime.reload(r);
                        println!("reloaded");
                    }
                }
            }
            "drain" => break,
            other => println!("error unknown command: {other}"),
        }
    }
    let report = runtime.drain(drain_deadline);
    log(format_args!(
        "relayd[{name}]: drained — {} flushed, {} pending at exit",
        report.flushed, report.pending_at_exit
    ));
    if report.pending_at_exit > 0 {
        // Unacked exports are journaled+spilled; a restart resends.
        std::process::exit(3);
    }
}
