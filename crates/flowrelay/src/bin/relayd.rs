//! `relayd` — a socketed aggregation-relay daemon.
//!
//! Wires the library's TCP surfaces ([`flowrelay::server`]) and the
//! wall-clock export scheduler ([`Relay::drain_exports_at`]) behind
//! CLI flags, so a relay runs as a process instead of a library call:
//!
//! * an **ingest** listener accepting length-prefixed summary frames
//!   from site daemons or deeper relays (any number of connections,
//!   one thread each; malformed frames are counted, never fatal);
//! * a **query** listener speaking the status-byte + route-header text
//!   protocol over the same framing;
//! * an **export scheduler** thread draining complete windows every
//!   tick against the wall clock — incrementally re-exporting windows
//!   that keep receiving late frames, as structural deltas by default
//!   — and shipping them to `--upstream`. Undeliverable exports stay
//!   in a pending buffer and retry on later ticks (an upstream
//!   restart must not lose frames or fork the epoch chain); without
//!   an upstream they are logged and dropped (e.g. at the root).
//!   `--retention-ms` evicts old windows (trees, ledger, export
//!   state) so a long-running daemon stays bounded.
//!
//! ```sh
//! relayd --name west --agg-site 101 --sites 0,1,2,3 \
//!        --ingest 127.0.0.1:7401 --query 127.0.0.1:7402 \
//!        --upstream 127.0.0.1:7501 --mode delta --linger-ms 2000
//! ```

use flowdist::net::{read_frame, write_frame};
use flowdist::Summary;
use flowrelay::server::{answer_query, ship_summaries};
use flowrelay::{
    ExportConfig, ExportMode, QueryRouter, Relay, RelayConfig, RelaySpec, RelayTopology,
};
use flowtree_core::Config;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

const HELP: &str = "\
relayd — socketed Flowtree aggregation relay

USAGE:
    relayd [FLAGS]

FLAGS:
    --name NAME           relay name shown in query routes  [default: relay]
    --agg-site ID         id this relay's exports carry     [default: 1000]
    --sites A,B,..        real sites this relay covers      [default: 0,1,2,3]
    --ingest ADDR         TCP bind for summary-frame ingest [default: 127.0.0.1:7401]
    --query ADDR          TCP bind for text queries         [default: 127.0.0.1:7402]
    --upstream ADDR       ship exports to this TCP peer     [default: none — exports are logged and dropped]
    --mode full|delta     re-export whole windows or deltas [default: delta]
    --linger-ms N         wall-clock grace past a window's end before it exports [default: 2000]
    --drain-every-ms N    export-scheduler tick             [default: 1000]
    --max-bases N         pinned re-aggregation bases kept  [default: 64]
    --budget N            tree node budget                  [default: 1048576]
    --retention-ms N      evict windows older than this (0 = keep forever) [default: 86400000]
    --oneshot             drain once, print counters, exit (smoke testing)
    --help                print this help
";

/// Tiny `--key value` scanner (no clap offline).
struct Args(Vec<String>);

impl Args {
    fn get(&self, name: &str) -> Option<&str> {
        let flag = format!("--{name}");
        self.0
            .iter()
            .position(|a| *a == flag)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|a| *a == format!("--{name}"))
    }
}

fn wall_clock_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Runtime logging that survives a closed stderr: a supervisor (or a
/// test harness) dropping the pipe must degrade logging, never kill
/// the daemon mid-export (`eprintln!` panics on a broken pipe).
fn log(msg: core::fmt::Arguments<'_>) {
    use std::io::Write as _;
    let _ = writeln!(std::io::stderr(), "{msg}");
}

fn main() {
    let args = Args(std::env::args().skip(1).collect());
    if args.has("help") {
        print!("{HELP}");
        return;
    }

    let name = args.get("name").unwrap_or("relay").to_string();
    let agg_site: u16 = args
        .get("agg-site")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000);
    let sites: Vec<u16> = args
        .get("sites")
        .unwrap_or("0,1,2,3")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let ingest_addr = args.get("ingest").unwrap_or("127.0.0.1:7401").to_string();
    let query_addr = args.get("query").unwrap_or("127.0.0.1:7402").to_string();
    let upstream = args.get("upstream").map(str::to_string);
    let mode = match args.get("mode") {
        Some("full") => ExportMode::Full,
        _ => ExportMode::Delta,
    };
    let linger_ms: u64 = args
        .get("linger-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let drain_every: u64 = args
        .get("drain-every-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000);
    let max_bases: usize = args
        .get("max-bases")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let budget: usize = args
        .get("budget")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 20);
    let retention_ms: u64 = args
        .get("retention-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(86_400_000);
    if sites.is_empty() {
        eprintln!("relayd: --sites must name at least one site");
        std::process::exit(2);
    }

    // A solo topology so the query router can plan over this node.
    let topo = RelayTopology {
        relays: vec![RelaySpec {
            name: name.clone(),
            parent: None,
            agg_site,
            sites: sites.clone(),
        }],
    };
    if let Err(e) = topo.validate() {
        eprintln!("relayd: invalid configuration: {e}");
        std::process::exit(2);
    }
    let relay = Relay::new(RelayConfig {
        name: name.clone(),
        agg_site,
        expected: sites.clone(),
        schema: flowkey::Schema::five_feature(),
        tree: Config::with_budget(budget),
        export: ExportConfig {
            mode,
            linger_ms,
            max_bases,
        },
    });
    let relay = Arc::new(Mutex::new(relay));

    // --- ingest listener -------------------------------------------------
    let ingest = TcpListener::bind(&ingest_addr).unwrap_or_else(|e| {
        eprintln!("relayd: cannot bind ingest {ingest_addr}: {e}");
        std::process::exit(1);
    });
    let ingest_resolved = ingest
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| ingest_addr.clone());
    {
        let relay = Arc::clone(&relay);
        std::thread::Builder::new()
            .name("relayd-ingest".into())
            .spawn(move || {
                for conn in ingest.incoming() {
                    let Ok(conn) = conn else { continue };
                    let relay = Arc::clone(&relay);
                    let _ = std::thread::Builder::new()
                        .name("relayd-ingest-conn".into())
                        .spawn(move || {
                            // Lock per frame, not per connection: a
                            // long-lived downstream must not starve
                            // queries or the export scheduler.
                            let mut reader = BufReader::new(conn);
                            while let Ok(Some(frame)) = read_frame(&mut reader) {
                                let _ = relay.lock().expect("relay lock").ingest_frame(&frame);
                            }
                        });
                }
            })
            .expect("spawn ingest thread");
    }

    // --- query listener --------------------------------------------------
    let queries = TcpListener::bind(&query_addr).unwrap_or_else(|e| {
        eprintln!("relayd: cannot bind query {query_addr}: {e}");
        std::process::exit(1);
    });
    // Resolved addresses (a `:0` bind picks a port) — parseable, so
    // scripts and tests can discover where the daemon actually lives.
    eprintln!(
        "relayd[{name}]: ingest on {ingest_resolved}, queries on {}, mode {mode:?}",
        queries
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| query_addr.clone()),
    );
    {
        let relay = Arc::clone(&relay);
        std::thread::Builder::new()
            .name("relayd-query".into())
            .spawn(move || {
                for conn in queries.incoming() {
                    let Ok(mut conn) = conn else { continue };
                    let relay = Arc::clone(&relay);
                    let topo = topo.clone();
                    let _ = std::thread::Builder::new()
                        .name("relayd-query-conn".into())
                        .spawn(move || {
                            // Lock per *request*, never per
                            // connection: an idle client sitting on
                            // an open connection must not starve
                            // ingest or the export scheduler. The
                            // reader persists across requests so
                            // pipelined frames survive its read-ahead.
                            let Ok(read_half) = conn.try_clone() else {
                                return;
                            };
                            let mut reader = BufReader::new(read_half);
                            loop {
                                let frame = match read_frame(&mut reader) {
                                    Ok(Some(f)) => f,
                                    Ok(None) | Err(_) => return,
                                };
                                let response = {
                                    let guard = relay.lock().expect("relay lock");
                                    let relays = std::slice::from_ref(&*guard);
                                    let router = QueryRouter::new(&topo, relays);
                                    answer_query(&router, &frame)
                                };
                                if write_frame(&mut conn, &response).is_err() {
                                    return;
                                }
                            }
                        });
                }
            })
            .expect("spawn query thread");
    }

    // --- export scheduler (wall-clock watermarks) ------------------------
    let oneshot = args.has("oneshot");
    let mut upstream_conn: Option<TcpStream> = None;
    // Exports drained but not yet delivered upstream. Draining
    // advances the relay's per-window export state, so silently losing
    // these would fork the epoch chain: the next delta would declare a
    // base the upstream never received and be rejected forever. They
    // stay here, in order, until a write succeeds — bounded: a long
    // outage sheds the oldest frames and marks their windows
    // unshipped, so they re-export as full rebasing frames once the
    // upstream returns instead of exhausting memory here.
    const MAX_PENDING: usize = 4_096;
    let mut pending: Vec<Summary> = Vec::new();
    loop {
        std::thread::sleep(Duration::from_millis(if oneshot { 0 } else { drain_every }));
        pending.extend(
            relay
                .lock()
                .expect("relay lock")
                .drain_exports_at(wall_clock_ms()),
        );
        if pending.len() > MAX_PENDING {
            let shed = pending.len() - MAX_PENDING;
            let mut guard = relay.lock().expect("relay lock");
            for e in pending.drain(..shed) {
                guard.mark_unshipped(e.window.start_ms);
            }
            drop(guard);
            log(format_args!(
                "relayd[{name}]: pending overflow, shed {shed} exports; their windows will rebase"
            ));
        }
        if !pending.is_empty() {
            match &upstream {
                Some(addr) => {
                    if upstream_conn.is_none() {
                        upstream_conn = TcpStream::connect(addr)
                            .map_err(|e| log(format_args!("relayd[{name}]: upstream {addr}: {e}")))
                            .ok();
                    }
                    if let Some(conn) = &mut upstream_conn {
                        match ship_summaries(conn, &pending) {
                            Ok(()) => pending.clear(),
                            Err(_) => {
                                log(format_args!(
                                    "relayd[{name}]: upstream write failed; {} exports pending, retrying next drain",
                                    pending.len()
                                ));
                                upstream_conn = None;
                            }
                        }
                    }
                }
                None => {
                    for e in pending.drain(..) {
                        log(format_args!(
                            "relayd[{name}]: export window {} epoch {} ({:?}, {} bytes) — no upstream, dropped",
                            e.window,
                            e.epoch.map(|h| h.epoch).unwrap_or(0),
                            e.kind,
                            e.encoded_size()
                        ));
                    }
                }
            }
        }
        if retention_ms > 0 {
            let cutoff = wall_clock_ms().saturating_sub(retention_ms);
            let evicted = relay
                .lock()
                .expect("relay lock")
                .evict_windows_before(cutoff);
            if evicted > 0 {
                log(format_args!(
                    "relayd[{name}]: retention evicted {evicted} windows older than {cutoff}ms"
                ));
            }
        }
        if oneshot {
            let guard = relay.lock().expect("relay lock");
            let l = guard.ledger();
            log(format_args!(
                "relayd[{name}]: frames {} (rejected {}), exports {} ({} full / {} delta), bytes {} ({} full / {} delta), pending {}",
                l.frames,
                l.rejected,
                l.exported,
                l.full_exports,
                l.delta_exports,
                l.exported_bytes,
                l.full_export_bytes,
                l.delta_export_bytes,
                pending.len()
            ));
            return;
        }
    }
}
